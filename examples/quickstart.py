#!/usr/bin/env python
"""Quickstart: predict the performance of a dynamically-scheduled Cholesky.

The complete paper workflow in ~30 lines:

1. build the serial task stream of a tile Cholesky factorization;
2. run it once on the machine model under the QUARK-like scheduler and fit
   per-kernel timing distributions from the trace (calibration, §V-B);
3. simulate a larger problem: the same scheduler makes all the decisions,
   but task durations come from the fitted models (§V-D);
4. compare the prediction against a "real" run (Figs. 8-10 methodology).

Run:  python examples/quickstart.py
"""

from repro import (
    QuarkScheduler,
    calibrate,
    cholesky_program,
    get_machine,
    validate,
)

machine = get_machine("magny_cours_48")  # the paper's 48-core AMD testbed
print(f"machine: {machine.name}, {machine.n_cores} cores, "
      f"{machine.peak_gflops:.0f} GFLOP/s peak")

# -- 1+2: calibrate kernel models from a small real run ---------------------
tile = 200
cal_program = cholesky_program(nt=16, nb=tile)
models, cal_trace = calibrate(cal_program, QuarkScheduler(48), machine, seed=0)
print(f"\ncalibration run: {len(cal_trace)} tasks, "
      f"{cal_trace.makespan * 1e3:.1f} ms")
print(models.summary())

# -- 3+4: simulate a big problem and validate against a real run ------------
big = cholesky_program(nt=30, nb=tile)  # a 6000 x 6000 matrix
result = validate(
    big,
    QuarkScheduler(48),
    machine,
    models,
    warmup_penalty=machine.warmup_penalty,
)
print(f"\nproblem: n={big.meta['n']}, {len(big)} tasks")
print(result.report())
assert result.error_percent < 10.0
print("\nprediction within a few percent — the paper's §VI-B claim.")
