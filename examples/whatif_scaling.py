#!/usr/bin/env python
"""What-if studies: rescaling calibrated models instead of re-measuring.

The paper's stated end-goal is autotuning (§VI-B): explore many
configurations cheaply.  One cheap family of questions is "what if the
kernels were k× faster?" — e.g. a machine at a higher clock, or a better
BLAS.  `KernelModelSet.scaled(k)` rescales a calibrated model set without
any new measurement; this example checks the resulting predictions against
actually-faster machine models.

The interesting part is that performance does NOT scale linearly with
kernel speed: scheduler overheads and the critical path bite, and the
simulator quantifies by how much.

Run:  python examples/whatif_scaling.py
"""

from dataclasses import replace

from repro import QuarkScheduler, calibrate, cholesky_program, get_machine, run_real, simulate

base_machine = get_machine("magny_cours_48")
nt, nb = 20, 200

models, _ = calibrate(cholesky_program(16, nb), QuarkScheduler(48), base_machine, seed=0)
flops = cholesky_program(nt, nb).total_flops

print(f"Cholesky n={nt * nb}, tile {nb}, QUARK on 48 cores")
print(f"{'kernel speed':>13} {'predicted GF/s':>15} {'actual GF/s':>12} {'err %':>7} "
      f"{'vs linear':>10}")

baseline_gflops = None
for factor in (1.0, 1.5, 2.0, 4.0):
    # Prediction: rescale the calibrated models (durations / factor).
    scaled_models = models.scaled(1.0 / factor)
    sim = simulate(
        cholesky_program(nt, nb),
        QuarkScheduler(48),
        scaled_models,
        seed=2,
        warmup_penalty=base_machine.warmup_penalty,
    )
    predicted = sim.gflops(flops)

    # Ground truth: a machine model with genuinely faster cores.
    fast_machine = replace(
        base_machine,
        name=f"magny_cours_48-x{factor}",
        peak_gflops_per_core=base_machine.peak_gflops_per_core * factor,
    )
    real = run_real(cholesky_program(nt, nb), QuarkScheduler(48), fast_machine, seed=1)
    actual = real.gflops(flops)

    if baseline_gflops is None:
        baseline_gflops = actual
    linear = baseline_gflops * factor
    err = abs(predicted - actual) / actual * 100
    print(f"{factor:>12.1f}x {predicted:>15.1f} {actual:>12.1f} {err:>7.2f} "
          f"{actual / linear:>9.2f}x")

print("\nFaster kernels expose scheduler overheads and the critical path: "
      "the 'vs linear' column\nfalls below 1.0 as kernels shrink, and the "
      "rescaled simulation predicts the effect without\nre-measuring "
      "anything — the autotuning workflow of §VI-B.")
