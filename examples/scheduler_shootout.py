#!/usr/bin/env python
"""Scheduler shoot-out: QUARK vs StarPU (all policies) vs OmpSs.

Runs tile QR and Cholesky under every runtime configuration on the machine
model, alongside the simulator's prediction for each — the portability
claim of the paper (§III: "our approach is agnostic with respect to the
underlying superscalar scheduler") exercised across seven configurations.

Run:  python examples/scheduler_shootout.py
"""

from repro import (
    OmpSsScheduler,
    QuarkScheduler,
    StarPUScheduler,
    calibrate,
    cholesky_program,
    get_machine,
    qr_program,
    validate,
)

machine = get_machine("magny_cours_48")
NT, NB = 24, 200

CONFIGS = [
    ("quark", lambda: QuarkScheduler(48)),
    ("quark lifo", lambda: QuarkScheduler(48, queue="lifo")),
    ("starpu eager", lambda: StarPUScheduler(47, policy="eager")),
    ("starpu prio", lambda: StarPUScheduler(47, policy="prio")),
    ("starpu ws", lambda: StarPUScheduler(47, policy="ws")),
    ("starpu dmda", lambda: StarPUScheduler(47, policy="dmda")),
    ("ompss", lambda: OmpSsScheduler(47)),
]

for algo_name, generator in (("QR", qr_program), ("Cholesky", cholesky_program)):
    print(f"\n=== {algo_name} factorization, n={NT * NB}, tile {NB} ===")
    print(f"{'configuration':<14} {'real GF/s':>10} {'sim GF/s':>10} {'err %':>7}")
    for name, factory in CONFIGS:
        models, _ = calibrate(generator(16, NB), factory(), machine, seed=0)
        result = validate(
            generator(NT, NB),
            factory(),
            machine,
            models,
            warmup_penalty=machine.warmup_penalty,
        )
        print(
            f"{name:<14} {result.gflops_real:>10.1f} {result.gflops_sim:>10.1f} "
            f"{result.error_percent:>7.2f}"
        )
