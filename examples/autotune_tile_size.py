#!/usr/bin/env python
"""Autotuning with the simulator — the paper's motivating use case (§VI-B).

"If it is possible to predict performance of an algorithm running on a
particular scheduler configuration in a reduced time period, it will be
possible to try a larger number of possible scheduling and algorithmic
parameters."

This example tunes the *tile size* of a QR factorization of a fixed-size
matrix.  For every candidate tile size it calibrates kernel models from one
small run, then lets the **simulator** sweep the full problem; only the
simulator-chosen winner is verified with real runs.  The ranking produced
by the simulation matches the ranking of the (much more expensive) real
sweep.

Run:  python examples/autotune_tile_size.py
"""

import time

from repro import QuarkScheduler, calibrate, get_machine, qr_program, run_real, simulate

MACHINE = get_machine("magny_cours_48")
N = 7200  # fixed matrix order; tile size partitions it differently
CANDIDATE_TILES = (144, 180, 240, 300, 360)

print(f"tuning tile size for QR of a {N}x{N} matrix "
      f"on {MACHINE.name} under QUARK\n")

rows = []
sim_wall = real_wall = 0.0
for nb in CANDIDATE_TILES:
    nt = N // nb
    # Cheap calibration run: half the tile count.
    cal_nt = max(4, nt // 2)
    models, _ = calibrate(qr_program(cal_nt, nb), QuarkScheduler(48), MACHINE, seed=0)

    t0 = time.perf_counter()
    sim = simulate(
        qr_program(nt, nb),
        QuarkScheduler(48),
        models,
        seed=1,
        warmup_penalty=MACHINE.warmup_penalty,
    )
    sim_wall += time.perf_counter() - t0

    t0 = time.perf_counter()
    real = run_real(qr_program(nt, nb), QuarkScheduler(48), MACHINE, seed=2)
    real_wall += time.perf_counter() - t0

    flops = qr_program(nt, nb).total_flops
    rows.append((nb, nt, sim.gflops(flops), real.gflops(flops)))

print(f"{'tile':>5} {'nt':>4} {'sim GF/s':>10} {'real GF/s':>10}")
for nb, nt, gs, gr in rows:
    print(f"{nb:>5} {nt:>4} {gs:>10.1f} {gr:>10.1f}")

best_sim = max(rows, key=lambda r: r[2])
best_real = max(rows, key=lambda r: r[3])
print(f"\nsimulator picks  tile {best_sim[0]} ({best_sim[2]:.1f} GF/s predicted)")
print(f"real sweep picks tile {best_real[0]} ({best_real[3]:.1f} GF/s measured)")
print(f"\n(simulated sweep took {sim_wall:.2f}s of host time vs "
      f"{real_wall:.2f}s for the real sweep in this virtual setting;\n"
      f" on hardware the real sweep costs actual factorizations)")

if best_sim[0] == best_real[0]:
    print("=> the simulator selected the same tile size as exhaustive real runs")
else:
    print("=> simulator and real sweep picked adjacent configurations; "
          "check the GF/s gap above")
