#!/usr/bin/env python
"""Heterogeneous (CPU + GPU) scheduling and simulation — §VII, implemented.

Builds a machine with 6 CPU workers and 2 GPU devices, runs a tile Cholesky
under StarPU's architecture-aware ``dmda`` policy, and shows:

* where each kernel class lands (the GPUs absorb the DGEMM stream, the CPUs
  keep the panel factorizations that accelerate poorly);
* the hybrid-vs-CPU-only speed-up;
* that per-architecture calibration lets the simulator predict the hybrid
  run, exactly as the homogeneous simulator predicts CPU runs.

Run:  python examples/gpu_offload.py
"""

from repro import cholesky_program, get_machine
from repro.core.simbackend import HeterogeneousSimulationBackend
from repro.machine import (
    GpuDevice,
    HeterogeneousBackend,
    HeterogeneousMachine,
    MachineBackend,
    calibrate_heterogeneous,
)
from repro.schedulers import StarPUScheduler
from repro.trace.compare import compare_traces

hm = HeterogeneousMachine(
    cpu=get_machine("smp_8"),
    gpus=(GpuDevice("gpu0"), GpuDevice("gpu1")),
    n_cpu_workers=6,
)
kinds = hm.worker_kinds
nt, nb = 16, 256
print(f"machine: {hm.n_cpu_workers} CPU workers + {len(hm.gpus)} GPUs; "
      f"Cholesky n={nt * nb}, tile {nb}\n")


def dmda():
    return StarPUScheduler(hm.n_workers, policy="dmda", worker_kinds=kinds)


# Real hybrid run vs CPU-only run.
hybrid = dmda().run(cholesky_program(nt, nb), HeterogeneousBackend(hm), seed=1)
cpu_only = StarPUScheduler(6, policy="dmda").run(
    cholesky_program(nt, nb), MachineBackend(hm.cpu), seed=1
)
flops = cholesky_program(nt, nb).total_flops
print(f"cpu-only : {cpu_only.makespan * 1e3:8.2f} ms  {cpu_only.gflops(flops):7.1f} GF/s")
print(f"hybrid   : {hybrid.makespan * 1e3:8.2f} ms  {hybrid.gflops(flops):7.1f} GF/s "
      f"({cpu_only.makespan / hybrid.makespan:.2f}x)\n")

# Kernel placement under dmda.
placement = {}
for e in hybrid.events:
    kind = kinds[e.worker]
    placement.setdefault(e.kernel, {"cpu": 0, "gpu": 0})[kind] += 1
print(f"{'kernel':<8} {'on CPU':>7} {'on GPU':>7}")
for kernel, counts in sorted(placement.items()):
    print(f"{kernel:<8} {counts['cpu']:>7} {counts['gpu']:>7}")

# Per-architecture calibration, then heterogeneous simulation.
models, _ = calibrate_heterogeneous(
    cholesky_program(12, nb), dmda(), HeterogeneousBackend(hm), kinds, seed=0
)
sim = dmda().run(
    cholesky_program(nt, nb), HeterogeneousSimulationBackend(models, kinds), seed=2
)
cmp_ = compare_traces(hybrid, sim)
print(f"\nsimulated hybrid: {sim.makespan * 1e3:8.2f} ms  "
      f"(error vs real: {cmp_.abs_error_percent:.2f}%)")
