#!/usr/bin/env python
"""Parallel simulation speed-up on *this* machine (paper §III).

Runs a real multithreaded tile Cholesky with NumPy kernels (BLAS releases
the GIL, so the worker threads genuinely overlap), then simulates the same
program with the threaded Task-Execution-Queue runtime using models
calibrated from the real run, and reports wall-clock speed-up plus
prediction accuracy.

Run:  python examples/parallel_speedup.py
"""

from repro.experiments import speedup_experiment

result = speedup_experiment(nt=10, nb=160, n_workers=4, seed=0)
print(result.report())
