#!/usr/bin/env python
"""Simulating a user-defined algorithm with the OmpSs-style front-end.

The simulator is not tied to the built-in factorizations: any serial
program with read/write-annotated tasks can be scheduled and simulated.
This example expresses a red-black Gauss-Seidel-flavoured 5-point stencil
sweep over a tiled 2-D grid using the ``@task`` decorator (the stand-in for
OmpSs ``#pragma omp task`` annotations, §IV-A1), then:

* inspects the resulting dependence DAG,
* simulates it under all three runtimes with a synthetic kernel model,
* shows how the DAG lower bound explains the observed makespans.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro import OmpSsScheduler, QuarkScheduler, SimulationBackend, StarPUScheduler
from repro.dag import build_dag, dag_stats, makespan_lower_bound
from repro.kernels.distributions import LognormalModel
from repro.kernels.timing import KernelModelSet
from repro.schedulers.ompss import TaskContext, task

GRID = 8  # tiles per side
SWEEPS = 4
TILE_BYTES = 128 * 128 * 8


@task(inout=("center",), in_=("north", "south", "east", "west"))
def stencil(center, north, south, east, west, flops=0.0):
    """One 5-point stencil update of a tile (dependences only)."""


ctx = TaskContext("stencil-sweeps", meta={"grid": GRID, "sweeps": SWEEPS})
reg = ctx.program.registry
tiles = {
    (i, j): reg.alloc(f"U[{i},{j}]", TILE_BYTES, key=("U", i, j))
    for i in range(GRID)
    for j in range(GRID)
}

with ctx:
    for sweep in range(SWEEPS):
        for parity in (0, 1):  # red-black ordering exposes parallelism
            for i in range(GRID):
                for j in range(GRID):
                    if (i + j) % 2 != parity:
                        continue
                    stencil(
                        tiles[(i, j)],
                        tiles[((i - 1) % GRID, j)],
                        tiles[((i + 1) % GRID, j)],
                        tiles[(i, (j - 1) % GRID)],
                        tiles[(i, (j + 1) % GRID)],
                        flops=5.0 * 128 * 128,
                    )

program = ctx.program
print(f"program: {len(program)} stencil tasks over a {GRID}x{GRID} grid, "
      f"{SWEEPS} sweeps")

dag = build_dag(program)
stats = dag_stats(dag, weights={"STENCIL": 1e-3})
print(f"DAG: depth {stats.depth}, max width {stats.max_width}, "
      f"average parallelism {stats.average_parallelism:.1f}")

# A synthetic kernel model: ~1 ms per stencil task, 5 % spread.
models = KernelModelSet(
    models={"STENCIL": LognormalModel(mu_log=float(np.log(1e-3)), sigma_log=0.05)}
)

workers = 16
bound = makespan_lower_bound(dag, workers, {"STENCIL": 1e-3})
print(f"\n{workers}-worker makespan lower bound: {bound * 1e3:.2f} ms")
print(f"{'runtime':<14} {'makespan ms':>12} {'vs bound':>9}")
for name, sched in [
    ("quark", QuarkScheduler(workers)),
    ("starpu ws", StarPUScheduler(workers, policy="ws")),
    ("ompss", OmpSsScheduler(workers)),
]:
    trace = sched.run(program, SimulationBackend(models), seed=0)
    trace.validate()
    print(f"{name:<14} {trace.makespan * 1e3:>12.2f} {trace.makespan / bound:>9.2f}x")

print("\nAll three runtimes schedule the same user-defined DAG — the "
      "portability property of the paper's simulator.")
