#!/usr/bin/env python
"""Trace gallery: regenerate the paper's visual artifacts.

Produces, under ``artifacts/gallery/``:

* ``qr_dag_4x4.dot``        — the Fig. 1 DAG (render with Graphviz);
* ``fig2_stream.txt``       — the Fig. 2 serial task listing;
* ``qr_real_vs_sim.svg``    — a Figs. 6-7 style stacked real/simulated QR
                              trace pair on one shared time axis;
* ``cholesky_real.svg``     — a Cholesky trace for comparison.

Run:  python examples/trace_gallery.py
"""

from pathlib import Path

from repro import (
    QuarkScheduler,
    calibrate,
    cholesky_program,
    get_machine,
    qr_program,
    run_real,
    simulate,
    write_svg,
)
from repro.dag import write_dot
from repro.trace import compare_traces, write_comparison_svg

OUT = Path("artifacts/gallery")
OUT.mkdir(parents=True, exist_ok=True)
machine = get_machine("magny_cours_48")

# -- Fig. 1: the 4x4 tile QR DAG --------------------------------------------
dot = write_dot(qr_program(4, 180), OUT / "qr_dag_4x4.dot")
print(f"wrote {dot}  (dot -Tpdf {dot} -o dag.pdf)")

# -- Fig. 2: the serial task stream ------------------------------------------
listing = qr_program(3, 180).describe()
(OUT / "fig2_stream.txt").write_text(listing + "\n")
print(f"wrote {OUT / 'fig2_stream.txt'}")

# -- Figs. 6-7: real vs simulated QR trace -----------------------------------
nt, nb = 22, 180
models, _ = calibrate(qr_program(16, nb), QuarkScheduler(48), machine, seed=0)
real = run_real(qr_program(nt, nb), QuarkScheduler(48), machine, seed=1)
sim = simulate(
    qr_program(nt, nb),
    QuarkScheduler(48),
    models,
    seed=2,
    warmup_penalty=machine.warmup_penalty,
)
pair = write_comparison_svg(
    real,
    sim,
    OUT / "qr_real_vs_sim.svg",
    titles=(
        f"real QR trace (n={nt * nb}, nb={nb}, QUARK, 48 cores)",
        "simulated QR trace (same scale)",
    ),
)
print(f"wrote {pair}")
print(compare_traces(real, sim).report())

# -- Bonus: a Cholesky machine trace -----------------------------------------
chol = run_real(cholesky_program(22, 200), QuarkScheduler(48), machine, seed=3)
print(f"wrote {write_svg(chol, OUT / 'cholesky_real.svg', title='Cholesky, QUARK, 48 cores')}")
