"""Rank scheduler×policy candidates by predicted makespan.

Two predictors, cheapest-sufficient first:

* the **simulate-based oracle** — run the discrete-event simulator once per
  candidate under the calibrated models and rank by simulated makespan.
  This is the paper's own validation loop turned into a decision procedure:
  a simulated run is ~10^3-10^4x cheaper than the real one, so simulating
  every candidate is affordable;
* an optional **fitted regressor** — least-squares over
  (:class:`~repro.portfolio.features.ProgramFeatures` vector → makespan)
  pairs harvested from sweep history (``repro.sweep_metrics/v1``
  documents), for settings where even one simulation per candidate is too
  much.  It reuses the same candidate labels so the two predictors are
  interchangeable in :func:`recommend`-style ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.simulator import simulate
from ..machine import get_machine
from ..runner.spec import SchedulerSpec
from .features import ProgramFeatures, extract_features

__all__ = [
    "PORTFOLIO_SCHEMA",
    "Candidate",
    "Prediction",
    "Recommendation",
    "MakespanRegressor",
    "default_candidates",
    "candidate_scheduler_spec",
    "predict_makespans",
    "recommend",
    "fit_regressor",
]

PORTFOLIO_SCHEMA = "repro.portfolio/v1"


@dataclass(frozen=True)
class Candidate:
    """One scheduler×policy point of the portfolio."""

    scheduler: str  # quark | starpu | ompss
    policy: Optional[str] = None  # StarPU only

    def __post_init__(self) -> None:
        if self.scheduler not in ("quark", "starpu", "ompss"):
            raise KeyError(
                f"unknown scheduler {self.scheduler!r}; choose quark/starpu/ompss"
            )
        if self.policy is not None and self.scheduler != "starpu":
            raise ValueError(f"{self.scheduler} takes no policy")

    @property
    def label(self) -> str:
        return self.scheduler if self.policy is None else f"{self.scheduler}/{self.policy}"

    @classmethod
    def from_label(cls, label: str) -> "Candidate":
        scheduler, _, policy = label.partition("/")
        return cls(scheduler=scheduler, policy=policy or None)


def default_candidates() -> Tuple[Candidate, ...]:
    """The full portfolio: the paper's three schedulers, StarPU per policy."""
    return (
        Candidate("quark"),
        Candidate("starpu", "eager"),
        Candidate("starpu", "prio"),
        Candidate("starpu", "ws"),
        Candidate("starpu", "dmda"),
        Candidate("ompss"),
    )


def candidate_scheduler_spec(candidate: Candidate, n_cores: int) -> SchedulerSpec:
    """Scheduler spec for ``candidate`` on an ``n_cores`` machine.

    Follows the experiment convention
    (:func:`~repro.experiments.config.experiment_scheduler_spec`): QUARK's
    master doubles as a worker so it gets every core; StarPU and OmpSs keep
    a dedicated submission thread.
    """
    if n_cores < 2:
        raise ValueError("portfolio candidates need at least 2 cores")
    if candidate.scheduler == "quark":
        return SchedulerSpec("quark", n_cores)
    if candidate.scheduler == "starpu":
        return SchedulerSpec(
            "starpu", n_cores - 1, policy=candidate.policy or "eager"
        )
    return SchedulerSpec("ompss", n_cores - 1)


@dataclass(frozen=True)
class Prediction:
    """One candidate's predicted makespan."""

    candidate: Candidate
    makespan_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheduler": self.candidate.scheduler,
            "policy": self.candidate.policy,
            "label": self.candidate.label,
            "makespan_s": self.makespan_s,
        }


@dataclass(frozen=True)
class Recommendation:
    """Ranked portfolio predictions for one program×machine instance."""

    machine: str
    n_cores: int
    seed: int
    predictor: str  # "simulate" | "regressor"
    features: ProgramFeatures
    predictions: Tuple[Prediction, ...]  # sorted by makespan ascending
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def best(self) -> Prediction:
        return self.predictions[0]

    def table(self) -> str:
        """One line per candidate, winner first."""
        best = self.best.makespan_s
        rows = []
        for i, p in enumerate(self.predictions):
            marker = "->" if i == 0 else "  "
            rel = p.makespan_s / best if best > 0 else float("inf")
            rows.append(
                f"{marker} {p.candidate.label:<14s} {p.makespan_s:.6f}s  ({rel:.3f}x)"
            )
        return "\n".join(rows)

    def to_document(self) -> Dict[str, object]:
        return {
            "schema": PORTFOLIO_SCHEMA,
            "machine": self.machine,
            "n_cores": self.n_cores,
            "seed": self.seed,
            "predictor": self.predictor,
            "best": self.best.to_dict(),
            "predictions": [p.to_dict() for p in self.predictions],
            "features": self.features.to_dict(),
            "meta": dict(self.meta),
        }


def predict_makespans(
    program,
    machine,
    models,
    *,
    candidates: Sequence[Candidate] = (),
    n_cores: Optional[int] = None,
    seed: int = 0,
    warmup: bool = True,
    n_sims: int = 1,
) -> List[Prediction]:
    """Simulate every candidate and return per-candidate makespans.

    ``machine`` is a preset name or :class:`~repro.machine.topology.Machine`;
    ``models`` the calibrated :class:`~repro.kernels.timing.KernelModelSet`.
    ``n_cores`` defaults to the machine's core count.  ``n_sims`` averages
    each candidate's makespan over that many simulation seeds (``seed`` ..
    ``seed + n_sims - 1``): near-tied candidates otherwise flip rank on
    single-draw sampling noise, and a 3-seed average already stabilises the
    top-1 pick at a few milliseconds per extra seed.
    """
    machine = get_machine(machine) if isinstance(machine, str) else machine
    if n_cores is None:
        n_cores = machine.n_cores
    if n_sims < 1:
        raise ValueError("n_sims must be at least 1")
    cands = tuple(candidates) or default_candidates()
    out = []
    for candidate in cands:
        total = 0.0
        for s in range(n_sims):
            scheduler = candidate_scheduler_spec(candidate, n_cores).build()
            trace = simulate(
                program,
                scheduler,
                models,
                seed=seed + s,
                warmup_penalty=machine.warmup_penalty if warmup else 0.0,
            )
            total += float(trace.makespan)
        out.append(Prediction(candidate=candidate, makespan_s=total / n_sims))
    return out


def recommend(
    program,
    machine,
    models,
    *,
    candidates: Sequence[Candidate] = (),
    n_cores: Optional[int] = None,
    seed: int = 0,
    warmup: bool = True,
    n_sims: int = 3,
    meta: Optional[Mapping[str, object]] = None,
) -> Recommendation:
    """Rank the portfolio for ``program`` on ``machine`` (simulate oracle)."""
    machine_obj = get_machine(machine) if isinstance(machine, str) else machine
    if n_cores is None:
        n_cores = machine_obj.n_cores
    predictions = predict_makespans(
        program,
        machine_obj,
        models,
        candidates=candidates,
        n_cores=n_cores,
        seed=seed,
        warmup=warmup,
        n_sims=n_sims,
    )
    ranked = tuple(sorted(predictions, key=lambda p: (p.makespan_s, p.candidate.label)))
    features = extract_features(program, models=models, n_workers=n_cores)
    return Recommendation(
        machine=getattr(machine_obj, "name", str(machine)),
        n_cores=n_cores,
        seed=seed,
        predictor="simulate",
        features=features,
        predictions=ranked,
        meta=dict(meta or {}),
    )


class MakespanRegressor:
    """Per-candidate linear makespan model over program feature vectors.

    ``fit`` solves one least-squares problem per candidate label on
    ``[1, features...] @ w = makespan``; ``predict`` ranks candidates for a
    new feature vector.  This is the "optional fitted regressor over sweep
    history": far cruder than the simulate oracle, but it answers in
    microseconds from nothing but structure.
    """

    def __init__(self) -> None:
        self._weights: Dict[str, np.ndarray] = {}

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(sorted(self._weights))

    def fit(self, rows: Sequence[Tuple[str, Sequence[float], float]]) -> "MakespanRegressor":
        """``rows`` are ``(candidate_label, feature_vector, makespan_s)``."""
        by_label: Dict[str, List[Tuple[Sequence[float], float]]] = {}
        for label, vec, makespan in rows:
            by_label.setdefault(str(label), []).append((vec, float(makespan)))
        if not by_label:
            raise ValueError("no training rows")
        for label, pairs in by_label.items():
            x = np.array([[1.0, *vec] for vec, _ in pairs])
            y = np.array([m for _, m in pairs])
            w, *_ = np.linalg.lstsq(x, y, rcond=None)
            self._weights[label] = w
        return self

    def predict(self, label: str, features: Sequence[float]) -> float:
        try:
            w = self._weights[label]
        except KeyError:
            raise KeyError(
                f"no fitted model for candidate {label!r}; fitted: {self.labels}"
            ) from None
        x = np.array([1.0, *features])
        if x.size != w.size:
            raise ValueError(
                f"feature vector length {x.size - 1} does not match "
                f"training length {w.size - 1}"
            )
        return float(x @ w)

    def rank(self, features: Sequence[float]) -> List[Prediction]:
        """All fitted candidates ranked by predicted makespan."""
        preds = [
            Prediction(
                candidate=Candidate.from_label(label),
                makespan_s=self.predict(label, features),
            )
            for label in self.labels
        ]
        return sorted(preds, key=lambda p: (p.makespan_s, p.candidate.label))


def fit_regressor(
    history: Mapping[str, object],
    *,
    models=None,
) -> MakespanRegressor:
    """Fit a :class:`MakespanRegressor` from a sweep-metrics document.

    ``history`` is a ``repro.sweep_metrics/v1`` document
    (:meth:`~repro.runner.runner.SweepResult.metrics_document`); each run
    contributes one ``(candidate, features(program), makespan)`` row.
    ``models`` optionally weights the feature extraction.
    """
    runs = history.get("runs", [])
    rows: List[Tuple[str, Sequence[float], float]] = []
    for run in runs:
        spec = run.get("spec", {})
        program_doc = spec.get("program", {})
        sched = spec.get("scheduler", {})
        metrics = run.get("metrics", {})
        makespan = metrics.get("makespan")
        if not program_doc or not sched or makespan is None:
            continue
        from ..runner.spec import ProgramSpec

        program = ProgramSpec.from_dict(program_doc).build()
        candidate = Candidate(
            scheduler=str(sched["name"]),
            policy=sched.get("policy") if sched.get("name") == "starpu" else None,
        )
        features = extract_features(
            program, models=models, n_workers=int(sched.get("n_workers", 1))
        )
        rows.append((candidate.label, features.to_vector(), float(makespan)))
    if not rows:
        raise ValueError("sweep history contains no usable (spec, makespan) rows")
    return MakespanRegressor().fit(rows)
