"""Scheduler portfolio selection: predict the winning scheduler per instance.

The paper validates its simulator by matching predicted to measured
makespans; this layer *uses* those predictions the way borg uses its runtime
models — as a decision procedure.  Given a program, a machine, and a
calibrated model set (:mod:`repro.calib`), the portfolio ranks
scheduler×policy candidates by simulated makespan and recommends the winner.

* :mod:`repro.portfolio.features` — structural features of a program
  (task/edge counts, CSR critical-path estimate, width/depth) for reporting
  and for the optional fitted regressor.
* :mod:`repro.portfolio.predictor` — the candidate set, the simulate-based
  oracle, the recommendation document, and a least-squares regressor fitted
  on sweep history for cheap re-ranking without simulation.
"""

from .features import ProgramFeatures, extract_features  # noqa: F401
from .predictor import (  # noqa: F401
    PORTFOLIO_SCHEMA,
    Candidate,
    MakespanRegressor,
    Prediction,
    Recommendation,
    candidate_scheduler_spec,
    default_candidates,
    fit_regressor,
    predict_makespans,
    recommend,
)

__all__ = [
    "ProgramFeatures",
    "extract_features",
    "PORTFOLIO_SCHEMA",
    "Candidate",
    "Prediction",
    "Recommendation",
    "MakespanRegressor",
    "candidate_scheduler_spec",
    "default_candidates",
    "fit_regressor",
    "predict_makespans",
    "recommend",
]
