"""Structural features of a task program for portfolio decisions.

Everything is computed from the :class:`~repro.core.soa.SoAProgram` CSR
arrays in one forward pass — hazards only ever point backwards in stream
order (successors have strictly higher task ids), so a single ascending scan
settles each task's earliest finish time and DAG level before any of its
successors is visited.

Durations come from a fitted :class:`~repro.kernels.timing.KernelModelSet`
when one is supplied (per-kernel means), else every task counts 1.0 — the
unit-cost critical path, a purely structural measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.soa import SoAProgram

__all__ = ["ProgramFeatures", "extract_features"]


@dataclass(frozen=True)
class ProgramFeatures:
    """One program's structural profile, plus duration-weighted estimates.

    ``critical_path_s`` is the longest duration-weighted path through the
    DAG; ``total_work_s`` the serial sum; ``ideal_makespan_s`` the classic
    lower bound ``max(critical_path, total_work / n_workers)``;
    ``avg_parallelism`` the ratio ``total_work / critical_path``.  ``depth``
    counts DAG levels (hops), ``max_level_width`` the largest antichain of a
    level decomposition — the structural analogue of machine saturation.
    """

    n_tasks: int
    n_edges: int
    depth: int
    max_level_width: int
    n_workers: int
    critical_path_s: float
    total_work_s: float
    ideal_makespan_s: float
    avg_parallelism: float
    kernel_counts: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_tasks": self.n_tasks,
            "n_edges": self.n_edges,
            "depth": self.depth,
            "max_level_width": self.max_level_width,
            "n_workers": self.n_workers,
            "critical_path_s": self.critical_path_s,
            "total_work_s": self.total_work_s,
            "ideal_makespan_s": self.ideal_makespan_s,
            "avg_parallelism": self.avg_parallelism,
            "kernel_counts": dict(self.kernel_counts),
        }

    def to_vector(self) -> List[float]:
        """Numeric feature vector (kernel counts appended in name order)."""
        vec = [
            float(self.n_tasks),
            float(self.n_edges),
            float(self.depth),
            float(self.max_level_width),
            float(self.n_workers),
            self.critical_path_s,
            self.total_work_s,
            self.ideal_makespan_s,
            self.avg_parallelism,
        ]
        vec.extend(float(self.kernel_counts[k]) for k in sorted(self.kernel_counts))
        return vec


def extract_features(
    program,
    *,
    models=None,
    n_workers: int = 1,
) -> ProgramFeatures:
    """Compute :class:`ProgramFeatures` for ``program``.

    ``models`` is an optional :class:`~repro.kernels.timing.KernelModelSet`
    supplying per-kernel mean durations; without one, unit costs are used.
    ``n_workers`` only affects ``ideal_makespan_s`` (and is recorded).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    soa = SoAProgram.for_program(program)
    n = soa.n_tasks
    if n == 0:
        raise ValueError("cannot extract features from an empty program")

    if models is not None:
        kernel_means = np.array(
            [float(models.mean_duration(name)) for name in soa.kernel_names]
        )
    else:
        kernel_means = np.ones(len(soa.kernel_names))
    durations = kernel_means[soa.kernel_ids]

    finish = durations.copy()  # earliest finish; preds settle before succs
    level = np.zeros(n, dtype=np.int64)
    indptr, indices = soa.succ_indptr, soa.succ_indices
    for tid in range(n):
        f = finish[tid]
        hop = level[tid] + 1
        for s in indices[indptr[tid] : indptr[tid + 1]]:
            if f + durations[s] > finish[s]:
                finish[s] = f + durations[s]
            if hop > level[s]:
                level[s] = hop

    counts: Dict[str, int] = {}
    for kid, name in enumerate(soa.kernel_names):
        counts[name] = int(np.sum(soa.kernel_ids == kid))
    total_work = float(np.sum(durations))
    critical_path = float(np.max(finish))
    level_widths = np.bincount(level)

    return ProgramFeatures(
        n_tasks=n,
        n_edges=int(soa.succ_indices.size),
        depth=int(np.max(level)) + 1,
        max_level_width=int(np.max(level_widths)),
        n_workers=n_workers,
        critical_path_s=critical_path,
        total_work_s=total_work,
        ideal_makespan_s=max(critical_path, total_work / n_workers),
        avg_parallelism=total_work / critical_path,
        kernel_counts=counts,
    )
