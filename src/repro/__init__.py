"""repro — Parallel Simulation of Superscalar Scheduling.

A reproduction of Haugen, Luszczek, Kurzak, YarKhan, Dongarra,
"Parallel Simulation of Superscalar Scheduling", ICPP 2014.

The package provides:

* :mod:`repro.core` — the paper's contribution: a discrete-event simulation
  of superscalar scheduling (clock, Task Execution Queue, simulated kernels,
  race-condition guards, real-vs-simulated validation API);
* :mod:`repro.schedulers` — from-scratch QUARK-, StarPU-, and OmpSs-like
  runtimes with genuine hazard analysis and per-runtime policies;
* :mod:`repro.machine` — the synthetic multicore testbed (topology, caches,
  contention, jitter, warm-up) standing in for the paper's 48-core AMD box;
* :mod:`repro.kernels` — numeric tile kernels plus timing-distribution
  fitting (normal / gamma / log-normal / empirical);
* :mod:`repro.algorithms` — tile Cholesky, QR, and LU task streams and their
  numeric execution;
* :mod:`repro.dag` / :mod:`repro.trace` — DAG and trace tooling;
* :mod:`repro.experiments` — drivers regenerating every figure of the paper.
"""

from .algorithms import (
    TiledMatrix,
    TileStore,
    cholesky_program,
    execute_cholesky,
    execute_lu,
    execute_qr,
    lu_program,
    qr_program,
)
from .core import (
    Access,
    AccessMode,
    DataRef,
    DataRegistry,
    Program,
    SimClock,
    SimulationBackend,
    TaskExecutionQueue,
    TaskSpec,
    ValidationResult,
    run_real,
    simulate,
    validate,
)
from .kernels import KernelModelSet, fit_all_families, fit_family
from .machine import MACHINE_PRESETS, Machine, MachineBackend, calibrate, get_machine
from .schedulers import (
    OmpSsScheduler,
    QuarkScheduler,
    StarPUScheduler,
    make_scheduler,
)
from .trace import Trace, TraceEvent, compare_traces, save_trace, write_svg

__version__ = "1.0.0"

__all__ = [
    "TiledMatrix",
    "TileStore",
    "cholesky_program",
    "execute_cholesky",
    "execute_lu",
    "execute_qr",
    "lu_program",
    "qr_program",
    "Access",
    "AccessMode",
    "DataRef",
    "DataRegistry",
    "Program",
    "SimClock",
    "SimulationBackend",
    "TaskExecutionQueue",
    "TaskSpec",
    "ValidationResult",
    "run_real",
    "simulate",
    "validate",
    "KernelModelSet",
    "fit_all_families",
    "fit_family",
    "MACHINE_PRESETS",
    "Machine",
    "MachineBackend",
    "calibrate",
    "get_machine",
    "OmpSsScheduler",
    "QuarkScheduler",
    "StarPUScheduler",
    "make_scheduler",
    "Trace",
    "TraceEvent",
    "compare_traces",
    "save_trace",
    "write_svg",
    "__version__",
]
