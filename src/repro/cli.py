"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``simulate``
    Full paper pipeline for one problem: calibrate on a small run, simulate,
    validate against a real run, report (optionally SVG / ASCII Gantt).
``run``
    One real run on the machine model; prints trace statistics.
``dag``
    Build a factorization DAG; print statistics, optionally write DOT.
``stream``
    Print the serial task stream (the paper's Fig. 2 view).
``figure``
    Regenerate one of the paper's figures by experiment id.

Every command is pure offline computation on the bundled machine models.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .algorithms import cholesky_program, lu_program, qr_program
from .core.simulator import run_real, validate
from .dag import build_dag, dag_stats, write_dot
from .experiments import (
    SMOKE_SWEEP_NTS,
    SWEEP_NTS,
    distribution_figure,
    fig1_dag,
    fig2_stream,
    figure_table,
    performance_figure,
    race_experiment,
    speedup_experiment,
    trace_experiment,
)
from .machine import calibrate, get_machine
from .schedulers import make_scheduler
from .trace.ascii import ascii_gantt
from .trace.stats import trace_statistics
from .trace.svg import write_comparison_svg, write_svg

__all__ = ["main"]

_GENERATORS: Dict[str, Callable] = {
    "cholesky": cholesky_program,
    "qr": qr_program,
    "lu": lu_program,
}


def _program(args, nt: Optional[int] = None):
    gen = _GENERATORS[args.algorithm]
    kwargs = {}
    if getattr(args, "panel_width", 1) != 1:
        kwargs["panel_width"] = args.panel_width
    return gen(nt if nt is not None else args.nt, args.nb, **kwargs)


def _scheduler(args):
    kwargs = {}
    if args.scheduler == "starpu" and getattr(args, "policy", None):
        kwargs["policy"] = args.policy
    if getattr(args, "window", None):
        kwargs["window"] = args.window
    return make_scheduler(args.scheduler, args.workers, **kwargs)


def _add_problem_args(p: argparse.ArgumentParser, *, with_sched: bool = True) -> None:
    p.add_argument("--algorithm", choices=sorted(_GENERATORS), default="cholesky")
    p.add_argument("--nt", type=int, default=16, help="tiles per matrix side")
    p.add_argument("--nb", type=int, default=200, help="tile order")
    p.add_argument("--panel-width", type=int, default=1, dest="panel_width",
                   help="cores per panel task (multi-threaded tasks)")
    if with_sched:
        p.add_argument("--scheduler", choices=("quark", "starpu", "ompss"),
                       default="quark")
        p.add_argument("--policy", default=None,
                       help="StarPU policy (eager/prio/ws/dmda)")
        p.add_argument("--workers", type=int, default=48)
        p.add_argument("--window", type=int, default=None)
        p.add_argument("--machine", default="magny_cours_48")
        p.add_argument("--seed", type=int, default=0)


def _cmd_simulate(args) -> int:
    machine = get_machine(args.machine)
    models, _ = calibrate(
        _program(args, nt=args.cal_nt), _scheduler(args), machine,
        family=args.family, seed=args.seed,
    )
    result = validate(
        _program(args), _scheduler(args), machine, models,
        seed_real=args.seed + 1, seed_sim=args.seed + 2,
        warmup_penalty=machine.warmup_penalty,
    )
    print(result.report())
    if args.svg:
        path = write_comparison_svg(result.real, result.simulated, args.svg)
        print(f"wrote {path}")
    if args.gantt:
        print("\nreal run:")
        print(ascii_gantt(result.real, width=args.gantt_width))
        print("\nsimulated run:")
        print(ascii_gantt(result.simulated, width=args.gantt_width))
    return 0


def _cmd_run(args) -> int:
    machine = get_machine(args.machine)
    trace = run_real(_program(args), _scheduler(args), machine, seed=args.seed)
    trace.validate()
    stats = trace_statistics(trace)
    print(stats.report())
    print(f"achieved {trace.gflops(_program(args).total_flops):.2f} GFLOP/s "
          f"(machine peak {machine.peak_gflops:.0f})")
    if args.svg:
        print(f"wrote {write_svg(trace, args.svg)}")
    if args.gantt:
        print(ascii_gantt(trace, width=args.gantt_width))
    return 0


def _cmd_dag(args) -> int:
    program = _program(args)
    dag = build_dag(program)
    stats = dag_stats(dag)
    print(f"{program.name}: {stats.n_tasks} tasks, {dag.number_of_edges()} hazard "
          f"edges over {stats.n_edges} parent/child pairs")
    print(f"depth {stats.depth}, max width {stats.max_width}, "
          f"average parallelism {stats.average_parallelism:.2f}")
    if args.dot:
        print(f"wrote {write_dot(dag, args.dot)}")
    return 0


def _cmd_stream(args) -> int:
    print(_program(args).describe(limit=args.limit))
    return 0


def _cmd_figure(args) -> int:
    name = args.id
    if name == "fig1":
        print(fig1_dag().report())
    elif name == "fig2":
        _, described = fig2_stream()
        print(described)
    elif name in ("fig3", "fig4"):
        fig = distribution_figure(name)
        print(fig.table())
        print(f"best by AIC: {fig.best_family}")
    elif name == "fig5":
        _, table = race_experiment()
        print(table)
    elif name in ("fig6", "fig7", "fig6_7"):
        print(trace_experiment().report())
    elif name in ("fig8", "fig9", "fig10"):
        scheduler = {"fig8": "ompss", "fig9": "starpu", "fig10": "quark"}[name]
        nts = SWEEP_NTS if args.full else SMOKE_SWEEP_NTS
        data = performance_figure(scheduler, nts=nts)
        print(figure_table(scheduler, data))
    elif name == "speedup":
        print(speedup_experiment().report())
    else:
        print(f"unknown figure id {name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel Simulation of Superscalar Scheduling "
        "(ICPP 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="calibrate, simulate, and validate")
    _add_problem_args(p)
    p.add_argument("--cal-nt", type=int, default=16, dest="cal_nt")
    p.add_argument("--family", default="lognormal")
    p.add_argument("--svg", default=None, help="write real/sim comparison SVG")
    p.add_argument("--gantt", action="store_true", help="print ASCII Gantt charts")
    p.add_argument("--gantt-width", type=int, default=100, dest="gantt_width")
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("run", help="one real run on the machine model")
    _add_problem_args(p)
    p.add_argument("--svg", default=None)
    p.add_argument("--gantt", action="store_true")
    p.add_argument("--gantt-width", type=int, default=100, dest="gantt_width")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("dag", help="build and analyse a dependence DAG")
    _add_problem_args(p, with_sched=False)
    p.add_argument("--dot", default=None, help="write Graphviz DOT file")
    p.set_defaults(fn=_cmd_dag)

    p = sub.add_parser("stream", help="print the serial task stream (Fig. 2 view)")
    _add_problem_args(p, with_sched=False)
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(fn=_cmd_stream)

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("id", help="fig1..fig10, fig6_7, speedup")
    p.add_argument("--full", action="store_true", help="full-size sweeps")
    p.set_defaults(fn=_cmd_figure)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
