"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``simulate``
    Full paper pipeline for one problem: calibrate on a small run, simulate,
    validate against a real run, report (optionally SVG / ASCII Gantt).
``run``
    One real run on the machine model; prints trace statistics.
``dag``
    Build a factorization DAG; print statistics, optionally write DOT.
``stream``
    Print the serial task stream (the paper's Fig. 2 view).
``figure``
    Regenerate one of the paper's figures by experiment id.
``sweep``
    Run a (scheduler x size x seed) grid through the parallel runner with
    result caching; export per-run metrics JSON.
``calibrate``
    Fit per-kernel duration models from a probe directory's timing
    artifacts; select families via AIC/BIC + KS gate; emit a versioned
    ``repro.calib/v1`` document (feed back via ``sweep --calibration``).
``recommend``
    Rank every scheduler x policy candidate by simulated makespan under a
    calibrated model set and recommend the winner; optionally validate
    against exhaustive real runs.
``portfolio``
    Portfolio validation experiment: recommendations vs. exhaustive sweeps
    over an (algorithm x size) grid, reporting top-1 accuracy, regret, and
    prediction error with CI-gateable thresholds.
``stress``
    Randomized stress sweep of the threaded runtime: programs x race
    guards x worker counts, optionally with injected faults, every trace
    verified.  Exit status 1 when any combination fails.
``bench``
    Micro/macro benchmark suite over the simulation hot paths; writes a
    schema-tagged ``BENCH_*.json`` report and optionally gates against a
    committed baseline (exit status 1 on regression or on baseline suites
    missing from the fresh report).
``bench-trend``
    Append a benchmark report to the cross-build JSONL history and emit a
    markdown per-suite delta table (the CI job-summary trend step).
``timeline``
    One observed run with a recording probe attached: exports the Chrome
    ``trace_event`` JSON (open at https://ui.perfetto.dev), the virtual-time
    counter series (CSV + JSON), the per-task wait attribution report, and
    the run metrics.
``serve``
    Persistent simulation service over local HTTP/JSON: coalesces identical
    in-flight requests, shares the result cache across clients, applies
    backpressure past a pending limit, and drains gracefully on SIGTERM.
``client``
    Query a running ``serve`` daemon: health/stats probes, or fan a
    (scheduler x size x seed) grid out over the service.
``fleet``
    Sharded service fleet: N ``serve`` daemons (one process and one cache
    partition each) behind a router that consistent-hashes ``cache_key``
    across them, with fleet-level admission control, shard mark-down +
    failover retry, and whole-fleet SIGTERM drain.
``loadgen``
    Open- or closed-loop load generator: replay a spec grid (or a recorded
    request log) against a live ``serve`` daemon or ``fleet`` router and
    report throughput, latency quantiles (client-side and scraped from the
    server's ``/metrics`` histograms), 429 rate, and per-shard balance as a
    ``repro.loadgen/v2`` JSON document.

Every command is pure offline computation on the bundled machine models.
"""

from __future__ import annotations

import argparse
import sys
from importlib import metadata as _importlib_metadata
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from .algorithms import cholesky_program, lu_program, qr_program
from .calib import DEFAULT_FAMILIES as _CALIB_DEFAULT_FAMILIES
from .core.cells import ENGINE_MODES, default_engine_mode
from .core.soa import ENGINE_BACKENDS, default_engine_backend
from .core.simulator import run_real, validate
from .dag import build_dag, dag_stats, write_dot
from .experiments import (
    SMOKE_SWEEP_NTS,
    SWEEP_NTS,
    distribution_figure,
    fig1_dag,
    fig2_stream,
    figure_table,
    performance_figure,
    race_experiment,
    speedup_experiment,
    trace_experiment,
)
from .experiments.config import CAL_NT, experiment_scheduler_spec
from .machine import calibrate, get_machine
from .runner import ProgramSpec, ResultCache, RunSpec, default_cache_dir
from .runner import sweep as runner_sweep
from .schedulers import make_scheduler
from .trace.ascii import ascii_gantt
from .trace.compare import compare_traces
from .trace.stats import trace_statistics
from .trace.svg import write_comparison_svg, write_svg

__all__ = ["main"]

_GENERATORS: Dict[str, Callable] = {
    "cholesky": cholesky_program,
    "qr": qr_program,
    "lu": lu_program,
}


def _program(args, nt: Optional[int] = None):
    gen = _GENERATORS[args.algorithm]
    kwargs = {}
    if getattr(args, "panel_width", 1) != 1:
        kwargs["panel_width"] = args.panel_width
    return gen(nt if nt is not None else args.nt, args.nb, **kwargs)


def _scheduler(args):
    kwargs = {}
    if args.scheduler == "starpu" and getattr(args, "policy", None):
        kwargs["policy"] = args.policy
    if getattr(args, "window", None):
        kwargs["window"] = args.window
    return make_scheduler(args.scheduler, args.workers, **kwargs)


def _add_engine_mode_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--engine-mode", choices=ENGINE_MODES, default=None,
                   dest="engine_mode",
                   help="event-loop realisation: serialized (single queue), "
                   "multicell (one thread per machine-socket cell), or auto "
                   "(multicell when the partition is exploitable); default "
                   "$REPRO_ENGINE_MODE or serialized")


def _engine_mode(args) -> str:
    mode = getattr(args, "engine_mode", None)
    return default_engine_mode() if mode is None else mode


def _add_engine_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--engine-backend", choices=ENGINE_BACKENDS, default=None,
                   dest="engine_backend",
                   help="engine implementation: object (per-task-node event "
                   "loop) or array (SoA core, byte-identical traces); "
                   "default $REPRO_ENGINE_BACKEND or object")


def _engine_backend(args) -> str:
    backend = getattr(args, "engine_backend", None)
    return default_engine_backend() if backend is None else backend


def _add_problem_args(p: argparse.ArgumentParser, *, with_sched: bool = True) -> None:
    p.add_argument("--algorithm", choices=sorted(_GENERATORS), default="cholesky")
    p.add_argument("--nt", type=int, default=16, help="tiles per matrix side")
    p.add_argument("--nb", type=int, default=200, help="tile order")
    p.add_argument("--panel-width", type=int, default=1, dest="panel_width",
                   help="cores per panel task (multi-threaded tasks)")
    if with_sched:
        p.add_argument("--scheduler", choices=("quark", "starpu", "ompss"),
                       default="quark")
        p.add_argument("--policy", default=None,
                       help="StarPU policy (eager/prio/ws/dmda)")
        p.add_argument("--workers", type=int, default=48)
        p.add_argument("--window", type=int, default=None)
        p.add_argument("--machine", default="magny_cours_48")
        p.add_argument("--seed", type=int, default=0)


def _cmd_simulate(args) -> int:
    machine = get_machine(args.machine)
    models, _ = calibrate(
        _program(args, nt=args.cal_nt), _scheduler(args), machine,
        family=args.family, seed=args.seed,
    )
    metrics_real = metrics_sim = None
    if args.metrics_out:
        from .core.metrics import RunMetrics

        metrics_real, metrics_sim = RunMetrics(), RunMetrics()
    result = validate(
        _program(args), _scheduler(args), machine, models,
        seed_real=args.seed + 1, seed_sim=args.seed + 2,
        warmup_penalty=machine.warmup_penalty,
        metrics_real=metrics_real, metrics_sim=metrics_sim,
    )
    print(result.report())
    if args.metrics_out:
        import json
        from pathlib import Path

        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": "repro.validate_metrics/v1",
            "real": metrics_real.to_dict(),
            "simulated": metrics_sim.to_dict(),
        }
        path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        print(f"wrote {path}")
    if args.svg:
        path = write_comparison_svg(result.real, result.simulated, args.svg)
        print(f"wrote {path}")
    if args.gantt:
        print("\nreal run:")
        print(ascii_gantt(result.real, width=args.gantt_width))
        print("\nsimulated run:")
        print(ascii_gantt(result.simulated, width=args.gantt_width))
    return 0


def _cmd_run(args) -> int:
    machine = get_machine(args.machine)
    metrics = None
    if args.metrics_out:
        from .core.metrics import RunMetrics

        metrics = RunMetrics()
    trace = run_real(
        _program(args), _scheduler(args), machine, seed=args.seed, metrics=metrics,
        engine_mode=_engine_mode(args), engine_backend=_engine_backend(args),
    )
    trace.validate()
    if args.metrics_out:
        print(f"wrote {metrics.write_json(args.metrics_out)}")
    stats = trace_statistics(trace)
    print(stats.report())
    print(f"achieved {trace.gflops(_program(args).total_flops):.2f} GFLOP/s "
          f"(machine peak {machine.peak_gflops:.0f})")
    if args.svg:
        print(f"wrote {write_svg(trace, args.svg)}")
    if args.gantt:
        print(ascii_gantt(trace, width=args.gantt_width))
    return 0


def _cmd_dag(args) -> int:
    program = _program(args)
    dag = build_dag(program)
    stats = dag_stats(dag)
    print(f"{program.name}: {stats.n_tasks} tasks, {dag.number_of_edges()} hazard "
          f"edges over {stats.n_edges} parent/child pairs")
    print(f"depth {stats.depth}, max width {stats.max_width}, "
          f"average parallelism {stats.average_parallelism:.2f}")
    if args.dot:
        print(f"wrote {write_dot(dag, args.dot)}")
    return 0


def _cmd_stream(args) -> int:
    print(_program(args).describe(limit=args.limit))
    return 0


def _cmd_figure(args) -> int:
    name = args.id
    if name == "fig1":
        print(fig1_dag().report())
    elif name == "fig2":
        _, described = fig2_stream()
        print(described)
    elif name in ("fig3", "fig4"):
        fig = distribution_figure(name)
        print(fig.table())
        print(f"best by AIC: {fig.best_family}")
    elif name == "fig5":
        _, table = race_experiment()
        print(table)
    elif name in ("fig6", "fig7", "fig6_7"):
        print(trace_experiment().report())
    elif name in ("fig8", "fig9", "fig10"):
        scheduler = {"fig8": "ompss", "fig9": "starpu", "fig10": "quark"}[name]
        nts = SWEEP_NTS if args.full else SMOKE_SWEEP_NTS
        data = performance_figure(scheduler, nts=nts)
        print(figure_table(scheduler, data))
    elif name == "speedup":
        print(speedup_experiment().report())
    else:
        print(f"unknown figure id {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.reporting import format_table

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2

    sched_spec = {
        name: experiment_scheduler_spec(name, n_cores=args.workers)
        for name in args.schedulers
    }
    points = []  # (scheduler, nt, seed, [spec indices])
    specs = []
    for name in args.schedulers:
        for nt in args.nts:
            for seed in args.seeds:
                program = ProgramSpec(args.algorithm, nt, args.nb)
                idx = []
                if args.mode in ("real", "validate"):
                    idx.append(len(specs))
                    specs.append(
                        RunSpec(
                            program=program,
                            scheduler=sched_spec[name],
                            machine=args.machine,
                            seed=seed * 1000 + nt,
                            mode="real",
                            engine_mode=_engine_mode(args),
                            engine_backend=_engine_backend(args),
                        )
                    )
                if args.mode in ("simulated", "validate"):
                    idx.append(len(specs))
                    specs.append(
                        RunSpec(
                            program=program,
                            scheduler=sched_spec[name],
                            machine=args.machine,
                            seed=seed * 1000 + nt + 1,
                            mode="simulated",
                            cal_nt=args.cal_nt,
                            cal_seed=seed,
                            family=args.family,
                            calibration=args.calibration,
                            engine_mode=_engine_mode(args),
                            engine_backend=_engine_backend(args),
                        )
                    )
                points.append((name, nt, seed, idx))

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir else default_cache_dir())
    progress = (lambda msg: print(msg, file=sys.stderr)) if args.verbose else None
    outcome = runner_sweep(
        specs, jobs=args.jobs, cache=cache, progress=progress,
        probe_dir=args.probe_dir,
    )

    rows = []
    for name, nt, seed, idx in points:
        results = [outcome.results[i] for i in idx]
        flops = ProgramSpec(args.algorithm, nt, args.nb).build().total_flops
        cached = "+".join("hit" if r.cached else "run" for r in results)
        wall = sum(r.wall_s for r in results)
        if args.mode == "validate":
            real, sim = (r.load_trace() for r in results)
            err = compare_traces(real, sim).abs_error_percent
            rows.append(
                (name, nt, seed, real.gflops(flops), sim.gflops(flops), err, cached, wall)
            )
        else:
            gf = results[0].load_trace().gflops(flops)
            real_gf, sim_gf = (gf, "-") if args.mode == "real" else ("-", gf)
            rows.append((name, nt, seed, real_gf, sim_gf, "-", cached, wall))
    headers = ("scheduler", "nt", "seed", "real GF/s", "sim GF/s", "err %", "cache", "wall s")
    print(
        format_table(
            headers,
            rows,
            title=f"sweep: {args.algorithm} nb={args.nb} machine={args.machine} "
            f"mode={args.mode}",
        )
    )
    print(outcome.summary())
    if args.metrics_out:
        print(f"wrote {outcome.write_metrics(args.metrics_out)}")
    return 0


def _cmd_calibrate(args) -> int:
    from .calib import fit_from_probe_dir

    try:
        doc = fit_from_probe_dir(
            args.probe_dir,
            families=tuple(args.families),
            criterion=args.criterion,
            ks_alpha=args.ks_alpha,
            min_samples=args.min_samples,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(doc.summary())
    print(f"digest {doc.digest()}")
    if args.out:
        print(f"wrote {doc.write(args.out)}")
    return 0


def _cmd_recommend(args) -> int:
    import json

    from .calib import fit_from_samples, load_calibration
    from .machine import collect_samples
    from .portfolio import candidate_scheduler_spec, default_candidates, recommend

    machine = get_machine(args.machine)
    n_cores = args.workers if args.workers else machine.n_cores
    program = _program(args)

    if args.calibration:
        try:
            document = load_calibration(args.calibration)
        except (FileNotFoundError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        cal_source = f"document {args.calibration}"
    else:
        # No document supplied: refit from one real run of the calibration
        # problem under QUARK (the ``simulate`` command's recipe, routed
        # through the calib fitting pipeline instead of ``calibrate``).
        cal_program = _program(args, nt=args.cal_nt)
        cal_sched = experiment_scheduler_spec("quark", n_cores=n_cores).build()
        cal_trace = run_real(cal_program, cal_sched, machine, seed=args.seed)
        samples = collect_samples(cal_trace, drop_first_per_worker=True)
        document = fit_from_samples(
            samples,
            provenance={"source": "recommend", "cal_nt": args.cal_nt,
                        "machine": args.machine, "seed": args.seed},
        )
        cal_source = f"refit from quark run (cal_nt={args.cal_nt})"

    rec = recommend(
        program,
        machine,
        document.to_model_set(),
        n_cores=n_cores,
        seed=args.seed + 1,
        n_sims=args.sims,
    )
    print(f"portfolio for {args.algorithm} nt={args.nt} on {args.machine} "
          f"({n_cores} cores), calibration: {cal_source}")
    print(rec.table())

    status = 0
    if args.validate:
        measured = {}
        for candidate in default_candidates():
            sched = candidate_scheduler_spec(candidate, n_cores).build()
            trace = run_real(program, sched, machine, seed=args.seed)
            measured[candidate.label] = float(trace.makespan)
        true_best = min(sorted(measured), key=lambda lb: measured[lb])
        hit = true_best == rec.best.candidate.label
        regret = (measured[rec.best.candidate.label] - measured[true_best]) / measured[
            true_best
        ]
        print(f"measured best: {true_best} ({measured[true_best]:.6f}s) -- "
              f"{'HIT' if hit else 'MISS'}, regret {regret * 100:.2f}%")
        status = 0 if hit else 1
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(rec.to_document(), sort_keys=True, indent=2) + "\n")
        print(f"wrote {path}")
    return status


def _cmd_portfolio(args) -> int:
    import json

    from .experiments import SWEEP_NTS, portfolio_experiment

    kwargs = {}
    if args.full:
        kwargs = {"machine": "magny_cours_48", "nts": tuple(SWEEP_NTS[:3])}
    if args.machine:
        kwargs["machine"] = args.machine
    if args.nts:
        kwargs["nts"] = tuple(args.nts)
    if args.algorithms:
        kwargs["algorithms"] = tuple(args.algorithms)
    report = portfolio_experiment(seed=args.seed, **kwargs)
    print(report.report())
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_document(), sort_keys=True, indent=2) + "\n"
        )
        print(f"wrote {path}")
    ok = report.top1_accuracy >= args.min_accuracy and (
        report.mean_prediction_error <= args.max_error
    )
    if not ok:
        print(
            f"below target: top-1 {report.top1_accuracy * 100:.0f}% "
            f"(need >= {args.min_accuracy * 100:.0f}%), prediction error "
            f"{report.mean_prediction_error * 100:.2f}% "
            f"(need <= {args.max_error * 100:.0f}%)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_stress(args) -> int:
    from .core.faults import FaultPlan
    from .core.threaded import RACE_GUARDS
    from .core.watchdog import StallPolicy
    from .experiments.stress import run_stress

    for g in args.guards:
        if g not in RACE_GUARDS:
            print(f"unknown guard {g!r}; choose from {RACE_GUARDS}", file=sys.stderr)
            return 2
    faults = None
    if args.drop_notify_rate > 0.0 or args.wait_delay > 0.0 or args.kill_worker is not None:
        faults = FaultPlan(
            wait_delay=args.wait_delay,
            drop_notify_rate=args.drop_notify_rate,
            kill_worker=args.kill_worker,
            seed=args.fault_seed,
        )
    stall = StallPolicy.for_deadline(args.stall_timeout, on_stall=args.on_stall)
    progress = (lambda msg: print(msg, file=sys.stderr)) if args.verbose else None
    report = run_stress(
        n_programs=args.programs,
        n_tasks=args.tasks,
        guards=args.guards,
        worker_counts=args.workers,
        base_seed=args.base_seed,
        faults=faults,
        stall=stall,
        progress=progress,
        probe_dir=args.probe_dir,
    )
    print(report.table())
    if not report.all_ok:
        print(f"{len(report.failures)} failing combinations", file=sys.stderr)
        return 1
    return 0


def _cmd_timeline(args) -> int:
    from .core.metrics import RunMetrics
    from .obs import RecordingProbe, load_trace_event
    from .obs.timeline import export_timeline

    machine = get_machine(args.machine)
    program = _program(args)
    probe = RecordingProbe()
    metrics = RunMetrics()

    if args.runtime == "threaded":
        if args.mode != "simulated":
            print("--runtime threaded requires --mode simulated", file=sys.stderr)
            return 2
        from .core.threaded import ThreadedRuntime

        models, _ = calibrate(
            _program(args, nt=args.cal_nt), _scheduler(args), machine,
            family=args.family, seed=args.seed,
        )
        runtime = ThreadedRuntime(
            args.workers,
            mode="simulate",
            guard=args.guard,
            window=args.window if args.window else 4096,
        )
        trace = runtime.run(
            program, models=models, seed=args.seed, metrics=metrics, probe=probe
        )
    elif args.mode == "simulated":
        from .core.simulator import simulate

        models, _ = calibrate(
            _program(args, nt=args.cal_nt), _scheduler(args), machine,
            family=args.family, seed=args.seed,
        )
        trace = simulate(
            program, _scheduler(args), models, seed=args.seed,
            warmup_penalty=machine.warmup_penalty, metrics=metrics, probe=probe,
        )
    else:
        trace = run_real(
            program, _scheduler(args), machine, seed=args.seed,
            metrics=metrics, probe=probe,
        )

    art = export_timeline(args.out_dir, trace, probe, metrics=metrics, prefix=args.prefix)
    # Self-check: the emitted document must round-trip through our own
    # strict loader before we point anyone at ui.perfetto.dev with it.
    load_trace_event(art.perfetto)
    print(art.report.report())
    print()
    for path in art.paths():
        print(f"wrote {path}")
    print(f"open {art.perfetto} at https://ui.perfetto.dev")
    return 0


def _cmd_serve(args) -> int:
    from .service import serve

    cache = None
    if not args.no_cache:
        cache = args.cache_dir if args.cache_dir else default_cache_dir()
    log = None if args.quiet else (lambda msg: print(msg, file=sys.stderr, flush=True))
    serve(
        host=args.host,
        port=args.port,
        workers=args.pool_workers,
        max_pending=args.max_pending,
        cache=cache,
        probe_dir=args.probe_dir,
        default_timeout_s=args.timeout,
        log=log,
        log_json=args.log_json,
        shard_id=args.shard_id,
    )
    return 0


def _grid_specs(args) -> list:
    """The (scheduler x nt x seed) grid shared by client and loadgen."""
    sched_spec = {
        name: experiment_scheduler_spec(name, n_cores=args.workers)
        for name in args.schedulers
    }
    specs = []
    for name in args.schedulers:
        for nt in args.nts:
            for seed in args.seeds:
                kwargs = {}
                if args.mode == "simulated":
                    kwargs.update(cal_nt=args.cal_nt, cal_seed=seed, family=args.family)
                specs.append(
                    RunSpec(
                        program=ProgramSpec(args.algorithm, nt, args.nb),
                        scheduler=sched_spec[name],
                        machine=args.machine,
                        seed=seed * 1000 + nt,
                        mode=args.mode,
                        **kwargs,
                    )
                )
    return specs


def _cmd_client(args) -> int:
    import json

    from .service import ServiceClient, ServiceError, sweep_via_service

    client = ServiceClient(args.host, args.port, max_retries=args.max_retries)
    if args.health or args.stats:
        try:
            doc = client.health() if args.health else client.stats()
        except (OSError, ServiceError) as exc:
            print(f"service unreachable: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(doc, sort_keys=True, indent=2))
        return 0 if doc.get("ok", False) or args.health else 1

    specs = _grid_specs(args)
    progress = (lambda msg: print(msg, file=sys.stderr)) if args.verbose else None
    try:
        docs = sweep_via_service(
            specs, client, jobs=args.jobs, timeline=args.timeline,
            timeout_s=args.timeout, progress=progress,
        )
    except OSError as exc:
        print(f"service unreachable at {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1

    from .experiments.reporting import format_table

    rows = []
    failures = 0
    for spec, doc in zip(specs, docs):
        if doc.get("ok"):
            rows.append(
                (spec.scheduler.name, spec.program.nt, spec.seed,
                 "hit" if doc["cached"] else "run",
                 "coalesced" if doc.get("coalesced") else "-",
                 f"{doc['wall_s']:.3f}")
            )
        else:
            failures += 1
            rows.append(
                (spec.scheduler.name, spec.program.nt, spec.seed,
                 doc.get("error", "failed"), "-", "-")
            )
    print(
        format_table(
            ("scheduler", "nt", "seed", "cache", "flight", "wall s"),
            rows,
            title=f"served: {args.algorithm} nb={args.nb} mode={args.mode} "
            f"via {args.host}:{args.port}",
        )
    )
    if args.metrics_out:
        from .service import write_client_sweep

        # Strict serialisation: a spec that would not survive replay
        # validation fails here instead of producing a poisoned log.
        path = write_client_sweep(args.metrics_out, specs, docs)
        print(f"wrote {path}")
    if failures:
        print(f"{failures}/{len(specs)} requests failed", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet(args) -> int:
    from .service import run_fleet

    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache = args.cache_dir if args.cache_dir else default_cache_dir()
    log = None if args.quiet else (lambda msg: print(msg, file=sys.stderr, flush=True))
    return run_fleet(
        shards=args.shards,
        host=args.host,
        port=args.port,
        cache_dir=cache,
        shard_workers=args.pool_workers,
        max_pending=args.max_pending,
        max_inflight=args.max_inflight,
        retries=args.retries,
        revive_after_s=args.revive_after,
        default_timeout_s=args.timeout,
        vnodes=args.vnodes,
        log_dir=args.log_dir,
        state_file=args.state_file,
        log=log,
        log_json=args.log_json,
    )


def _cmd_loadgen(args) -> int:
    import json
    from pathlib import Path

    from .service import RunRequest, load_request_log
    from .service.loadgen import run_loadgen, summarize

    loop = args.loop or ("open" if args.rate is not None else "closed")
    if loop == "open" and args.rate is None:
        print("open-loop load needs --rate", file=sys.stderr)
        return 2
    if args.requests:
        try:
            docs = load_request_log(args.requests)
        except (OSError, ValueError) as exc:
            print(f"unusable request log: {exc}", file=sys.stderr)
            return 2
    else:
        docs = [
            RunRequest(spec=spec, timeout_s=args.timeout).to_document()
            for spec in _grid_specs(args)
        ]
    progress = (lambda msg: print(msg, file=sys.stderr)) if args.verbose else None
    report = run_loadgen(
        args.host,
        args.port,
        docs,
        loop=loop,
        duration_s=args.duration,
        rate=args.rate,
        concurrency=args.concurrency,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        label=args.label,
        progress=progress,
        trace_out=args.trace_out,
    )
    print(summarize(report))
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, sort_keys=True, indent=2) + "\n")
        print(f"wrote {path}")
    if report["failed"]:
        print(
            f"{report['failed']}/{report['requests']} requests failed", file=sys.stderr
        )
        return 1
    return 0


def _cmd_bench(args) -> int:
    from .bench import compare_reports, default_suite, run_suite
    from .bench.harness import BenchReport

    if args.repeats is not None and args.repeats < 1:
        print("--repeats must be at least 1", file=sys.stderr)
        return 2
    specs = default_suite(
        quick=args.quick, workers=args.workers, engine_mode=_engine_mode(args),
        engine_backend=_engine_backend(args),
    )
    if args.repeats is not None:
        for spec in specs:
            spec.repeats = args.repeats
    progress = (lambda msg: print(msg, file=sys.stderr)) if args.verbose else None
    try:
        report = run_suite(specs, only=args.only, label=args.label, progress=progress)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.table())
    if args.out:
        print(f"wrote {report.write_json(args.out)}")
    if args.compare:
        baseline = BenchReport.read_json(args.compare)
        gate = compare_reports(
            baseline, report, max_regression=args.max_regression, only=args.only
        )
        print()
        print(gate.table())
        if not gate.ok:
            return 1
    return 0


def _cmd_bench_trend(args) -> int:
    from .bench.harness import BenchReport
    from .bench.trend import append_history, load_history, trend_table

    try:
        report = BenchReport.read_json(args.report)
    except (OSError, ValueError) as exc:
        print(f"cannot read report {args.report}: {exc}", file=sys.stderr)
        return 2
    history = load_history(args.history)
    table = trend_table(history, report)
    meta = {}
    for item in args.meta or []:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"--meta takes key=value pairs, got {item!r}", file=sys.stderr)
            return 2
        meta[key] = value
    append_history(report, args.history, meta=meta)
    if args.summary:
        path = Path(args.summary)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            fh.write(table + "\n")
        print(f"appended trend table to {path}")
    else:
        print(table)
    print(f"history: {len(history) + 1} run(s) in {args.history}")
    return 0


def _package_version() -> str:
    try:
        return _importlib_metadata.version("repro")
    except _importlib_metadata.PackageNotFoundError:  # running from a checkout
        return "unknown"


def _add_service_grid_args(p: argparse.ArgumentParser) -> None:
    """The (scheduler x nt x seed) grid flags shared by client and loadgen."""
    p.add_argument("--algorithm", choices=sorted(_GENERATORS), default="cholesky")
    p.add_argument("--nts", type=int, nargs="+", default=[4],
                   help="tiles-per-side grid points")
    p.add_argument("--nb", type=int, default=200, help="tile order")
    p.add_argument("--schedulers", nargs="+", choices=("quark", "starpu", "ompss"),
                   default=["quark"])
    p.add_argument("--seeds", type=int, nargs="+", default=[0])
    p.add_argument("--mode", choices=("real", "simulated"), default="real")
    p.add_argument("--machine", default="magny_cours_48")
    p.add_argument("--workers", type=int, default=48,
                   help="cores per scheduler configuration")
    p.add_argument("--cal-nt", type=int, default=CAL_NT, dest="cal_nt")
    p.add_argument("--family", default="lognormal")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel Simulation of Superscalar Scheduling "
        "(ICPP 2014 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("simulate", help="calibrate, simulate, and validate")
    _add_problem_args(p)
    p.add_argument("--cal-nt", type=int, default=16, dest="cal_nt")
    p.add_argument("--family", default="lognormal")
    p.add_argument("--svg", default=None, help="write real/sim comparison SVG")
    p.add_argument("--gantt", action="store_true", help="print ASCII Gantt charts")
    p.add_argument("--gantt-width", type=int, default=100, dest="gantt_width")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   help="write both runs' RunMetrics documents (JSON) here")
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("run", help="one real run on the machine model")
    _add_problem_args(p)
    _add_engine_mode_arg(p)
    _add_engine_backend_arg(p)
    p.add_argument("--svg", default=None)
    p.add_argument("--gantt", action="store_true")
    p.add_argument("--gantt-width", type=int, default=100, dest="gantt_width")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   help="write the run's RunMetrics document (JSON) here")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("dag", help="build and analyse a dependence DAG")
    _add_problem_args(p, with_sched=False)
    p.add_argument("--dot", default=None, help="write Graphviz DOT file")
    p.set_defaults(fn=_cmd_dag)

    p = sub.add_parser("stream", help="print the serial task stream (Fig. 2 view)")
    _add_problem_args(p, with_sched=False)
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(fn=_cmd_stream)

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("id", help="fig1..fig10, fig6_7, speedup")
    p.add_argument("--full", action="store_true", help="full-size sweeps")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser(
        "sweep", help="run a (scheduler x size x seed) grid through the parallel runner"
    )
    p.add_argument("--algorithm", choices=sorted(_GENERATORS), default="cholesky")
    p.add_argument("--nts", type=int, nargs="+", default=[4],
                   help="tiles-per-side grid points")
    p.add_argument("--nb", type=int, default=200, help="tile order")
    p.add_argument("--schedulers", nargs="+", choices=("quark", "starpu", "ompss"),
                   default=["quark"])
    p.add_argument("--seeds", type=int, nargs="+", default=[0])
    p.add_argument("--mode", choices=("validate", "real", "simulated"),
                   default="validate",
                   help="validate pairs a real and a simulated run per point")
    p.add_argument("--machine", default="magny_cours_48")
    p.add_argument("--workers", type=int, default=48,
                   help="cores per scheduler (master included where applicable)")
    p.add_argument("--cal-nt", type=int, default=CAL_NT, dest="cal_nt")
    p.add_argument("--family", default="lognormal")
    p.add_argument("--calibration", default=None,
                   help="repro.calib/v1 document for simulated runs (replaces "
                   "the cal-nt/family calibration recipe; see 'repro calibrate')")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep fan-out")
    p.add_argument("--cache-dir", default=None, dest="cache_dir",
                   help="result cache directory (default: $REPRO_CACHE or .repro_cache)")
    p.add_argument("--no-cache", action="store_true", dest="no_cache",
                   help="skip the on-disk cache (ephemeral per-sweep cache only)")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   help="write the sweep metrics document (JSON) here")
    p.add_argument("--probe-dir", default=None, dest="probe_dir",
                   help="attach a recording probe to every run and write "
                   "timeline artifacts (Perfetto/series/attribution) here")
    _add_engine_mode_arg(p)
    _add_engine_backend_arg(p)
    p.add_argument("--verbose", action="store_true",
                   help="print per-run progress to stderr")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "calibrate",
        help="fit per-kernel duration models from probe artifacts "
        "(repro.calib/v1 document)",
    )
    p.add_argument("--probe-dir", required=True, dest="probe_dir",
                   help="directory of timeline artifacts (*.samples.json / "
                   "*.attribution.json), e.g. a sweep's --probe-dir")
    p.add_argument("--out", default=None,
                   help="write the calibration document (JSON) here")
    p.add_argument("--families", nargs="+",
                   default=list(_CALIB_DEFAULT_FAMILIES),
                   help="candidate model families to fit per kernel")
    p.add_argument("--criterion", choices=("aic", "bic"), default="aic",
                   help="information criterion for family selection")
    p.add_argument("--ks-alpha", type=float, default=0.05, dest="ks_alpha",
                   help="KS-gate significance level")
    p.add_argument("--min-samples", type=int, default=8, dest="min_samples",
                   help="below this many samples a kernel gets a constant model")
    p.set_defaults(fn=_cmd_calibrate)

    p = sub.add_parser(
        "recommend",
        help="rank scheduler x policy candidates by simulated makespan",
    )
    _add_problem_args(p, with_sched=False)
    p.add_argument("--machine", default="magny_cours_48")
    p.add_argument("--workers", type=int, default=None,
                   help="cores to schedule on (default: the whole machine)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--calibration", default=None,
                   help="repro.calib/v1 document; default refits from a real "
                   "quark run of the --cal-nt problem")
    p.add_argument("--cal-nt", type=int, default=CAL_NT, dest="cal_nt",
                   help="calibration problem size when no --calibration given")
    p.add_argument("--sims", type=int, default=3,
                   help="simulation seeds averaged per candidate")
    p.add_argument("--validate", action="store_true",
                   help="also run every candidate for real and report whether "
                   "the recommendation matches the measured argmin (exit 1 on "
                   "a miss)")
    p.add_argument("--out", default=None,
                   help="write the repro.portfolio/v1 recommendation here")
    p.set_defaults(fn=_cmd_recommend)

    p = sub.add_parser(
        "portfolio",
        help="validate portfolio recommendations against exhaustive real sweeps",
    )
    p.add_argument("--algorithms", nargs="+", choices=sorted(_GENERATORS),
                   default=None, help="default: cholesky qr")
    p.add_argument("--nts", type=int, nargs="+", default=None,
                   help="tiles-per-side grid points (default: 4 8)")
    p.add_argument("--machine", default=None,
                   help="default: uniform_4 (quick), magny_cours_48 with --full")
    p.add_argument("--full", action="store_true",
                   help="paper-grade grid: magny_cours_48, first three sweep sizes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--min-accuracy", type=float, default=0.8, dest="min_accuracy",
                   help="top-1 accuracy gate (exit 1 below this)")
    p.add_argument("--max-error", type=float, default=0.05, dest="max_error",
                   help="mean prediction-error gate (exit 1 above this)")
    p.add_argument("--out", default=None,
                   help="write the repro.portfolio_validation/v1 report here")
    p.set_defaults(fn=_cmd_portfolio)

    p = sub.add_parser(
        "stress",
        help="randomized stress sweep of the threaded runtime (all race guards)",
    )
    p.add_argument("--programs", type=int, default=25,
                   help="number of random task streams")
    p.add_argument("--tasks", type=int, default=14, help="tasks per stream")
    p.add_argument("--guards", nargs="+",
                   default=["quiesce", "sleep", "yield", "none"],
                   help="race guards to sweep")
    p.add_argument("--workers", type=int, nargs="+", default=[2, 4],
                   help="worker-count grid points")
    p.add_argument("--base-seed", type=int, default=0, dest="base_seed")
    p.add_argument("--stall-timeout", type=float, default=30.0, dest="stall_timeout",
                   help="watchdog budget per run (seconds of real time)")
    p.add_argument("--on-stall", choices=("raise", "recover"), default="raise",
                   dest="on_stall")
    p.add_argument("--drop-notify-rate", type=float, default=0.0,
                   dest="drop_notify_rate",
                   help="inject: probability of losing each TEQ wake-up")
    p.add_argument("--wait-delay", type=float, default=0.0, dest="wait_delay",
                   help="inject: sleep between TEQ insert and front wait (s)")
    p.add_argument("--kill-worker", type=int, default=None, dest="kill_worker",
                   help="inject: this worker dies on its first claim")
    p.add_argument("--fault-seed", type=int, default=0, dest="fault_seed")
    p.add_argument("--probe-dir", default=None, dest="probe_dir",
                   help="write per-combination timeline artifacts here")
    p.add_argument("--verbose", action="store_true",
                   help="print per-combination progress to stderr")
    p.set_defaults(fn=_cmd_stress)

    p = sub.add_parser(
        "bench",
        help="micro/macro benchmarks of the simulation hot paths",
    )
    p.add_argument("--quick", action="store_true",
                   help="reduced sizes/repeats (the CI bench-gate profile)")
    p.add_argument("--out", default=None,
                   help="write the BENCH_*.json report here")
    p.add_argument("--only", nargs="+", default=None,
                   help="glob patterns selecting benchmarks, e.g. 'macro/*'")
    p.add_argument("--repeats", type=int, default=None,
                   help="override per-benchmark repetition count")
    p.add_argument("--workers", type=int, default=48,
                   help="simulated workers for macro benchmarks")
    p.add_argument("--label", default="",
                   help="free-form label recorded in the report")
    p.add_argument("--compare", default=None,
                   help="baseline BENCH_*.json to gate against")
    p.add_argument("--max-regression", type=float, default=0.30,
                   dest="max_regression",
                   help="gate threshold: fail when throughput falls below "
                   "(1 - this) x baseline")
    p.add_argument("--verbose", action="store_true",
                   help="print per-benchmark progress to stderr")
    _add_engine_mode_arg(p)
    _add_engine_backend_arg(p)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "bench-trend",
        help="append a BENCH_*.json report to the run history and print "
        "a markdown per-suite delta table vs the previous run",
    )
    p.add_argument("--report", required=True,
                   help="fresh BENCH_*.json report to record")
    p.add_argument("--history", required=True,
                   help="JSONL history file (appended; created if absent)")
    p.add_argument("--summary", default=None,
                   help="append the markdown table here (e.g. "
                   "$GITHUB_STEP_SUMMARY) instead of stdout")
    p.add_argument("--meta", nargs="*", default=None, metavar="KEY=VALUE",
                   help="provenance recorded with the history entry "
                   "(e.g. commit=$GITHUB_SHA branch=$GITHUB_REF_NAME)")
    p.set_defaults(fn=_cmd_bench_trend)

    p = sub.add_parser(
        "serve",
        help="persistent simulation service over local HTTP/JSON "
        "(single-flight, shared cache, backpressure, SIGTERM drain)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8425,
                   help="listening port (0 binds an ephemeral port)")
    p.add_argument("--workers", type=int, default=2, dest="pool_workers",
                   help="simulation threads executing requests")
    p.add_argument("--max-pending", type=int, default=16, dest="max_pending",
                   help="distinct in-flight requests admitted before "
                   "backpressure (429 + Retry-After)")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-request deadline in seconds "
                   "(threaded specs inherit it as their stall budget)")
    p.add_argument("--cache-dir", default=None, dest="cache_dir",
                   help="shared result cache (default: $REPRO_CACHE or .repro_cache)")
    p.add_argument("--no-cache", action="store_true", dest="no_cache",
                   help="serve without a shared on-disk cache")
    p.add_argument("--probe-dir", default=None, dest="probe_dir",
                   help="enable timeline=true requests: artifacts land here")
    p.add_argument("--log-json", default=None, dest="log_json",
                   help="structured JSON access log (one line per request, "
                   "with trace id / route / status / latency)")
    p.add_argument("--shard-id", default=None, dest="shard_id",
                   help="telemetry component name suffix when this daemon "
                   "is a fleet shard (set by repro fleet)")
    p.add_argument("--quiet", action="store_true", help="suppress the serve log")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "client",
        help="query a running serve daemon (health/stats or a run grid)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8425)
    p.add_argument("--health", action="store_true",
                   help="print the health document and exit")
    p.add_argument("--stats", action="store_true",
                   help="print the service counters and exit")
    _add_service_grid_args(p)
    p.add_argument("--jobs", type=int, default=4,
                   help="concurrent client threads issuing requests")
    p.add_argument("--timeline", action="store_true",
                   help="request timeline artifacts (server needs --probe-dir)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds")
    p.add_argument("--max-retries", type=int, default=5, dest="max_retries",
                   help="retries for retriable rejections (backpressure/drain)")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   help="write every response document (JSON) here")
    p.add_argument("--verbose", action="store_true",
                   help="print per-request progress to stderr")
    p.set_defaults(fn=_cmd_client)

    p = sub.add_parser(
        "fleet",
        help="sharded service fleet: N serve daemons behind a "
        "consistent-hash router",
    )
    p.add_argument("--shards", type=int, default=2,
                   help="shard daemons to spawn (one process each)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8430,
                   help="router listening port (0 binds an ephemeral port)")
    p.add_argument("--workers", type=int, default=2, dest="pool_workers",
                   help="simulation threads per shard")
    p.add_argument("--max-pending", type=int, default=16, dest="max_pending",
                   help="per-shard admission limit (shard-side 429)")
    p.add_argument("--max-inflight", type=int, default=32, dest="max_inflight",
                   help="router-side in-flight cap per shard (fleet-level 429)")
    p.add_argument("--retries", type=int, default=2,
                   help="forward retries to the rehash successor when a "
                   "shard is down")
    p.add_argument("--revive-after", type=float, default=5.0, dest="revive_after",
                   help="seconds a marked-down shard stays out of the ring "
                   "before the next forward probes it")
    p.add_argument("--vnodes", type=int, default=64,
                   help="virtual nodes per shard on the hash ring")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-request deadline passed to every shard")
    p.add_argument("--cache-dir", default=None, dest="cache_dir",
                   help="cache root; each shard gets its own partition "
                   "under it (default: $REPRO_CACHE or .repro_cache)")
    p.add_argument("--no-cache", action="store_true", dest="no_cache",
                   help="run every shard without an on-disk cache")
    p.add_argument("--log-dir", default=None, dest="log_dir",
                   help="write per-shard stderr logs here")
    p.add_argument("--state-file", default=None, dest="state_file",
                   help="write the repro.fleet/v1 topology document "
                   "(router + shard pids/ports) here")
    p.add_argument("--log-json", default=None, dest="log_json",
                   help="router JSON access log; each shard logs beside it "
                   "as <stem>-shard-<id>.jsonl")
    p.add_argument("--quiet", action="store_true", help="suppress the fleet log")
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser(
        "loadgen",
        help="open/closed-loop load generator against a serve daemon or fleet",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8430)
    p.add_argument("--loop", choices=("open", "closed"), default=None,
                   help="arrival model (default: open when --rate is given, "
                   "closed otherwise)")
    p.add_argument("--rate", type=float, default=None,
                   help="open-loop arrival rate in requests/second")
    p.add_argument("--concurrency", type=int, default=None,
                   help="closed-loop worker threads (default 4)")
    p.add_argument("--duration", type=float, default=10.0,
                   help="seconds of load to generate")
    p.add_argument("--requests", default=None,
                   help="replay a recorded request log (JSON) instead of "
                   "the spec grid")
    _add_service_grid_args(p)
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds")
    p.add_argument("--max-retries", type=int, default=5, dest="max_retries",
                   help="retries for retriable rejections before a request "
                   "counts as failed")
    p.add_argument("--label", default="",
                   help="free-form label recorded in the report")
    p.add_argument("--out", default=None,
                   help="write the repro.loadgen/v2 report (JSON) here")
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   help="issue one traced request and write its spans as a "
                   "Perfetto trace-event file here")
    p.add_argument("--verbose", action="store_true",
                   help="print progress to stderr")
    p.set_defaults(fn=_cmd_loadgen)

    p = sub.add_parser(
        "timeline",
        help="one observed run: Perfetto trace, counter series, wait attribution",
    )
    _add_problem_args(p)
    p.add_argument("--mode", choices=("real", "simulated"), default="real",
                   help="duration source: machine model (real) or calibrated "
                   "timing models (simulated)")
    p.add_argument("--runtime", choices=("engine", "threaded"), default="engine",
                   help="discrete-event engine or the real-thread runtime "
                   "(threaded requires --mode simulated)")
    p.add_argument("--guard", choices=("quiesce", "sleep", "yield", "none"),
                   default="quiesce", help="race guard for --runtime threaded")
    p.add_argument("--cal-nt", type=int, default=8, dest="cal_nt",
                   help="calibration problem size for --mode simulated")
    p.add_argument("--family", default="lognormal")
    p.add_argument("--out-dir", default="timeline-artifacts", dest="out_dir",
                   help="directory receiving the artifact files")
    p.add_argument("--prefix", default="timeline",
                   help="artifact filename prefix")
    p.set_defaults(fn=_cmd_timeline)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "fn", None) is None:
        # No subcommand: show usage and signal misuse (argparse would accept
        # the bare invocation since subcommands are optional for --version).
        parser.print_help(sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
