"""Plain-text tables and artifact management for the experiment drivers.

Every figure driver returns structured rows *and* renders them with
:func:`format_table` so the bench output reads like the paper's plots in
tabular form.  Artifacts (SVG traces, DOT files, density tables) go under
``artifacts/`` at the repository root unless overridden.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List, Sequence

__all__ = ["format_table", "artifact_dir", "write_artifact"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospaced table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def artifact_dir(subdir: str = "") -> Path:
    """The artifact directory (``$REPRO_ARTIFACTS`` or ``./artifacts``)."""
    base = Path(os.environ.get("REPRO_ARTIFACTS", "artifacts"))
    path = base / subdir if subdir else base
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_artifact(name: str, content: str, subdir: str = "") -> Path:
    """Write a text artifact and return its path."""
    path = artifact_dir(subdir) / name
    path.write_text(content)
    return path
