"""Experiment drivers: one per figure/claim of the paper (see DESIGN.md)."""

from .ablations import (
    ablation_distribution,
    ablation_ompss_successor,
    ablation_quark_window,
    ablation_starpu_policy,
    ablation_warmup,
)
from .config import (
    CAL_NT,
    MACHINE_NAME,
    SMOKE_SWEEP_NTS,
    SWEEP_NTS,
    TILE_SIZE,
    TRACE_NT,
    TRACE_TILE_SIZE,
    experiment_scheduler_spec,
    make_experiment_scheduler,
)
from .dagfigs import FIG2_EXPECTED, fig1_dag, fig2_stream
from .index import EXPERIMENTS, Experiment
from .distributions import distribution_figure
from .performance import (
    PerfPoint,
    accuracy_summary,
    figure_table,
    performance_figure,
    performance_sweep,
)
from .portfolio import PortfolioPoint, PortfolioReport, portfolio_experiment
from .race import race_experiment, run_scenario
from .reporting import artifact_dir, format_table, write_artifact
from .speedup import speedup_experiment
from .stress import StressOutcome, StressReport, random_program, run_stress, stress_models
from .traces import trace_experiment

__all__ = [
    "ablation_distribution",
    "ablation_ompss_successor",
    "ablation_quark_window",
    "ablation_starpu_policy",
    "ablation_warmup",
    "CAL_NT",
    "MACHINE_NAME",
    "SMOKE_SWEEP_NTS",
    "SWEEP_NTS",
    "TILE_SIZE",
    "TRACE_NT",
    "TRACE_TILE_SIZE",
    "experiment_scheduler_spec",
    "make_experiment_scheduler",
    "EXPERIMENTS",
    "Experiment",
    "FIG2_EXPECTED",
    "fig1_dag",
    "fig2_stream",
    "distribution_figure",
    "PerfPoint",
    "accuracy_summary",
    "figure_table",
    "performance_figure",
    "performance_sweep",
    "PortfolioPoint",
    "PortfolioReport",
    "portfolio_experiment",
    "race_experiment",
    "run_scenario",
    "artifact_dir",
    "format_table",
    "write_artifact",
    "speedup_experiment",
    "StressOutcome",
    "StressReport",
    "random_program",
    "run_stress",
    "stress_models",
    "trace_experiment",
]
