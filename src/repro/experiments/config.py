"""Shared experiment configuration.

Parameters follow the paper's evaluation section: tile size 200 for the
performance sweeps (Figs. 8-10), matrix 3960 / tile 180 (22x22 tiles) for the
trace comparison (Figs. 6-7), 48 cores of the Magny-Cours machine model.

Calibration uses a mid-sized problem (``CAL_NT`` tiles): large enough that
the machine is saturated — so the harvested kernel times include the cache
and contention regime of the big runs — but much smaller than the largest
sweep point, preserving the paper's premise that calibration is cheap
("a relatively small problem or even a portion of the problem", §V-B1).
"""

from __future__ import annotations

from typing import Tuple

from ..runner.spec import SchedulerSpec
from ..schedulers import OmpSsScheduler, QuarkScheduler, SchedulerBase, StarPUScheduler

__all__ = [
    "MACHINE_NAME",
    "TILE_SIZE",
    "TRACE_TILE_SIZE",
    "TRACE_NT",
    "CAL_NT",
    "SWEEP_NTS",
    "SMOKE_SWEEP_NTS",
    "DISTRIBUTION_FAMILY",
    "make_experiment_scheduler",
    "experiment_scheduler_spec",
]

#: Machine preset standing in for the paper's AMD Opteron 6180 SE testbed.
MACHINE_NAME = "magny_cours_48"

#: Tile size of the Figs. 8-10 performance sweeps.
TILE_SIZE = 200

#: Figs. 6-7 trace experiment: matrix 3960, tile 180 -> 22x22 tiles.
TRACE_TILE_SIZE = 180
TRACE_NT = 22

#: Calibration problem size (tiles per side).
CAL_NT = 16

#: Matrix sizes (in tiles per side) of the performance sweeps.
#: With TILE_SIZE=200 this spans n = 800 .. 6800.
SWEEP_NTS: Tuple[int, ...] = (4, 7, 10, 14, 18, 22, 26, 30, 34)

#: Reduced sweep for quick runs / CI.
SMOKE_SWEEP_NTS: Tuple[int, ...] = (4, 10, 18)

#: Default kernel-model family (the paper's slight favourite).
DISTRIBUTION_FAMILY = "lognormal"

#: Total cores on the experiment machine.
_N_CORES = 48


def make_experiment_scheduler(name: str, n_cores: int = _N_CORES) -> SchedulerBase:
    """The paper's three schedulers, configured as their real counterparts run.

    QUARK's master doubles as worker 0, so it gets every core; StarPU and
    OmpSs keep a dedicated submission thread, leaving ``n_cores - 1``
    workers.
    """
    if name == "quark":
        return QuarkScheduler(n_cores)
    if name == "starpu":
        return StarPUScheduler(n_cores - 1, policy="prio")
    if name == "ompss":
        return OmpSsScheduler(n_cores - 1)
    raise KeyError(f"unknown scheduler {name!r}; choose quark/starpu/ompss")


def experiment_scheduler_spec(name: str, n_cores: int = _N_CORES) -> SchedulerSpec:
    """:func:`make_experiment_scheduler` as a declarative runner spec."""
    if name == "quark":
        return SchedulerSpec("quark", n_cores)
    if name == "starpu":
        return SchedulerSpec("starpu", n_cores - 1, policy="prio")
    if name == "ompss":
        return SchedulerSpec("ompss", n_cores - 1)
    raise KeyError(f"unknown scheduler {name!r}; choose quark/starpu/ompss")
