"""Portfolio validation: recommendations vs. exhaustive sweeps.

For every grid point (algorithm × problem size) the experiment:

1. runs every scheduler×policy candidate for real (machine-model backend) —
   the exhaustive sweep whose argmin is the ground-truth winner;
2. refits a calibration document from one of those runs' own trace through
   the :mod:`repro.calib` pipeline (the probe-artifact path, minus the
   filesystem);
3. ranks the candidates by simulated makespan under the calibrated models
   (:func:`repro.portfolio.recommend`);
4. scores the recommendation: top-1 hit, **regret** (how much slower the
   recommended candidate's *measured* makespan is than the true optimum),
   and the paper's prediction-error metric
   ``|simulated - measured| / measured`` per candidate (<5% target, §VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..calib import DEFAULT_FAMILIES, fit_from_samples
from ..core.simulator import run_real
from ..machine import collect_samples, get_machine
from ..portfolio import Candidate, default_candidates, candidate_scheduler_spec, recommend
from .config import TILE_SIZE
from .reporting import format_table

__all__ = ["PortfolioPoint", "PortfolioReport", "portfolio_experiment"]


@dataclass(frozen=True)
class PortfolioPoint:
    """One grid point's measured truth vs. predicted ranking."""

    algorithm: str
    nt: int
    measured_s: Dict[str, float]  # candidate label -> real makespan
    predicted_s: Dict[str, float]  # candidate label -> simulated makespan
    true_best: str
    predicted_best: str

    @property
    def top1_hit(self) -> bool:
        return self.predicted_best == self.true_best

    @property
    def regret(self) -> float:
        """Relative measured-makespan cost of following the recommendation."""
        optimum = self.measured_s[self.true_best]
        chosen = self.measured_s[self.predicted_best]
        return (chosen - optimum) / optimum if optimum > 0 else 0.0

    @property
    def prediction_errors(self) -> Dict[str, float]:
        """Per-candidate ``|simulated - measured| / measured``."""
        return {
            label: abs(self.predicted_s[label] - measured) / measured
            for label, measured in self.measured_s.items()
            if measured > 0
        }

    @property
    def mean_prediction_error(self) -> float:
        errors = self.prediction_errors
        return sum(errors.values()) / len(errors) if errors else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "nt": self.nt,
            "measured_s": dict(self.measured_s),
            "predicted_s": dict(self.predicted_s),
            "true_best": self.true_best,
            "predicted_best": self.predicted_best,
            "top1_hit": self.top1_hit,
            "regret": self.regret,
            "mean_prediction_error": self.mean_prediction_error,
        }


@dataclass(frozen=True)
class PortfolioReport:
    """Aggregate scores over the validation grid."""

    machine: str
    n_cores: int
    points: Tuple[PortfolioPoint, ...]
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def top1_accuracy(self) -> float:
        return sum(1 for p in self.points if p.top1_hit) / len(self.points)

    @property
    def mean_regret(self) -> float:
        return sum(p.regret for p in self.points) / len(self.points)

    @property
    def mean_prediction_error(self) -> float:
        return sum(p.mean_prediction_error for p in self.points) / len(self.points)

    def report(self) -> str:
        rows = [
            [
                f"{p.algorithm} nt={p.nt}",
                p.true_best,
                p.predicted_best,
                "hit" if p.top1_hit else "MISS",
                f"{p.regret * 100:.2f}%",
                f"{p.mean_prediction_error * 100:.2f}%",
            ]
            for p in self.points
        ]
        table = format_table(
            ["point", "true best", "predicted", "top-1", "regret", "pred err"], rows
        )
        return (
            f"portfolio validation on {self.machine} ({self.n_cores} cores)\n"
            f"{table}\n"
            f"top-1 accuracy {self.top1_accuracy * 100:.0f}%  "
            f"mean regret {self.mean_regret * 100:.2f}%  "
            f"mean prediction error {self.mean_prediction_error * 100:.2f}%"
        )

    def to_document(self) -> Dict[str, object]:
        return {
            "schema": "repro.portfolio_validation/v1",
            "machine": self.machine,
            "n_cores": self.n_cores,
            "top1_accuracy": self.top1_accuracy,
            "mean_regret": self.mean_regret,
            "mean_prediction_error": self.mean_prediction_error,
            "points": [p.to_dict() for p in self.points],
            "meta": dict(self.meta),
        }


def portfolio_experiment(
    *,
    algorithms: Sequence[str] = ("cholesky", "qr"),
    nts: Sequence[int] = (4, 8),
    nb: int = TILE_SIZE,
    machine: str = "uniform_4",
    n_cores: Optional[int] = None,
    seed: int = 0,
    candidates: Sequence[Candidate] = (),
    families: Sequence[str] = DEFAULT_FAMILIES,
    calibration_candidate: str = "quark",
    n_real: int = 1,
) -> PortfolioReport:
    """Validate portfolio recommendations against exhaustive real sweeps.

    The calibration trace for each point is ``calibration_candidate``'s own
    real run — already paid for by the exhaustive sweep, and the closest
    analogue of refitting from a run's probe artifacts.  ``n_real`` averages
    each candidate's *measured* makespan over that many real-run seeds: on
    noisy machines the single-seed argmin is itself a lottery between
    near-tied candidates, so the ground truth needs the same stabilisation
    the oracle's ``n_sims`` gives the prediction.  The defaults are
    smoke-sized; the full paper-grade grid is
    ``machine="magny_cours_48", nts=SWEEP_NTS[:4]`` (slow).
    """
    from ..runner.spec import ProgramSpec  # deferred: avoid import cycles

    machine_obj = get_machine(machine)
    if n_cores is None:
        n_cores = machine_obj.n_cores
    if n_real < 1:
        raise ValueError("n_real must be at least 1")
    cands = tuple(candidates) or default_candidates()
    labels = [c.label for c in cands]
    if calibration_candidate not in [c.scheduler for c in cands]:
        raise ValueError(
            f"calibration candidate {calibration_candidate!r} is not in the portfolio"
        )

    points: List[PortfolioPoint] = []
    for algorithm in algorithms:
        for nt in nts:
            program = ProgramSpec(algorithm=algorithm, nt=nt, nb=nb).build()
            measured: Dict[str, float] = {}
            cal_trace = None
            for candidate in cands:
                total = 0.0
                for s in range(n_real):
                    scheduler = candidate_scheduler_spec(candidate, n_cores).build()
                    trace = run_real(program, scheduler, machine_obj, seed=seed + s)
                    total += float(trace.makespan)
                    if cal_trace is None and candidate.scheduler == calibration_candidate:
                        cal_trace = trace
                measured[candidate.label] = total / n_real
            samples = collect_samples(cal_trace, drop_first_per_worker=True)
            document = fit_from_samples(
                samples,
                families=families,
                provenance={
                    "source": "portfolio_experiment",
                    "algorithm": algorithm,
                    "nt": nt,
                    "machine": machine,
                    "seed": seed,
                },
            )
            rec = recommend(
                program,
                machine_obj,
                document.to_model_set(),
                candidates=cands,
                n_cores=n_cores,
                seed=seed + 1,  # sim seed != real seed: prediction, not replay
            )
            predicted = {p.candidate.label: p.makespan_s for p in rec.predictions}
            true_best = min(labels, key=lambda lb: (measured[lb], lb))
            points.append(
                PortfolioPoint(
                    algorithm=algorithm,
                    nt=nt,
                    measured_s=measured,
                    predicted_s=predicted,
                    true_best=true_best,
                    predicted_best=rec.best.candidate.label,
                )
            )
    return PortfolioReport(
        machine=machine,
        n_cores=n_cores,
        points=tuple(points),
        meta={
            "algorithms": list(algorithms),
            "nts": list(nts),
            "nb": nb,
            "seed": seed,
            "candidates": labels,
            "families": list(families),
            "calibration_candidate": calibration_candidate,
            "n_real": n_real,
        },
    )
