"""Trace-comparison experiment: the paper's Figs. 6 and 7.

A QR factorization of a 3960x3960 matrix with 180x180 tiles (22x22 tiles)
under QUARK on the 48-core machine: Fig. 6 shows the real trace, Fig. 7 the
simulated one, on identical time scales.  The claims: nearly identical
execution times and preserved trace features, with two visible differences —
the long *first kernel per core* (MKL initialisation) in the real trace, and
fewer tasks on core 0 (the insertion master).

:func:`trace_experiment` reproduces the pair, writes the stacked SVG, and
returns the comparison metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..core.simulator import ValidationResult
from ..runner import ProgramSpec, RunSpec, sweep
from ..trace.compare import compare_traces
from ..trace.svg import write_comparison_svg, write_svg
from .config import CAL_NT, MACHINE_NAME, TRACE_NT, TRACE_TILE_SIZE, experiment_scheduler_spec
from .reporting import artifact_dir

__all__ = ["TraceExperiment", "trace_experiment"]


@dataclass
class TraceExperiment:
    """Figs. 6-7 outcome: validation result plus artifact locations."""

    result: ValidationResult
    svg_path: Optional[Path]

    def report(self) -> str:
        real, sim = self.result.real, self.result.simulated
        lines = [
            self.result.report(),
            f"tasks on core 0: real={real.tasks_per_worker()[0]} "
            f"sim={sim.tasks_per_worker()[0]} "
            f"(mean over cores: real={len(real) / real.n_workers:.1f})",
        ]
        if self.svg_path is not None:
            lines.append(f"comparison SVG: {self.svg_path}")
        return "\n".join(lines)


def trace_experiment(
    *,
    nt: int = TRACE_NT,
    tile: int = TRACE_TILE_SIZE,
    scheduler_name: str = "quark",
    machine_name: str = MACHINE_NAME,
    cal_nt: int = CAL_NT,
    seed: int = 0,
    write_artifacts: bool = True,
    jobs: int = 1,
    cache=None,
) -> TraceExperiment:
    """Reproduce the Figs. 6-7 real/simulated trace pair.

    Both runs go through :mod:`repro.runner`, so a cache makes repeated
    reproductions (and the calibration run) instant and ``jobs=2`` computes
    the real and simulated traces concurrently.
    """
    program_spec = ProgramSpec("qr", nt, tile)
    sched_spec = experiment_scheduler_spec(scheduler_name)
    real_spec = RunSpec(
        program=program_spec,
        scheduler=sched_spec,
        machine=machine_name,
        seed=seed + 1,
        mode="real",
    )
    sim_spec = RunSpec(
        program=program_spec,
        scheduler=sched_spec,
        machine=machine_name,
        seed=seed + 2,
        mode="simulated",
        cal_nt=cal_nt,
        cal_seed=seed,
    )
    outcome = sweep([real_spec, sim_spec], jobs=jobs, cache=cache)
    real = outcome.results[0].load_trace()
    sim = outcome.results[1].load_trace()
    flops = program_spec.build().total_flops
    result = ValidationResult(
        real=real,
        simulated=sim,
        comparison=compare_traces(real, sim),
        gflops_real=real.gflops(flops),
        gflops_sim=sim.gflops(flops),
    )

    svg_path: Optional[Path] = None
    if write_artifacts:
        out = artifact_dir("fig06_07")
        n = nt * tile
        svg_path = write_comparison_svg(
            result.real,
            result.simulated,
            out / f"qr_{n}_{tile}_{scheduler_name}.svg",
            titles=(
                f"Fig. 6 analogue: real QR trace (n={n}, nb={tile}, {scheduler_name})",
                f"Fig. 7 analogue: simulated QR trace (n={n}, nb={tile}, {scheduler_name})",
            ),
        )
        write_svg(result.real, out / "real.svg", title="real")
        write_svg(result.simulated, out / "simulated.svg", title="simulated")
    return TraceExperiment(result=result, svg_path=svg_path)
