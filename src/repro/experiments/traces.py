"""Trace-comparison experiment: the paper's Figs. 6 and 7.

A QR factorization of a 3960x3960 matrix with 180x180 tiles (22x22 tiles)
under QUARK on the 48-core machine: Fig. 6 shows the real trace, Fig. 7 the
simulated one, on identical time scales.  The claims: nearly identical
execution times and preserved trace features, with two visible differences —
the long *first kernel per core* (MKL initialisation) in the real trace, and
fewer tasks on core 0 (the insertion master).

:func:`trace_experiment` reproduces the pair, writes the stacked SVG, and
returns the comparison metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..algorithms import qr_program
from ..core.simulator import ValidationResult, validate
from ..machine import calibrate, get_machine
from ..trace.svg import write_comparison_svg, write_svg
from .config import CAL_NT, MACHINE_NAME, TRACE_NT, TRACE_TILE_SIZE, make_experiment_scheduler
from .reporting import artifact_dir

__all__ = ["TraceExperiment", "trace_experiment"]


@dataclass
class TraceExperiment:
    """Figs. 6-7 outcome: validation result plus artifact locations."""

    result: ValidationResult
    svg_path: Optional[Path]

    def report(self) -> str:
        real, sim = self.result.real, self.result.simulated
        lines = [
            self.result.report(),
            f"tasks on core 0: real={real.tasks_per_worker()[0]} "
            f"sim={sim.tasks_per_worker()[0]} "
            f"(mean over cores: real={len(real) / real.n_workers:.1f})",
        ]
        if self.svg_path is not None:
            lines.append(f"comparison SVG: {self.svg_path}")
        return "\n".join(lines)


def trace_experiment(
    *,
    nt: int = TRACE_NT,
    tile: int = TRACE_TILE_SIZE,
    scheduler_name: str = "quark",
    machine_name: str = MACHINE_NAME,
    cal_nt: int = CAL_NT,
    seed: int = 0,
    write_artifacts: bool = True,
) -> TraceExperiment:
    """Reproduce the Figs. 6-7 real/simulated trace pair."""
    machine = get_machine(machine_name)
    cal_program = qr_program(cal_nt, tile)
    models, _ = calibrate(
        cal_program, make_experiment_scheduler(scheduler_name), machine, seed=seed
    )

    program = qr_program(nt, tile)
    result = validate(
        program,
        make_experiment_scheduler(scheduler_name),
        machine,
        models,
        seed_real=seed + 1,
        seed_sim=seed + 2,
        warmup_penalty=machine.warmup_penalty,
    )

    svg_path: Optional[Path] = None
    if write_artifacts:
        out = artifact_dir("fig06_07")
        n = nt * tile
        svg_path = write_comparison_svg(
            result.real,
            result.simulated,
            out / f"qr_{n}_{tile}_{scheduler_name}.svg",
            titles=(
                f"Fig. 6 analogue: real QR trace (n={n}, nb={tile}, {scheduler_name})",
                f"Fig. 7 analogue: simulated QR trace (n={n}, nb={tile}, {scheduler_name})",
            ),
        )
        write_svg(result.real, out / "real.svg", title="real")
        write_svg(result.simulated, out / "simulated.svg", title="simulated")
    return TraceExperiment(result=result, svg_path=svg_path)
