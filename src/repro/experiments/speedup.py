"""Simulation speed-up experiment (paper §III, "Accelerated Simulation Time").

The paper claims the simulation — which runs in parallel, with the real
scheduler but without the tasks' useful work — generates traces about twice
as fast as the real execution, while predicting its running time within a
few percent.

Here both sides run on the *host* machine through the threaded runtime:

* **real run**: ``execute`` mode — worker threads factorize an actual matrix
  with NumPy tile kernels (BLAS releases the GIL, so this is genuinely
  parallel), timed with the wall clock;
* **simulated run**: ``simulate`` mode — the same runtime executes the
  paper's TEQ protocol with kernel models calibrated *from the real run's
  trace* (the paper's own methodology), also timed with the wall clock.

The speed-up is ``wall_real / wall_sim``; the accuracy is the simulated
virtual makespan against the real wall-clock makespan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..algorithms import TiledMatrix, cholesky_program, random_spd
from ..core.metrics import RunMetrics
from ..core.threaded import ThreadedRuntime
from ..kernels.timing import KernelModelSet
from ..machine.calibration import collect_samples

__all__ = ["SpeedupResult", "speedup_experiment"]


@dataclass
class SpeedupResult:
    """Wall-clock comparison of real and simulated threaded runs."""

    wall_real: float
    wall_sim: float
    makespan_real: float
    makespan_sim: float
    n_tasks: int
    n_workers: int
    factorization_error: float
    #: RunMetrics of the real threaded run (TEQ counters stay zero — the
    #: real run never queues into the TEQ) and of the median simulated run.
    metrics_real: Optional[RunMetrics] = None
    metrics_sim: Optional[RunMetrics] = None

    @property
    def speedup(self) -> float:
        return self.wall_real / self.wall_sim if self.wall_sim > 0 else float("inf")

    @property
    def prediction_error_percent(self) -> float:
        return abs(self.makespan_sim - self.makespan_real) / self.makespan_real * 100.0

    def report(self) -> str:
        lines = [
            f"real run : {self.wall_real * 1e3:9.2f} ms wall "
            f"({self.n_tasks} tasks on {self.n_workers} threads, "
            f"residual {self.factorization_error:.2e})",
            f"simulated: {self.wall_sim * 1e3:9.2f} ms wall",
            f"speed-up : {self.speedup:.2f}x "
            f"(paper: ~2x not uncommon)",
            f"predicted makespan {self.makespan_sim * 1e3:.2f} ms vs real "
            f"{self.makespan_real * 1e3:.2f} ms "
            f"(error {self.prediction_error_percent:.2f}%)",
        ]
        if self.metrics_sim is not None:
            lines.append(
                f"TEQ      : {self.metrics_sim.teq_inserts} inserts, "
                f"peak depth {self.metrics_sim.peak_teq_depth}"
            )
        return "\n".join(lines)


def speedup_experiment(
    *,
    nt: int = 10,
    nb: int = 160,
    n_workers: int = 4,
    seed: int = 0,
    family: str = "empirical",
    n_sim: int = 5,
) -> SpeedupResult:
    """Run the real-vs-simulated wall-clock comparison on the host machine.

    The default kernel-model family is ``empirical`` (bootstrap resampling):
    wall-clock kernel times on a time-shared host have heavy tails (OS
    preemption), which a trimmed parametric fit would underestimate — the
    empirical model reproduces the tail and keeps the predicted makespan
    honest.
    """
    rng = np.random.default_rng(seed)
    n = nt * nb
    dense = random_spd(n, rng)
    matrix = TiledMatrix(dense.copy(), nb)
    program = cholesky_program(nt, nb)

    # Warm-up pass (untimed): first-touch page faults, BLAS initialisation,
    # and allocator growth would otherwise pollute the timed run — the same
    # effect the paper neutralises with an extra MKL call per thread.
    warm_matrix = TiledMatrix(dense.copy(), nb)
    ThreadedRuntime(n_workers, mode="execute").run(
        cholesky_program(nt, nb), store=warm_matrix.store, seed=seed
    )

    # Real parallel execution with NumPy kernels.
    runtime = ThreadedRuntime(n_workers, mode="execute")
    metrics_real = RunMetrics()
    t0 = time.perf_counter()
    real_trace = runtime.run(program, store=matrix.store, seed=seed, metrics=metrics_real)
    wall_real = time.perf_counter() - t0
    real_trace.validate()

    lower = np.tril(matrix.lower_tiles_dense())
    residual = float(
        np.linalg.norm(lower @ lower.T - dense) / np.linalg.norm(dense)
    )

    # Calibrate kernel models from the real trace (paper §V-B1) and simulate.
    # Wall-clock kernel samples on a time-shared host are heavy-tailed, so a
    # single stochastic realisation of the simulation has a high-variance
    # makespan; the performance estimate is the median over a few simulation
    # seeds (each full simulation is itself the timed unit).
    samples = collect_samples(real_trace, drop_first_per_worker=True)
    models = KernelModelSet.from_samples(samples, family=family, trim_warmup=False)
    walls, spans, sim_metrics = [], [], []
    for rep in range(n_sim):
        sim_runtime = ThreadedRuntime(n_workers, mode="simulate", guard="quiesce")
        sim_program = cholesky_program(nt, nb)
        rep_metrics = RunMetrics()
        t0 = time.perf_counter()
        sim_trace = sim_runtime.run(
            sim_program, models=models, seed=seed + 1 + rep, metrics=rep_metrics
        )
        walls.append(time.perf_counter() - t0)
        sim_trace.validate()
        spans.append(sim_trace.makespan)
        sim_metrics.append(rep_metrics)

    median_rep = int(np.argsort(walls)[len(walls) // 2])
    return SpeedupResult(
        wall_real=wall_real,
        wall_sim=float(np.median(walls)),
        makespan_real=real_trace.makespan,
        makespan_sim=float(np.median(spans)),
        n_tasks=len(program),
        n_workers=n_workers,
        factorization_error=residual,
        metrics_real=metrics_real,
        metrics_sim=sim_metrics[median_rep],
    )
