"""DAG and task-stream experiments: the paper's Figs. 1 and 2.

Fig. 1 draws the dependence DAG of a 4x4-tile QR factorization — 30 tasks
whose vertices are kernels and whose (possibly parallel) edges are data
hazards.  Fig. 2 lists the serial task stream of a 3x3-tile QR with its
read/write annotations, tasks F0 through F13.

:func:`fig1_dag` builds the DAG, checks its invariants, and writes the DOT
rendering; :func:`fig2_stream` reproduces the exact 14-task listing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..algorithms import qr_program
from ..algorithms.qr import expected_task_count
from ..dag import build_dag, dag_stats, write_dot
from ..dag.analysis import DagStats
from .reporting import artifact_dir

__all__ = ["Fig1Result", "fig1_dag", "FIG2_EXPECTED", "fig2_stream"]


@dataclass
class Fig1Result:
    """Fig. 1 DAG plus its summary statistics."""

    dag: nx.MultiDiGraph
    stats: DagStats
    kernel_counts: Dict[str, int]
    multi_edge_pairs: int  # parent-child pairs connected by >1 hazard
    dot_path: Optional[Path]

    def report(self) -> str:
        lines = [
            f"QR 4x4 DAG: {self.stats.n_tasks} tasks, "
            f"{self.dag.number_of_edges()} hazard edges over "
            f"{self.stats.n_edges} parent/child pairs",
            f"kernel counts: {self.kernel_counts}",
            f"parent/child pairs with multiple dependence edges: {self.multi_edge_pairs}",
            f"depth {self.stats.depth}, max width {self.stats.max_width}, "
            f"avg parallelism {self.stats.average_parallelism:.2f}",
        ]
        if self.dot_path is not None:
            lines.append(f"DOT: {self.dot_path}")
        return "\n".join(lines)


def fig1_dag(*, nt: int = 4, tile: int = 180, write_artifacts: bool = True) -> Fig1Result:
    """Reproduce Fig. 1: the DAG of an ``nt x nt`` tile QR factorization."""
    program = qr_program(nt, tile)
    assert len(program) == expected_task_count(nt)
    dag = build_dag(program)
    pair_counts: Dict[Tuple[int, int], int] = {}
    for src, dst in dag.edges():
        pair_counts[(src, dst)] = pair_counts.get((src, dst), 0) + 1
    multi = sum(1 for c in pair_counts.values() if c > 1)
    dot_path = None
    if write_artifacts:
        dot_path = write_dot(dag, artifact_dir("fig01") / f"qr_dag_{nt}x{nt}.dot")
    return Fig1Result(
        dag=dag,
        stats=dag_stats(dag),
        kernel_counts=program.kernel_counts(),
        multi_edge_pairs=multi,
        dot_path=dot_path,
    )


#: The serial task stream of Fig. 2 (3x3-tile QR), exactly as printed in the
#: paper: kernel plus the accessed tiles with their read/write decorations.
FIG2_EXPECTED: List[str] = [
    "dgeqrt(A[0,0]^rw, T[0,0]^w)",
    "dormqr(A[0,0]^r, T[0,0]^r, A[0,1]^rw)",
    "dormqr(A[0,0]^r, T[0,0]^r, A[0,2]^rw)",
    "dtsqrt(A[0,0]^rw, A[1,0]^rw, T[1,0]^w)",
    "dtsmqr(A[0,1]^rw, A[1,1]^rw, A[1,0]^r, T[1,0]^r)",
    "dtsmqr(A[0,2]^rw, A[1,2]^rw, A[1,0]^r, T[1,0]^r)",
    "dtsqrt(A[0,0]^rw, A[2,0]^rw, T[2,0]^w)",
    "dtsmqr(A[0,1]^rw, A[2,1]^rw, A[2,0]^r, T[2,0]^r)",
    "dtsmqr(A[0,2]^rw, A[2,2]^rw, A[2,0]^r, T[2,0]^r)",
    "dgeqrt(A[1,1]^rw, T[1,1]^w)",
    "dormqr(A[1,1]^r, T[1,1]^r, A[1,2]^rw)",
    "dtsqrt(A[1,1]^rw, A[2,1]^rw, T[2,1]^w)",
    "dtsmqr(A[1,2]^rw, A[2,2]^rw, A[2,1]^r, T[2,1]^r)",
    "dgeqrt(A[2,2]^rw, T[2,2]^w)",
]


def fig2_stream(*, tile: int = 180) -> Tuple[List[str], str]:
    """Reproduce Fig. 2: the F0..F13 serial task stream of a 3x3-tile QR.

    Returns the generated listing and the ``describe()`` rendering.
    """
    program = qr_program(3, tile)
    listing = [task.describe() for task in program]
    return listing, program.describe()
