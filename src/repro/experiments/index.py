"""Machine-readable experiment registry.

One entry per experiment id in DESIGN.md's per-experiment index, tying the
paper artifact to the bench file that regenerates it and the driver that
computes it.  Tests assert the registry, DESIGN.md, and the benchmark
directory stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Experiment", "EXPERIMENTS"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment."""

    id: str
    paper_artifact: str
    bench: str  # file under benchmarks/
    driver: str  # dotted path of the main driver callable


EXPERIMENTS: Dict[str, Experiment] = {
    e.id: e
    for e in (
        Experiment(
            "FIG1", "Fig. 1: QR DAG, 4x4 tiles",
            "test_fig01_qr_dag.py", "repro.experiments.dagfigs.fig1_dag",
        ),
        Experiment(
            "FIG2", "Fig. 2: serial task stream of tile QR",
            "test_fig02_task_stream.py", "repro.experiments.dagfigs.fig2_stream",
        ),
        Experiment(
            "FIG3", "Fig. 3: DTSMQR timing density + fits",
            "test_fig03_dtsmqr_distribution.py",
            "repro.experiments.distributions.distribution_figure",
        ),
        Experiment(
            "FIG4", "Fig. 4: DGEMM timing density + fits",
            "test_fig04_dgemm_distribution.py",
            "repro.experiments.distributions.distribution_figure",
        ),
        Experiment(
            "FIG5", "Fig. 5: TEQ scheduling race condition",
            "test_fig05_race_condition.py", "repro.experiments.race.race_experiment",
        ),
        Experiment(
            "FIG6/7", "Figs. 6-7: real vs simulated QR trace",
            "test_fig06_07_traces.py", "repro.experiments.traces.trace_experiment",
        ),
        Experiment(
            "FIG8", "Fig. 8: OmpSs performance, QR+Cholesky",
            "test_fig08_ompss_performance.py",
            "repro.experiments.performance.performance_figure",
        ),
        Experiment(
            "FIG9", "Fig. 9: StarPU performance, QR+Cholesky",
            "test_fig09_starpu_performance.py",
            "repro.experiments.performance.performance_figure",
        ),
        Experiment(
            "FIG10", "Fig. 10: QUARK performance, QR+Cholesky",
            "test_fig10_quark_performance.py",
            "repro.experiments.performance.performance_figure",
        ),
        Experiment(
            "CLAIM-ACC", "SVI-B: worst error ~16%, majority < 5%",
            "test_claim_accuracy.py",
            "repro.experiments.performance.accuracy_summary",
        ),
        Experiment(
            "CLAIM-SPD", "SIII: ~2x simulation speed-up",
            "test_claim_speedup.py", "repro.experiments.speedup.speedup_experiment",
        ),
        Experiment(
            "ABL-DIST", "SV-B/SVII: kernel-model family",
            "test_ablation_distribution.py",
            "repro.experiments.ablations.ablation_distribution",
        ),
        Experiment(
            "ABL-GUARD", "SV-E: race-guard necessity",
            "test_ablation_race_guard.py", "repro.experiments.race.run_scenario",
        ),
        Experiment(
            "ABL-POLICY", "SIV-A2: StarPU policy choice",
            "test_ablation_starpu_policy.py",
            "repro.experiments.ablations.ablation_starpu_policy",
        ),
        Experiment(
            "ABL-WINDOW", "SIV-A3: QUARK window size",
            "test_ablation_quark_window.py",
            "repro.experiments.ablations.ablation_quark_window",
        ),
        Experiment(
            "ABL-SUCCESSOR", "SIV-A1: OmpSs immediate-successor heuristic",
            "test_ablation_ompss_successor.py",
            "repro.experiments.ablations.ablation_ompss_successor",
        ),
        Experiment(
            "ABL-WARMUP", "SV-B1: warm-up outlier handling",
            "test_ablation_warmup.py", "repro.experiments.ablations.ablation_warmup",
        ),
        Experiment(
            "ABL-LOADMODEL", "SVII: improved (load-aware) kernel model",
            "test_ablation_loadmodel.py", "repro.kernels.loadmodel.LoadAwareModelSet",
        ),
        Experiment(
            "EXT-MT", "SVII future work: multi-threaded tasks",
            "test_ext_multithreaded.py", "repro.algorithms.qr.qr_program",
        ),
        Experiment(
            "EXT-GPU", "SVII future work: GPU tasks",
            "test_ext_heterogeneous.py", "repro.machine.hetero.HeterogeneousBackend",
        ),
        Experiment(
            "BASE-STATIC", "SII: static scheduling baseline",
            "test_baseline_static.py", "repro.dag.listsched.list_schedule",
        ),
        Experiment(
            "SWEEP-RUNNER", "operational: parallel sweep fan-out + result cache",
            "test_sweep_runner.py", "repro.runner.runner.sweep",
        ),
    )
}
