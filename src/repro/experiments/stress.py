"""Randomized stress harness for the threaded runtime.

The §V-E race guards and the stall watchdog are concurrency code: their
failure modes are interleaving-dependent and will not show up in three
hand-written scenarios.  This harness sweeps randomized task streams across
every race guard and several worker counts, runs each combination on the
real threaded runtime, and verifies every produced trace with
:func:`~repro.trace.verify.verify_trace` (completeness, physical
consistency, dependence respect — the properties that hold under *any*
guard, including ``"none"``, whose permitted inaccuracy is timing, never
structure).

Fault injection composes: pass a :class:`~repro.core.faults.FaultPlan` to
rehearse lost notifies or dispatch delays under load, usually together with
``on_stall="recover"`` so healable stalls stay failures of the *fault*, not
of the sweep.

Entry points: :func:`random_program` (seeded generator of dependence-rich
streams), :func:`run_stress` (the sweep), and the ``repro stress`` CLI
subcommand built on top.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.faults import FaultPlan
from ..core.task import Program
from ..core.threaded import RACE_GUARDS, ThreadedRuntime
from ..core.metrics import RunMetrics
from ..core.watchdog import StallPolicy
from ..kernels.distributions import UniformModel
from ..kernels.timing import KernelModelSet
from ..trace.verify import TraceVerificationError, verify_trace
from .reporting import format_table

__all__ = ["StressOutcome", "StressReport", "random_program", "stress_models", "run_stress"]

#: Kernel classes of the random streams (durations drawn per class).
STRESS_KERNELS = ("KA", "KB", "KC")


def random_program(
    n_tasks: int,
    *,
    n_refs: int = 6,
    seed: int = 0,
    kernels: Sequence[str] = STRESS_KERNELS,
) -> Program:
    """A seeded random task stream with a dense, varied dependence structure.

    Each task touches one to three distinct refs from a small pool with
    random read/write/rw modes, so the stream mixes true, anti and output
    dependences with independent runs — the shapes that stress the TEQ
    ordering and the guards.  Deterministic for a given ``(n_tasks,
    n_refs, seed)``.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be positive")
    if n_refs < 1:
        raise ValueError("n_refs must be positive")
    rng = np.random.default_rng(seed)
    prog = Program(name=f"stress-n{n_tasks}-s{seed}", meta={"nb": 1})
    refs = [prog.registry.alloc(f"r{i}", 64, key=("r", i)) for i in range(n_refs)]
    for _ in range(n_tasks):
        n_acc = int(rng.integers(1, min(3, n_refs) + 1))
        chosen = rng.choice(len(refs), size=n_acc, replace=False)
        accesses = []
        for idx in chosen:
            mode = rng.choice(("r", "w", "rw"))
            ref = refs[int(idx)]
            accesses.append(
                ref.read() if mode == "r" else ref.write() if mode == "w" else ref.rw()
            )
        kernel = str(kernels[int(rng.integers(0, len(kernels)))])
        prog.add_task(kernel, accesses, priority=int(rng.integers(0, 4)))
    return prog


def stress_models(
    kernels: Sequence[str] = STRESS_KERNELS,
    *,
    lo: float = 0.5,
    hi: float = 2.0,
) -> KernelModelSet:
    """Uniform duration models — wide enough to shuffle TEQ orderings."""
    return KernelModelSet(
        models={k: UniformModel(lo=lo, hi=hi) for k in kernels}, family="uniform"
    )


@dataclass(frozen=True)
class StressOutcome:
    """Result of one (program, guard, workers) stress combination."""

    program_seed: int
    n_tasks: int
    guard: str
    n_workers: int
    ok: bool
    error: str = ""
    makespan: float = 0.0
    wall_s: float = 0.0
    stall_recoveries: int = 0
    notify_drops: int = 0


@dataclass
class StressReport:
    """Aggregate of one :func:`run_stress` sweep."""

    outcomes: List[StressOutcome] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def all_ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> List[StressOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def table(self, *, max_rows: int = 40) -> str:
        shown = self.outcomes[:max_rows]
        body = format_table(
            ("seed", "tasks", "guard", "workers", "ok", "recov", "drops", "error"),
            [
                (
                    o.program_seed,
                    o.n_tasks,
                    o.guard,
                    o.n_workers,
                    "yes" if o.ok else "NO",
                    o.stall_recoveries,
                    o.notify_drops,
                    o.error[:48],
                )
                for o in shown
            ],
            title=(
                f"threaded stress sweep: {len(self.outcomes)} combos, "
                f"{len(self.failures)} failures, {self.wall_s:.1f}s"
            ),
        )
        if len(self.outcomes) > max_rows:
            body += f"\n... ({len(self.outcomes) - max_rows} more rows)"
        return body


def run_stress(
    *,
    n_programs: int = 25,
    n_tasks: int = 14,
    guards: Sequence[str] = RACE_GUARDS,
    worker_counts: Sequence[int] = (2, 4),
    base_seed: int = 0,
    sleep_time: float = 1e-4,
    faults: Optional[FaultPlan] = None,
    stall: Optional[StallPolicy] = None,
    progress=None,
    probe_dir: Union[str, Path, None] = None,
) -> StressReport:
    """Sweep randomized programs x guards x worker counts on real threads.

    Every combination must complete within the watchdog budget and produce
    a trace that passes :func:`verify_trace`; anything else (stall, crash,
    verification failure) is recorded as a failing outcome with the error
    message.  ``stall`` defaults to a 30 s ``"raise"`` budget — generous
    for healthy runs, finite for deadlocks, so the sweep itself can never
    hang.  Returns a :class:`StressReport`; the sweep never raises for a
    failing combination.

    ``probe_dir``, when given, attaches a recording probe to every
    combination and writes its timeline artifact set there (named
    ``s<seed>-<guard>-w<workers>``) — the post-mortem view of exactly the
    interleavings this harness exists to shake out.
    """
    for g in guards:
        if g not in RACE_GUARDS:
            raise ValueError(f"unknown race guard {g!r}; choose from {RACE_GUARDS}")
    if stall is None:
        stall = StallPolicy(timeout_s=30.0, poll_s=0.05)
    models = stress_models()
    report = StressReport()
    t_sweep = time.perf_counter()
    combo = 0
    for p in range(n_programs):
        seed = base_seed + p
        prog = random_program(n_tasks, seed=seed)
        for guard in guards:
            for workers in worker_counts:
                combo += 1
                metrics = RunMetrics()
                runtime = ThreadedRuntime(
                    workers,
                    mode="simulate",
                    guard=guard,
                    sleep_time=sleep_time,
                    faults=faults,
                    stall=stall,
                )
                probe = None
                if probe_dir is not None:
                    from ..obs.probe import RecordingProbe

                    probe = RecordingProbe()
                t0 = time.perf_counter()
                ok, err, makespan = True, "", 0.0
                trace = None
                try:
                    trace = runtime.run(
                        prog, models=models, seed=seed, metrics=metrics, probe=probe
                    )
                    verify_trace(prog, trace)
                    makespan = trace.makespan
                except (RuntimeError, TraceVerificationError) as exc:
                    # RuntimeStallError is a RuntimeError; verification and
                    # worker-crash failures land here too.
                    ok, err = False, f"{type(exc).__name__}: {exc}"
                if probe is not None and trace is not None:
                    from ..obs.timeline import export_timeline

                    export_timeline(
                        probe_dir,
                        trace,
                        probe,
                        metrics=metrics,
                        prefix=f"s{seed}-{guard}-w{workers}",
                    )
                outcome = StressOutcome(
                    program_seed=seed,
                    n_tasks=len(prog),
                    guard=guard,
                    n_workers=workers,
                    ok=ok,
                    error=err,
                    makespan=makespan,
                    wall_s=time.perf_counter() - t0,
                    stall_recoveries=metrics.stall_recoveries,
                    notify_drops=metrics.teq_notify_drops,
                )
                report.outcomes.append(outcome)
                if progress is not None:
                    progress(
                        f"[{combo}] seed={seed} guard={guard} workers={workers} "
                        f"{'ok' if ok else 'FAIL ' + err[:60]} "
                        f"({outcome.wall_s:.2f}s)"
                    )
    report.wall_s = time.perf_counter() - t_sweep
    return report
