"""Race-condition experiment: the paper's Fig. 5 scenario.

Two cores, three tasks: A and B are independent, C depends on A, and C is
much shorter than both.  Correct simulation: C starts at A's completion
(t=10) and the makespan is B's end (t=12).  The race (§V-E): if B — at the
front of the Task Execution Queue after A pops — returns before the runtime
finishes dispatching C, then C reads an already-advanced clock and lands in
the trace "much later than it would have been in reality".

The experiment runs the scenario on the *threaded* runtime with a real-time
dispatch delay injected around C's dispatch to open the race window
deterministically, under each guard strategy.  ``quiesce`` (the QUARK
extension) and an adequately-sized ``sleep`` give the correct trace; a
too-short sleep reproduces the exact Fig. 5 inaccuracy; ``none`` collapses
even further.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.faults import FaultPlan
from ..core.task import Program
from ..core.threaded import ThreadedRuntime
from ..kernels.distributions import ConstantModel
from ..kernels.timing import KernelModelSet
from .reporting import format_table

__all__ = ["RaceOutcome", "fig5_program", "fig5_models", "race_experiment"]

#: Virtual durations of the three tasks (seconds of simulated time).
DUR_A, DUR_B, DUR_C = 10.0, 12.0, 1.0

#: Correct results for the scenario.
CORRECT_C_START = DUR_A
CORRECT_MAKESPAN = DUR_B


def fig5_program() -> Program:
    """The three-task program of Fig. 5 (A, B independent; C reads A's output)."""
    p = Program("fig5", meta={"nb": 1})
    x = p.registry.alloc("x", 64)
    y = p.registry.alloc("y", 64)
    p.add_task("KA", [x.write()], label="A")
    p.add_task("KB", [y.write()], label="B")
    p.add_task("KC", [x.read()], label="C")
    return p


def fig5_models() -> KernelModelSet:
    """Deterministic durations so outcomes are exactly checkable."""
    return KernelModelSet(
        models={
            "KA": ConstantModel(DUR_A),
            "KB": ConstantModel(DUR_B),
            "KC": ConstantModel(DUR_C),
        },
        family="constant",
    )


@dataclass(frozen=True)
class RaceOutcome:
    """Result of the scenario under one guard configuration."""

    guard: str
    sleep_time: float
    c_start: float
    makespan: float

    @property
    def correct(self) -> bool:
        return (
            abs(self.c_start - CORRECT_C_START) < 1e-9
            and abs(self.makespan - CORRECT_MAKESPAN) < 1e-9
        )


def run_scenario(
    guard: str,
    *,
    sleep_time: float = 200e-6,
    dispatch_delay: float = 3e-3,
    seed: int = 0,
) -> RaceOutcome:
    """One threaded-runtime execution of the Fig. 5 scenario.

    The race window is opened deterministically through the fault-injection
    layer: a real-time dispatch delay around task C only.
    """
    runtime = ThreadedRuntime(
        2,
        mode="simulate",
        guard=guard,
        sleep_time=sleep_time,
        faults=FaultPlan(dispatch_delay=dispatch_delay, delay_kernels=("KC",)),
    )
    trace = runtime.run(fig5_program(), models=fig5_models(), seed=seed)
    c_event = next(e for e in trace.events if e.kernel == "KC")
    return RaceOutcome(
        guard=guard, sleep_time=sleep_time, c_start=c_event.start, makespan=trace.makespan
    )


def race_experiment(*, repeats: int = 3, seed: int = 0) -> Tuple[List[RaceOutcome], str]:
    """Run the scenario under every guard configuration; returns outcomes + table.

    Configurations: quiesce; sleep with an adequate pause (longer than the
    injected dispatch delay); sleep with an inadequate pause (the portable
    guard mis-tuned — reproduces the Fig. 5 race exactly); no guard.
    """
    configs = [
        ("quiesce", 200e-6),
        ("sleep", 10e-3),  # pause > dispatch delay: bookkeeping completes
        ("sleep", 100e-6),  # pause < dispatch delay: race fires
        ("none", 0.0),
    ]
    outcomes: List[RaceOutcome] = []
    for guard, pause in configs:
        for r in range(repeats):
            outcomes.append(run_scenario(guard, sleep_time=pause, seed=seed + r))
    table = format_table(
        ("guard", "sleep ms", "C start", "makespan", "correct"),
        [
            (o.guard, o.sleep_time * 1e3, o.c_start, o.makespan, str(o.correct))
            for o in outcomes
        ],
        title=f"Fig. 5 race condition (correct: C start={CORRECT_C_START}, "
        f"makespan={CORRECT_MAKESPAN})",
    )
    return outcomes, table
