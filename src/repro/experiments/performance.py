"""Performance-prediction experiments: the paper's Figs. 8, 9, and 10.

Each figure plots, for one scheduler (OmpSs / StarPU / QUARK) and both
factorizations (QR in blue, Cholesky in red), the *real* performance (solid),
the *simulated* performance (dashed), and the percentage error (dotted) over
a sweep of matrix sizes at tile size 200.  The claim under test: "the
performance levels predicted by the simulations are accurate to within a few
percentage points ... worst case error ... approximately 16%, but the vast
majority of test cases show less than 5% error" (§VI-B).

:func:`performance_figure` reproduces one figure; :func:`accuracy_summary`
aggregates the error distribution over all three (CLAIM-ACC in DESIGN.md).

Every sweep point is executed through :mod:`repro.runner`, so passing
``jobs > 1`` fans the grid out over worker processes and passing a cache
(directory or :class:`~repro.runner.ResultCache`) makes repeated sweeps —
including CI reruns — skip already-simulated points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..algorithms import cholesky_program, qr_program
from ..core.task import Program
from ..runner import ProgramSpec, RunSpec, sweep
from ..trace.compare import compare_traces
from .config import (
    CAL_NT,
    DISTRIBUTION_FAMILY,
    MACHINE_NAME,
    SWEEP_NTS,
    TILE_SIZE,
    experiment_scheduler_spec,
)
from .reporting import format_table

__all__ = ["PerfPoint", "performance_sweep", "performance_figure", "accuracy_summary"]

_GENERATORS: Dict[str, Callable[[int, int], Program]] = {
    "cholesky": lambda nt, nb: cholesky_program(nt, nb),
    "qr": lambda nt, nb: qr_program(nt, nb),
}


@dataclass(frozen=True)
class PerfPoint:
    """One matrix size of one algorithm: real vs simulated performance."""

    algorithm: str
    n: int
    nt: int
    gflops_real: float
    gflops_sim: float
    error_percent: float  # unsigned


def performance_sweep(
    scheduler_name: str,
    algorithm: str,
    *,
    nts: Sequence[int] = SWEEP_NTS,
    tile: int = TILE_SIZE,
    machine_name: str = MACHINE_NAME,
    family: str = DISTRIBUTION_FAMILY,
    cal_nt: int = CAL_NT,
    seed: int = 0,
    jobs: int = 1,
    cache=None,
) -> List[PerfPoint]:
    """Real-vs-simulated sweep of one algorithm under one scheduler.

    Each matrix size contributes one real and one simulated run spec; the
    whole grid goes through :func:`repro.runner.sweep`, so ``jobs`` workers
    execute points concurrently and ``cache`` (a directory path or
    :class:`~repro.runner.ResultCache`) deduplicates repeated points — the
    shared calibration run is computed once per sweep either way.
    """
    if algorithm not in _GENERATORS:
        raise KeyError(f"unknown algorithm {algorithm!r}")
    sched_spec = experiment_scheduler_spec(scheduler_name)
    specs: List[RunSpec] = []
    for nt in nts:
        program = ProgramSpec(algorithm, nt, tile)
        specs.append(
            RunSpec(
                program=program,
                scheduler=sched_spec,
                machine=machine_name,
                seed=seed * 1000 + nt,
                mode="real",
            )
        )
        specs.append(
            RunSpec(
                program=program,
                scheduler=sched_spec,
                machine=machine_name,
                seed=seed * 1000 + nt + 1,
                mode="simulated",
                cal_nt=cal_nt,
                cal_seed=seed,
                family=family,
            )
        )
    results = sweep(specs, jobs=jobs, cache=cache).results

    points: List[PerfPoint] = []
    for i, nt in enumerate(nts):
        real = results[2 * i].load_trace()
        sim = results[2 * i + 1].load_trace()
        flops = _GENERATORS[algorithm](nt, tile).total_flops
        points.append(
            PerfPoint(
                algorithm=algorithm,
                n=nt * tile,
                nt=nt,
                gflops_real=real.gflops(flops),
                gflops_sim=sim.gflops(flops),
                error_percent=compare_traces(real, sim).abs_error_percent,
            )
        )
    return points


def performance_figure(
    scheduler_name: str,
    *,
    nts: Sequence[int] = SWEEP_NTS,
    tile: int = TILE_SIZE,
    machine_name: str = MACHINE_NAME,
    family: str = DISTRIBUTION_FAMILY,
    seed: int = 0,
    jobs: int = 1,
    cache=None,
) -> Dict[str, List[PerfPoint]]:
    """One full figure: both factorizations under ``scheduler_name``."""
    return {
        algorithm: performance_sweep(
            scheduler_name,
            algorithm,
            nts=nts,
            tile=tile,
            machine_name=machine_name,
            family=family,
            seed=seed,
            jobs=jobs,
            cache=cache,
        )
        for algorithm in ("qr", "cholesky")
    }


def figure_table(scheduler_name: str, data: Dict[str, List[PerfPoint]]) -> str:
    """The paper-plot-as-table rendering of one figure's data."""
    rows = []
    for algorithm in ("qr", "cholesky"):
        for p in data[algorithm]:
            rows.append(
                (p.algorithm, p.n, p.gflops_real, p.gflops_sim, p.error_percent)
            )
    return format_table(
        ("algorithm", "n", "real GF/s", "sim GF/s", "err %"),
        rows,
        title=f"scheduler={scheduler_name}, tile={TILE_SIZE}, machine={MACHINE_NAME}",
    )


def accuracy_summary(figures: Dict[str, Dict[str, List[PerfPoint]]]) -> Dict[str, float]:
    """Error statistics over every point of every figure (CLAIM-ACC).

    Returns max error, median error, and the fraction of points under 5 %.
    """
    errors = [
        p.error_percent
        for per_sched in figures.values()
        for pts in per_sched.values()
        for p in pts
    ]
    if not errors:
        raise ValueError("no data points")
    errors.sort()
    n = len(errors)
    median = errors[n // 2] if n % 2 else 0.5 * (errors[n // 2 - 1] + errors[n // 2])
    return {
        "n_points": float(n),
        "max_error_percent": errors[-1],
        "median_error_percent": median,
        "fraction_below_5pct": sum(1 for e in errors if e < 5.0) / n,
    }
