"""Performance-prediction experiments: the paper's Figs. 8, 9, and 10.

Each figure plots, for one scheduler (OmpSs / StarPU / QUARK) and both
factorizations (QR in blue, Cholesky in red), the *real* performance (solid),
the *simulated* performance (dashed), and the percentage error (dotted) over
a sweep of matrix sizes at tile size 200.  The claim under test: "the
performance levels predicted by the simulations are accurate to within a few
percentage points ... worst case error ... approximately 16%, but the vast
majority of test cases show less than 5% error" (§VI-B).

:func:`performance_figure` reproduces one figure; :func:`accuracy_summary`
aggregates the error distribution over all three (CLAIM-ACC in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms import cholesky_program, qr_program
from ..core.simulator import validate
from ..core.task import Program
from ..kernels.timing import KernelModelSet
from ..machine import calibrate, get_machine
from .config import (
    CAL_NT,
    DISTRIBUTION_FAMILY,
    MACHINE_NAME,
    SWEEP_NTS,
    TILE_SIZE,
    make_experiment_scheduler,
)
from .reporting import format_table

__all__ = ["PerfPoint", "performance_sweep", "performance_figure", "accuracy_summary"]

_GENERATORS: Dict[str, Callable[[int, int], Program]] = {
    "cholesky": lambda nt, nb: cholesky_program(nt, nb),
    "qr": lambda nt, nb: qr_program(nt, nb),
}


@dataclass(frozen=True)
class PerfPoint:
    """One matrix size of one algorithm: real vs simulated performance."""

    algorithm: str
    n: int
    nt: int
    gflops_real: float
    gflops_sim: float
    error_percent: float  # unsigned


def _calibrated_models(
    scheduler_name: str,
    algorithm: str,
    *,
    tile: int = TILE_SIZE,
    cal_nt: int = CAL_NT,
    machine_name: str = MACHINE_NAME,
    family: str = DISTRIBUTION_FAMILY,
    seed: int = 0,
) -> KernelModelSet:
    machine = get_machine(machine_name)
    program = _GENERATORS[algorithm](cal_nt, tile)
    scheduler = make_experiment_scheduler(scheduler_name)
    models, _ = calibrate(program, scheduler, machine, family=family, seed=seed)
    return models


def performance_sweep(
    scheduler_name: str,
    algorithm: str,
    *,
    nts: Sequence[int] = SWEEP_NTS,
    tile: int = TILE_SIZE,
    machine_name: str = MACHINE_NAME,
    family: str = DISTRIBUTION_FAMILY,
    models: Optional[KernelModelSet] = None,
    seed: int = 0,
) -> List[PerfPoint]:
    """Real-vs-simulated sweep of one algorithm under one scheduler."""
    if algorithm not in _GENERATORS:
        raise KeyError(f"unknown algorithm {algorithm!r}")
    machine = get_machine(machine_name)
    if models is None:
        models = _calibrated_models(
            scheduler_name, algorithm, tile=tile, machine_name=machine_name,
            family=family, seed=seed,
        )
    points: List[PerfPoint] = []
    for nt in nts:
        program = _GENERATORS[algorithm](nt, tile)
        scheduler = make_experiment_scheduler(scheduler_name)
        result = validate(
            program,
            scheduler,
            machine,
            models,
            seed_real=seed * 1000 + nt,
            seed_sim=seed * 1000 + nt + 1,
            warmup_penalty=machine.warmup_penalty,
        )
        points.append(
            PerfPoint(
                algorithm=algorithm,
                n=nt * tile,
                nt=nt,
                gflops_real=result.gflops_real,
                gflops_sim=result.gflops_sim,
                error_percent=result.error_percent,
            )
        )
    return points


def performance_figure(
    scheduler_name: str,
    *,
    nts: Sequence[int] = SWEEP_NTS,
    tile: int = TILE_SIZE,
    machine_name: str = MACHINE_NAME,
    family: str = DISTRIBUTION_FAMILY,
    seed: int = 0,
) -> Dict[str, List[PerfPoint]]:
    """One full figure: both factorizations under ``scheduler_name``."""
    return {
        algorithm: performance_sweep(
            scheduler_name,
            algorithm,
            nts=nts,
            tile=tile,
            machine_name=machine_name,
            family=family,
            seed=seed,
        )
        for algorithm in ("qr", "cholesky")
    }


def figure_table(scheduler_name: str, data: Dict[str, List[PerfPoint]]) -> str:
    """The paper-plot-as-table rendering of one figure's data."""
    rows = []
    for algorithm in ("qr", "cholesky"):
        for p in data[algorithm]:
            rows.append(
                (p.algorithm, p.n, p.gflops_real, p.gflops_sim, p.error_percent)
            )
    return format_table(
        ("algorithm", "n", "real GF/s", "sim GF/s", "err %"),
        rows,
        title=f"scheduler={scheduler_name}, tile={TILE_SIZE}, machine={MACHINE_NAME}",
    )


def accuracy_summary(figures: Dict[str, Dict[str, List[PerfPoint]]]) -> Dict[str, float]:
    """Error statistics over every point of every figure (CLAIM-ACC).

    Returns max error, median error, and the fraction of points under 5 %.
    """
    errors = [
        p.error_percent
        for per_sched in figures.values()
        for pts in per_sched.values()
        for p in pts
    ]
    if not errors:
        raise ValueError("no data points")
    errors.sort()
    n = len(errors)
    median = errors[n // 2] if n % 2 else 0.5 * (errors[n // 2 - 1] + errors[n // 2])
    return {
        "n_points": float(n),
        "max_error_percent": errors[-1],
        "median_error_percent": median,
        "fraction_below_5pct": sum(1 for e in errors if e < 5.0) / n,
    }
