"""Kernel-timing distribution experiments: the paper's Figs. 3 and 4.

Fig. 3 overlays normal, gamma, and log-normal fits on the empirical density
of DTSMQR execution times harvested from a QR run; Fig. 4 does the same for
DGEMM from a Cholesky run.  The paper's finding: the three parametric
families fit "for all practical purposes, nearly identical[ly]", with
log-normal "slightly outperform[ing] the others in some cases", and the
DGEMM density is less well captured by the simple families than DTSMQR's —
but any of them beats a constant or uniform model.

:func:`distribution_figure` reproduces one figure: it runs the calibration,
fits all families, scores them (log-likelihood, AIC, KS), and tabulates a
binned empirical density alongside each fitted pdf so the curves can be
re-plotted from the text artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..algorithms import cholesky_program, qr_program
from ..kernels.distributions import DurationModel, fit_all_families
from ..machine import collect_samples, calibration_run, get_machine
from .config import CAL_NT, MACHINE_NAME, TRACE_TILE_SIZE, make_experiment_scheduler
from .reporting import format_table

__all__ = ["DistributionFit", "DistributionFigure", "distribution_figure"]

#: Which figure uses which (algorithm, kernel) pair.
FIGURE_KERNELS = {
    "fig3": ("qr", "DTSMQR"),
    "fig4": ("cholesky", "DGEMM"),
}


@dataclass(frozen=True)
class DistributionFit:
    """One fitted family's parameters and goodness-of-fit scores."""

    family: str
    mean: float
    std: float
    loglik: float
    aic: float
    ks: float


@dataclass
class DistributionFigure:
    """All data behind one of Figs. 3-4."""

    kernel: str
    algorithm: str
    samples: np.ndarray
    fits: Dict[str, DistributionFit]
    models: Dict[str, DurationModel]
    best_family: str

    def table(self) -> str:
        rows = [
            (f.family, f.mean * 1e6, f.std * 1e6, f.loglik, f.aic, f.ks)
            for f in self.fits.values()
        ]
        return format_table(
            ("family", "mean us", "std us", "loglik", "AIC", "KS"),
            rows,
            title=f"{self.kernel} timings ({self.algorithm} run, "
            f"n={self.samples.size} samples)",
        )

    def density_table(self, n_bins: int = 40) -> str:
        """Binned empirical density plus each family's pdf, for re-plotting."""
        hist, edges = np.histogram(self.samples, bins=n_bins, density=True)
        centers = 0.5 * (edges[:-1] + edges[1:])
        headers = ["time_us", "empirical"] + list(self.models)
        rows = []
        for i, c in enumerate(centers):
            row = [c * 1e6, hist[i]] + [float(m.pdf(np.array([c]))[0]) for m in self.models.values()]
            rows.append(row)
        return format_table(headers, rows, float_fmt="{:.4g}")


def distribution_figure(
    figure: str,
    *,
    families: Sequence[str] = ("normal", "gamma", "lognormal"),
    scheduler_name: str = "quark",
    machine_name: str = MACHINE_NAME,
    nt: int = CAL_NT,
    tile: int = TRACE_TILE_SIZE,
    seed: int = 0,
) -> DistributionFigure:
    """Reproduce Fig. 3 (``"fig3"``) or Fig. 4 (``"fig4"``)."""
    try:
        algorithm, kernel = FIGURE_KERNELS[figure]
    except KeyError:
        raise KeyError(f"unknown figure {figure!r}; choose from {sorted(FIGURE_KERNELS)}") from None
    machine = get_machine(machine_name)
    program = (qr_program if algorithm == "qr" else cholesky_program)(nt, tile)
    scheduler = make_experiment_scheduler(scheduler_name)
    trace = calibration_run(program, scheduler, machine, seed=seed)
    samples = np.asarray(collect_samples(trace)[kernel])

    models = fit_all_families(samples, families)
    fits: Dict[str, DistributionFit] = {}
    for family, model in models.items():
        fits[family] = DistributionFit(
            family=family,
            mean=model.mean,
            std=model.std,
            loglik=model.loglik(samples),
            aic=model.aic(samples),
            ks=model.ks_statistic(samples),
        )
    best = min(fits.values(), key=lambda f: f.aic).family
    return DistributionFigure(
        kernel=kernel,
        algorithm=algorithm,
        samples=samples,
        fits=fits,
        models=models,
        best_family=best,
    )
