"""Ablation experiments for the design choices DESIGN.md calls out.

* :func:`ablation_distribution` — how the kernel-model family affects
  prediction accuracy (the paper argues model randomness is "essential").
* :func:`ablation_warmup` — what happens to the fits, and downstream
  accuracy, when the MKL-style warm-up outliers are *not* excluded.
* :func:`ablation_starpu_policy` — real-run makespans under each StarPU
  policy, and whether the simulator tracks the differences.
* :func:`ablation_quark_window` — QUARK window-size sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..algorithms import cholesky_program, qr_program
from ..core.simulator import validate
from ..kernels.timing import KernelModelSet
from ..machine import calibrate, calibration_run, collect_samples, get_machine
from ..schedulers import OmpSsScheduler, QuarkScheduler, StarPUScheduler
from ..schedulers.starpu import STARPU_POLICIES
from .config import MACHINE_NAME, make_experiment_scheduler
from .reporting import format_table

__all__ = [
    "ablation_distribution",
    "ablation_warmup",
    "ablation_starpu_policy",
    "ablation_quark_window",
    "ablation_ompss_successor",
]


@dataclass(frozen=True)
class FamilyOutcome:
    family: str
    error_percent: float
    order_similarity: float


def ablation_distribution(
    *,
    families: Sequence[str] = ("constant", "uniform", "normal", "gamma", "lognormal", "empirical"),
    nt: int = 18,
    cal_nt: int = 16,
    tile: int = 180,
    machine_name: str = MACHINE_NAME,
    seed: int = 0,
) -> Tuple[List[FamilyOutcome], str]:
    """Prediction error of each kernel-model family on a QR problem."""
    machine = get_machine(machine_name)
    cal_trace = calibration_run(
        qr_program(cal_nt, tile), make_experiment_scheduler("quark"), machine, seed=seed
    )
    samples = collect_samples(cal_trace)
    outcomes: List[FamilyOutcome] = []
    for family in families:
        models = KernelModelSet.from_samples(samples, family=family)
        result = validate(
            qr_program(nt, tile),
            make_experiment_scheduler("quark"),
            machine,
            models,
            seed_real=seed + 1,
            seed_sim=seed + 2,
            warmup_penalty=machine.warmup_penalty,
        )
        outcomes.append(
            FamilyOutcome(
                family=family,
                error_percent=result.error_percent,
                order_similarity=result.comparison.order_similarity,
            )
        )
    table = format_table(
        ("family", "err %", "order tau"),
        [(o.family, o.error_percent, o.order_similarity) for o in outcomes],
        title=f"ABL-DIST: kernel-model family vs accuracy (QR nt={nt}, tile={tile})",
    )
    return outcomes, table


def ablation_warmup(
    *,
    nt: int = 18,
    cal_nt: int = 8,
    tile: int = 180,
    machine_name: str = MACHINE_NAME,
    seed: int = 0,
) -> Tuple[Dict[str, float], str]:
    """Effect of (not) excluding the per-thread warm-up outliers.

    Uses a deliberately small calibration problem so the 48 first-task
    penalties are a large sample fraction — the regime where the paper warns
    "these extreme outliers can drastically affect the model fitting".
    """
    machine = get_machine(machine_name)
    cal_trace = calibration_run(
        qr_program(cal_nt, tile), make_experiment_scheduler("quark"), machine, seed=seed
    )
    errors: Dict[str, float] = {}
    mean_shift: Dict[str, float] = {}
    for label, drop, trim in (("handled", True, True), ("ignored", False, False)):
        samples = collect_samples(cal_trace, drop_first_per_worker=drop)
        models = KernelModelSet.from_samples(samples, family="lognormal", trim_warmup=trim)
        result = validate(
            qr_program(nt, tile),
            make_experiment_scheduler("quark"),
            machine,
            models,
            seed_real=seed + 1,
            seed_sim=seed + 2,
            warmup_penalty=machine.warmup_penalty,
        )
        errors[label] = result.error_percent
        mean_shift[label] = models.mean_duration("DTSMQR") * 1e6
    table = format_table(
        ("warm-up outliers", "DTSMQR mean us", "err %"),
        [(k, mean_shift[k], errors[k]) for k in errors],
        title=f"ABL-WARMUP: calibration outlier handling (cal nt={cal_nt})",
    )
    return errors, table


def ablation_starpu_policy(
    *,
    nt: int = 20,
    tile: int = 200,
    machine_name: str = MACHINE_NAME,
    n_workers: int = 47,
    cal_nt: int = 16,
    seed: int = 0,
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Per-policy real makespans and the simulator's per-policy predictions.

    The useful property for autotuning (§VI-B) is not just low error — it is
    that the *ranking* of policies under simulation matches reality.
    """
    machine = get_machine(machine_name)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    program = cholesky_program(nt, tile)
    for policy in STARPU_POLICIES:
        sched = StarPUScheduler(n_workers, policy=policy)
        models, _ = calibrate(
            cholesky_program(cal_nt, tile),
            StarPUScheduler(n_workers, policy=policy),
            machine,
            seed=seed,
        )
        result = validate(
            program,
            sched,
            machine,
            models,
            seed_real=seed + 1,
            seed_sim=seed + 2,
            warmup_penalty=machine.warmup_penalty,
        )
        data[policy] = {
            "gflops_real": result.gflops_real,
            "gflops_sim": result.gflops_sim,
            "error_percent": result.error_percent,
        }
        rows.append((policy, result.gflops_real, result.gflops_sim, result.error_percent))
    table = format_table(
        ("policy", "real GF/s", "sim GF/s", "err %"),
        rows,
        title=f"ABL-POLICY: StarPU policies (Cholesky nt={nt}, tile={tile})",
    )
    return data, table


def ablation_quark_window(
    *,
    windows: Sequence[int] = (8, 32, 128, 512, 2048),
    nt: int = 20,
    tile: int = 200,
    machine_name: str = MACHINE_NAME,
    cal_nt: int = 16,
    seed: int = 0,
) -> Tuple[Dict[int, Dict[str, float]], str]:
    """QUARK task-window sweep: throttling costs and simulator tracking."""
    machine = get_machine(machine_name)
    models, _ = calibrate(
        cholesky_program(cal_nt, tile), QuarkScheduler(48), machine, seed=seed
    )
    program = cholesky_program(nt, tile)
    rows = []
    data: Dict[int, Dict[str, float]] = {}
    for window in windows:
        result = validate(
            program,
            QuarkScheduler(48, window=window),
            machine,
            models,
            seed_real=seed + 1,
            seed_sim=seed + 2,
            warmup_penalty=machine.warmup_penalty,
        )
        data[window] = {
            "gflops_real": result.gflops_real,
            "gflops_sim": result.gflops_sim,
            "error_percent": result.error_percent,
        }
        rows.append((window, result.gflops_real, result.gflops_sim, result.error_percent))
    table = format_table(
        ("window", "real GF/s", "sim GF/s", "err %"),
        rows,
        title=f"ABL-WINDOW: QUARK window size (Cholesky nt={nt}, tile={tile})",
    )
    return data, table


def ablation_ompss_successor(
    *,
    nt: int = 20,
    tile: int = 200,
    machine_name: str = MACHINE_NAME,
    n_workers: int = 47,
    cal_nt: int = 16,
    seed: int = 0,
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """OmpSs immediate-successor locality heuristic on/off (§IV-A1).

    Nanos++ lets the worker that releases a task's last dependence run it
    directly, skipping the central queue — a cache-locality optimisation.
    The ablation checks the real effect and that the simulator tracks it
    (the heuristic changes *placement*, which changes cache residency on
    the machine model).
    """
    machine = get_machine(machine_name)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for label, enabled in (("successor-bypass", True), ("central-queue", False)):
        sched_factory = lambda: OmpSsScheduler(n_workers, immediate_successor=enabled)
        models, _ = calibrate(
            cholesky_program(cal_nt, tile), sched_factory(), machine, seed=seed
        )
        result = validate(
            cholesky_program(nt, tile),
            sched_factory(),
            machine,
            models,
            seed_real=seed + 1,
            seed_sim=seed + 2,
            warmup_penalty=machine.warmup_penalty,
        )
        data[label] = {
            "gflops_real": result.gflops_real,
            "gflops_sim": result.gflops_sim,
            "error_percent": result.error_percent,
        }
        rows.append((label, result.gflops_real, result.gflops_sim, result.error_percent))
    table = format_table(
        ("configuration", "real GF/s", "sim GF/s", "err %"),
        rows,
        title=f"ABL-SUCCESSOR: OmpSs immediate-successor bypass "
        f"(Cholesky nt={nt}, tile={tile})",
    )
    return data, table
