"""Ablation experiments for the design choices DESIGN.md calls out.

* :func:`ablation_distribution` — how the kernel-model family affects
  prediction accuracy (the paper argues model randomness is "essential").
* :func:`ablation_warmup` — what happens to the fits, and downstream
  accuracy, when the MKL-style warm-up outliers are *not* excluded.
* :func:`ablation_starpu_policy` — real-run makespans under each StarPU
  policy, and whether the simulator tracks the differences.
* :func:`ablation_quark_window` — QUARK window-size sweep.

Every grid goes through :mod:`repro.runner`: pass ``jobs`` to fan the
points out over processes and ``cache`` (directory or
:class:`~repro.runner.ResultCache`) to reuse results across invocations.
Even without an explicit cache, the sweep's ephemeral cache means the
points of one ablation share their calibration run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..kernels.timing import KernelModelSet
from ..machine import collect_samples
from ..runner import ProgramSpec, RunSpec, SchedulerSpec, run_cached, sweep
from ..trace.compare import compare_traces
from ..trace.events import Trace
from .config import MACHINE_NAME
from .reporting import format_table

__all__ = [
    "ablation_distribution",
    "ablation_warmup",
    "ablation_starpu_policy",
    "ablation_quark_window",
    "ablation_ompss_successor",
]


@dataclass(frozen=True)
class FamilyOutcome:
    family: str
    error_percent: float
    order_similarity: float


def _point(real: Trace, sim: Trace, flops: float) -> Dict[str, float]:
    comparison = compare_traces(real, sim)
    return {
        "gflops_real": real.gflops(flops),
        "gflops_sim": sim.gflops(flops),
        "error_percent": comparison.abs_error_percent,
    }


def ablation_distribution(
    *,
    families: Sequence[str] = (
        "constant", "uniform", "normal", "gamma", "lognormal", "empirical",
    ),
    nt: int = 18,
    cal_nt: int = 16,
    tile: int = 180,
    machine_name: str = MACHINE_NAME,
    seed: int = 0,
    jobs: int = 1,
    cache=None,
) -> Tuple[List[FamilyOutcome], str]:
    """Prediction error of each kernel-model family on a QR problem."""
    program = ProgramSpec("qr", nt, tile)
    sched = SchedulerSpec("quark", 48)
    real_spec = RunSpec(
        program=program, scheduler=sched, machine=machine_name,
        seed=seed + 1, mode="real",
    )
    sim_specs = [
        RunSpec(
            program=program, scheduler=sched, machine=machine_name,
            seed=seed + 2, mode="simulated",
            cal_nt=cal_nt, cal_seed=seed, family=family,
        )
        for family in families
    ]
    outcome = sweep([real_spec, *sim_specs], jobs=jobs, cache=cache)
    real = outcome.results[0].load_trace()
    outcomes: List[FamilyOutcome] = []
    for family, result in zip(families, outcome.results[1:]):
        comparison = compare_traces(real, result.load_trace())
        outcomes.append(
            FamilyOutcome(
                family=family,
                error_percent=comparison.abs_error_percent,
                order_similarity=comparison.order_similarity,
            )
        )
    table = format_table(
        ("family", "err %", "order tau"),
        [(o.family, o.error_percent, o.order_similarity) for o in outcomes],
        title=f"ABL-DIST: kernel-model family vs accuracy (QR nt={nt}, tile={tile})",
    )
    return outcomes, table


def ablation_warmup(
    *,
    nt: int = 18,
    cal_nt: int = 8,
    tile: int = 180,
    machine_name: str = MACHINE_NAME,
    seed: int = 0,
    jobs: int = 1,
    cache=None,
) -> Tuple[Dict[str, float], str]:
    """Effect of (not) excluding the per-thread warm-up outliers.

    Uses a deliberately small calibration problem so the 48 first-task
    penalties are a large sample fraction — the regime where the paper warns
    "these extreme outliers can drastically affect the model fitting".
    """
    program = ProgramSpec("qr", nt, tile)
    sched = SchedulerSpec("quark", 48)
    real_spec = RunSpec(
        program=program, scheduler=sched, machine=machine_name,
        seed=seed + 1, mode="real",
    )
    configs = (("handled", True, True), ("ignored", False, False))
    sim_specs = [
        RunSpec(
            program=program, scheduler=sched, machine=machine_name,
            seed=seed + 2, mode="simulated",
            cal_nt=cal_nt, cal_seed=seed, family="lognormal",
            cal_drop_first=drop, cal_trim=trim,
        )
        for _, drop, trim in configs
    ]
    outcome = sweep([real_spec, *sim_specs], jobs=jobs, cache=cache)
    real = outcome.results[0].load_trace()

    # Refit locally (cheap) to report the mean-duration shift each handling
    # produces; the calibration trace itself is shared through the cache.
    cal_trace = run_cached(sim_specs[0].calibration_spec(), None).load_trace()
    errors: Dict[str, float] = {}
    mean_shift: Dict[str, float] = {}
    for (label, drop, trim), result in zip(configs, outcome.results[1:]):
        errors[label] = compare_traces(real, result.load_trace()).abs_error_percent
        samples = collect_samples(cal_trace, drop_first_per_worker=drop)
        models = KernelModelSet.from_samples(samples, family="lognormal", trim_warmup=trim)
        mean_shift[label] = models.mean_duration("DTSMQR") * 1e6
    table = format_table(
        ("warm-up outliers", "DTSMQR mean us", "err %"),
        [(k, mean_shift[k], errors[k]) for k in errors],
        title=f"ABL-WARMUP: calibration outlier handling (cal nt={cal_nt})",
    )
    return errors, table


def ablation_starpu_policy(
    *,
    nt: int = 20,
    tile: int = 200,
    machine_name: str = MACHINE_NAME,
    n_workers: int = 47,
    cal_nt: int = 16,
    seed: int = 0,
    jobs: int = 1,
    cache=None,
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Per-policy real makespans and the simulator's per-policy predictions.

    The useful property for autotuning (§VI-B) is not just low error — it is
    that the *ranking* of policies under simulation matches reality.
    """
    from ..schedulers.starpu import STARPU_POLICIES

    program = ProgramSpec("cholesky", nt, tile)
    specs: List[RunSpec] = []
    for policy in STARPU_POLICIES:
        sched = SchedulerSpec("starpu", n_workers, policy=policy)
        specs.append(
            RunSpec(
                program=program, scheduler=sched, machine=machine_name,
                seed=seed + 1, mode="real",
            )
        )
        specs.append(
            RunSpec(
                program=program, scheduler=sched, machine=machine_name,
                seed=seed + 2, mode="simulated", cal_nt=cal_nt, cal_seed=seed,
            )
        )
    outcome = sweep(specs, jobs=jobs, cache=cache)
    flops = program.build().total_flops
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for i, policy in enumerate(STARPU_POLICIES):
        real = outcome.results[2 * i].load_trace()
        sim = outcome.results[2 * i + 1].load_trace()
        data[policy] = _point(real, sim, flops)
        rows.append(
            (policy, data[policy]["gflops_real"], data[policy]["gflops_sim"],
             data[policy]["error_percent"])
        )
    table = format_table(
        ("policy", "real GF/s", "sim GF/s", "err %"),
        rows,
        title=f"ABL-POLICY: StarPU policies (Cholesky nt={nt}, tile={tile})",
    )
    return data, table


def ablation_quark_window(
    *,
    windows: Sequence[int] = (8, 32, 128, 512, 2048),
    nt: int = 20,
    tile: int = 200,
    machine_name: str = MACHINE_NAME,
    cal_nt: int = 16,
    seed: int = 0,
    jobs: int = 1,
    cache=None,
) -> Tuple[Dict[int, Dict[str, float]], str]:
    """QUARK task-window sweep: throttling costs and simulator tracking.

    Calibration uses the default-window scheduler (as the paper's one-off
    calibration would), shared across every window point via the cache.
    """
    program = ProgramSpec("cholesky", nt, tile)
    cal_sched = SchedulerSpec("quark", 48)
    specs: List[RunSpec] = []
    for window in windows:
        sched = SchedulerSpec("quark", 48, window=window)
        specs.append(
            RunSpec(
                program=program, scheduler=sched, machine=machine_name,
                seed=seed + 1, mode="real",
            )
        )
        specs.append(
            RunSpec(
                program=program, scheduler=sched, machine=machine_name,
                seed=seed + 2, mode="simulated",
                cal_nt=cal_nt, cal_seed=seed, cal_scheduler=cal_sched,
            )
        )
    outcome = sweep(specs, jobs=jobs, cache=cache)
    flops = program.build().total_flops
    rows = []
    data: Dict[int, Dict[str, float]] = {}
    for i, window in enumerate(windows):
        real = outcome.results[2 * i].load_trace()
        sim = outcome.results[2 * i + 1].load_trace()
        data[window] = _point(real, sim, flops)
        rows.append(
            (window, data[window]["gflops_real"], data[window]["gflops_sim"],
             data[window]["error_percent"])
        )
    table = format_table(
        ("window", "real GF/s", "sim GF/s", "err %"),
        rows,
        title=f"ABL-WINDOW: QUARK window size (Cholesky nt={nt}, tile={tile})",
    )
    return data, table


def ablation_ompss_successor(
    *,
    nt: int = 20,
    tile: int = 200,
    machine_name: str = MACHINE_NAME,
    n_workers: int = 47,
    cal_nt: int = 16,
    seed: int = 0,
    jobs: int = 1,
    cache=None,
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """OmpSs immediate-successor locality heuristic on/off (§IV-A1).

    Nanos++ lets the worker that releases a task's last dependence run it
    directly, skipping the central queue — a cache-locality optimisation.
    The ablation checks the real effect and that the simulator tracks it
    (the heuristic changes *placement*, which changes cache residency on
    the machine model).
    """
    program = ProgramSpec("cholesky", nt, tile)
    configs = (("successor-bypass", True), ("central-queue", False))
    specs: List[RunSpec] = []
    for _, enabled in configs:
        sched = SchedulerSpec("ompss", n_workers, immediate_successor=enabled)
        specs.append(
            RunSpec(
                program=program, scheduler=sched, machine=machine_name,
                seed=seed + 1, mode="real",
            )
        )
        specs.append(
            RunSpec(
                program=program, scheduler=sched, machine=machine_name,
                seed=seed + 2, mode="simulated", cal_nt=cal_nt, cal_seed=seed,
            )
        )
    outcome = sweep(specs, jobs=jobs, cache=cache)
    flops = program.build().total_flops
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for i, (label, _) in enumerate(configs):
        real = outcome.results[2 * i].load_trace()
        sim = outcome.results[2 * i + 1].load_trace()
        data[label] = _point(real, sim, flops)
        rows.append(
            (label, data[label]["gflops_real"], data[label]["gflops_sim"],
             data[label]["error_percent"])
        )
    table = format_table(
        ("configuration", "real GF/s", "sim GF/s", "err %"),
        rows,
        title=f"ABL-SUCCESSOR: OmpSs immediate-successor bypass "
        f"(Cholesky nt={nt}, tile={tile})",
    )
    return data, table
