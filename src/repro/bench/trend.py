"""Benchmark trend tracking: append-only history plus delta summaries.

The CI ``bench-trend`` step keeps a ``bench-history.jsonl`` file alive
across builds (restored from the actions cache, re-uploaded as an
artifact).  Each line is one benchmark run boiled down to the numbers a
trend needs — per-suite throughput plus just enough provenance (label,
timestamp, python/platform/cpu) to explain a jump.  The step then renders
a markdown per-suite delta table of the fresh report against the most
recent comparable history entry, which CI posts to the job summary.

History is deliberately forgiving on read: a corrupted or foreign line
(cache truncation mid-write, an older schema) is skipped, not fatal — a
trend report must never fail the build the way the regression *gate*
does.  Appends are schema-tagged so future format changes can coexist in
one file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .harness import BenchReport

__all__ = [
    "TREND_SCHEMA",
    "append_history",
    "load_history",
    "history_entry",
    "trend_table",
]

#: Schema tag stamped onto every history line.
TREND_SCHEMA = "repro.bench.trend/v1"

#: Environment keys worth carrying into the history (full env blocks are in
#: the BENCH_*.json artifacts; the trend only needs comparability hints).
_ENV_KEYS = ("python", "platform", "cpu_count")


def history_entry(
    report: BenchReport, *, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Boil ``report`` down to one JSONL history line (as a dict)."""
    return {
        "schema": TREND_SCHEMA,
        "time": time.time(),
        "label": report.label,
        "env": {k: report.env.get(k) for k in _ENV_KEYS},
        "meta": dict(meta or {}),
        "results": {
            r.name: {"ops_per_s": r.ops_per_s, "unit": r.unit}
            for r in report.results
        },
    }


def append_history(
    report: BenchReport,
    path: Union[str, Path],
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Append ``report`` to the JSONL history at ``path``; return the entry."""
    entry = history_entry(report, meta=meta)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read the JSONL history, skipping unreadable or foreign-schema lines."""
    path = Path(path)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict) and entry.get("schema") == TREND_SCHEMA:
            entries.append(entry)
    return entries


def _fmt(value: Optional[float]) -> str:
    return f"{value:,.0f}" if value is not None else "-"


def trend_table(
    history: List[Dict[str, Any]], report: BenchReport
) -> str:
    """Markdown per-suite delta table: fresh report vs the last history run.

    With an empty history the table still renders (previous column shows
    ``-``) so the very first CI run produces a readable summary.
    """
    previous: Dict[str, Any] = history[-1]["results"] if history else {}
    lines = [
        "| benchmark | previous | current | delta |",
        "|---|---:|---:|---:|",
    ]
    names = sorted(set(previous) | {r.name for r in report.results})
    fresh_by = report.by_name()
    for name in names:
        prev = previous.get(name, {}).get("ops_per_s")
        fresh = fresh_by.get(name)
        cur = fresh.ops_per_s if fresh is not None else None
        unit = fresh.unit if fresh is not None else previous.get(name, {}).get("unit", "")
        if prev and cur is not None:
            delta = f"{(cur / prev - 1.0):+.1%}"
        elif cur is not None:
            delta = "new"
        else:
            delta = "gone"
        lines.append(
            f"| {name} | {_fmt(prev)} | {_fmt(cur)} {unit} | {delta} |"
        )
    runs = len(history) + 1
    lines.append("")
    lines.append(f"_{runs} run(s) in history after this one._")
    return "\n".join(lines)
