"""The benchmark suite: micro hot-path timings and macro ``simulate()`` runs.

Micro benchmarks isolate the four paths the profiler names hottest in a
simulated run — the discrete-event dispatch loop, Task Execution Queue
push/pop traffic, kernel-duration sampling, and incremental hazard
analysis.  Macro benchmarks time end-to-end :func:`repro.core.simulator.simulate`
across program sizes (Cholesky/QR tile counts) and all three scheduler
models, reporting simulated tasks per second — the headline number of the
ROADMAP's "as fast as the hardware allows" goal.

All benchmarks are hermetic: kernel timing models are synthetic (fixed
parameters derived from the kernel name, no calibration run needed), every
run is seeded, and program construction happens outside the timed region.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms import cholesky_program, qr_program
from ..core.simulator import simulate
from ..core.task import Program
from ..core.teq import TaskExecutionQueue
from ..kernels.distributions import LognormalModel
from ..kernels.timing import KernelModelSet
from ..schedulers import make_scheduler
from ..schedulers.taskdep import HazardTracker
from .harness import BenchReport, BenchResult, run_benchmark

__all__ = [
    "BenchSpec",
    "synthetic_models",
    "default_suite",
    "run_suite",
]

#: Scheduler models every macro benchmark covers.
SCHEDULERS = ("quark", "starpu", "ompss")

#: (algorithm, nt) grid for macro benchmarks; the last entry is the largest
#: program — the one the CI gate and the README table headline.
MACRO_SIZES_QUICK = (("cholesky", 8), ("cholesky", 20))
MACRO_SIZES_FULL = (("cholesky", 8), ("qr", 10), ("cholesky", 20), ("cholesky", 28))

_GENERATORS = {"cholesky": cholesky_program, "qr": qr_program}


def synthetic_models(program: Program) -> KernelModelSet:
    """Deterministic per-kernel lognormal models (no calibration run).

    Parameters vary by kernel so draws exercise the per-kernel model lookup
    exactly like calibrated models do, while staying a pure function of the
    program — benchmark runs are comparable across machines and commits.
    """
    models = {
        kernel: LognormalModel(mu_log=-9.0 + 0.2 * i, sigma_log=0.08 + 0.01 * i)
        for i, kernel in enumerate(sorted(program.kernels()))
    }
    return KernelModelSet(models=models, family="lognormal")


def _independent_program(n_tasks: int) -> Program:
    """``n_tasks`` dependence-free tasks: pure dispatch-loop stress."""
    program = Program(f"independent-{n_tasks}")
    refs = [program.registry.alloc("T", 64, key=("T", i)) for i in range(n_tasks)]
    for ref in refs:
        program.add_task("DGEMM", [ref.write()], flops=1.0)
    return program


@dataclass
class BenchSpec:
    """A named, lazily-constructed benchmark.

    ``make()`` builds the workload outside the timed region and returns
    ``(fn, ops)`` where ``fn`` is the timed callable (may return an ops
    override) and ``ops`` the declared per-repetition operation count.
    """

    name: str
    group: str
    unit: str
    make: Callable[[], Tuple[Callable[[], Optional[int]], int]]
    repeats: int = 5
    params: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> BenchResult:
        fn, ops = self.make()
        return run_benchmark(
            self.name,
            fn,
            group=self.group,
            ops=ops,
            unit=self.unit,
            repeats=self.repeats,
            params=self.params,
        )


# -- micro benchmarks -------------------------------------------------------
def _make_teq_push_pop(n: int):
    def setup():
        # Completion times arrive out of order (reversed pairs) so the heap
        # actually reorders; pops always take the true front.
        ends = [float((i ^ 1) + 1) for i in range(n)]

        def fn() -> None:
            teq = TaskExecutionQueue()
            insert = teq.insert
            pop = teq.pop_front
            front = teq.front
            for tid, end in enumerate(ends):
                insert(tid, end)
            for _ in range(n):
                pop(front())

        return fn, 2 * n

    return setup


def _make_dispatch_loop(
    n_tasks: int,
    n_workers: int,
    engine_mode: str = "serialized",
    engine_backend: str = "object",
):
    def setup():
        program = _independent_program(n_tasks)
        models = KernelModelSet(
            models={"DGEMM": LognormalModel(mu_log=-9.0, sigma_log=0.05)},
            family="lognormal",
        )
        cells = None
        if engine_mode != "serialized":
            from ..core.cells import plan_cells
            from ..machine.topology import get_machine

            cells = plan_cells(get_machine("magny_cours_48"), n_workers)

        def fn() -> Optional[int]:
            from ..core.metrics import RunMetrics
            from ..core.simbackend import SimulationBackend
            from ..schedulers.array_engine import ArrayEngine
            from ..schedulers.engine import Engine

            metrics = RunMetrics()
            engine_cls = ArrayEngine if engine_backend == "array" else Engine
            engine = engine_cls(
                make_scheduler("quark", n_workers),
                program,
                SimulationBackend(models),
                seed=0,
                metrics=metrics,
                engine_mode=engine_mode,
                cells=cells,
            )
            engine.run()
            return metrics.events_processed

        return fn, 2 * n_tasks

    return setup


def _make_duration_sampling(n_draws: int):
    def setup():
        import numpy as np

        program = cholesky_program(6, 200)
        models = synthetic_models(program)
        kernels = [spec.kernel for spec in program]
        # Repeat the program's kernel sequence until n_draws draws.
        sequence = (kernels * (n_draws // len(kernels) + 1))[:n_draws]

        def fn() -> None:
            rng = np.random.default_rng(123)
            sampler = models.make_sampler(rng)
            draw = sampler.draw
            for kernel in sequence:
                draw(kernel)

        return fn, n_draws

    return setup


def _make_hazard_tracking(nt: int):
    def setup():
        program = cholesky_program(nt, 200)

        def fn() -> None:
            tracker = HazardTracker()
            add = tracker.add_task
            for spec in program:
                add(spec)

        return fn, len(program)

    return setup


def _make_calib_fit(n_samples: int):
    def setup():
        import numpy as np

        from ..calib import fit_from_samples

        # Per-kernel sample sets with distinct shapes so every candidate
        # family (incl. the EM mixture and the KDE) does real work.
        rng = np.random.default_rng(42)
        half = n_samples // 2
        samples = {
            "DGEMM": np.exp(rng.normal(-6.0, 0.1, n_samples)),  # lognormal
            "DSYRK": np.concatenate(  # bimodal -> mixture/KDE path
                [
                    np.exp(rng.normal(-7.0, 0.08, half)),
                    np.exp(rng.normal(-5.5, 0.08, n_samples - half)),
                ]
            ),
            "DTRSM": rng.gamma(30.0, 1e-4, n_samples),  # gamma-ish
            "DPOTRF": rng.normal(2e-3, 1e-4, n_samples),  # normal
        }

        def fn() -> None:
            fit_from_samples(samples)

        return fn, len(samples)

    return setup


# -- macro benchmarks -------------------------------------------------------
def _make_simulate(
    algorithm: str,
    nt: int,
    scheduler: str,
    n_workers: int,
    engine_mode: str = "serialized",
):
    def setup():
        program = _GENERATORS[algorithm](nt, 200)
        models = synthetic_models(program)
        # A partition needs a topology; the serialized default passes none
        # so the timed region is byte-for-byte the historical benchmark.
        machine = None if engine_mode == "serialized" else "magny_cours_48"

        def fn() -> None:
            sched = make_scheduler(scheduler, n_workers)
            simulate(
                program,
                sched,
                models,
                seed=1234,
                engine_mode=engine_mode,
                machine=machine,
            )

        return fn, len(program)

    return setup


def default_suite(
    *,
    quick: bool = False,
    workers: int = 48,
    engine_mode: str = "serialized",
    engine_backend: str = "object",
) -> List[BenchSpec]:
    """The standard suite: the micro benchmarks plus the macro grid.

    ``engine_mode`` selects the event-engine mode for the *macro* benchmarks
    (``repro bench --engine-mode``); the micro suite always carries a
    serialized, a multicell, and an array-backend dispatch-loop entry so the
    three loops can be compared inside a single report.  ``engine_backend``
    (``repro bench --engine-backend``) likewise applies to the plain
    ``micro/dispatch-loop`` entry only — ``micro/dispatch-loop-array`` pins
    the array core so it is covered regardless of the flag.
    """
    micro_scale = 1 if quick else 4
    macro_repeats = 3 if quick else 5
    specs = [
        BenchSpec(
            name="micro/teq-push-pop",
            group="micro",
            unit="ops/s",
            make=_make_teq_push_pop(20_000 * micro_scale),
            params={"n": 20_000 * micro_scale},
        ),
        BenchSpec(
            name="micro/dispatch-loop",
            group="micro",
            unit="events/s",
            make=_make_dispatch_loop(
                4_000 * micro_scale, 16, engine_backend=engine_backend
            ),
            params={
                "n_tasks": 4_000 * micro_scale,
                "n_workers": 16,
                "engine_backend": engine_backend,
            },
        ),
        BenchSpec(
            name="micro/dispatch-loop-array",
            group="micro",
            unit="events/s",
            make=_make_dispatch_loop(4_000 * micro_scale, 16, engine_backend="array"),
            params={
                "n_tasks": 4_000 * micro_scale,
                "n_workers": 16,
                "engine_backend": "array",
            },
        ),
        BenchSpec(
            name="micro/dispatch-loop-multicell",
            group="micro",
            unit="events/s",
            make=_make_dispatch_loop(4_000 * micro_scale, 16, engine_mode="multicell"),
            params={
                "n_tasks": 4_000 * micro_scale,
                "n_workers": 16,
                "engine_mode": "multicell",
                "machine": "magny_cours_48",
            },
        ),
        BenchSpec(
            name="micro/duration-sampling",
            group="micro",
            unit="draws/s",
            make=_make_duration_sampling(50_000 * micro_scale),
            params={"n_draws": 50_000 * micro_scale},
        ),
        BenchSpec(
            name="micro/calib-fit",
            group="micro",
            unit="fits/s",
            make=_make_calib_fit(100 * micro_scale),
            repeats=3,
            params={"n_samples": 100 * micro_scale, "n_kernels": 4},
        ),
        BenchSpec(
            name="micro/hazard-tracking",
            group="micro",
            unit="tasks/s",
            make=_make_hazard_tracking(16 if quick else 24),
            params={"nt": 16 if quick else 24},
        ),
    ]
    sizes = MACRO_SIZES_QUICK if quick else MACRO_SIZES_FULL
    for algorithm, nt in sizes:
        for scheduler in SCHEDULERS:
            specs.append(
                BenchSpec(
                    name=f"macro/simulate/{algorithm}-nt{nt}/{scheduler}",
                    group="macro",
                    unit="tasks/s",
                    make=_make_simulate(
                        algorithm, nt, scheduler, workers, engine_mode=engine_mode
                    ),
                    repeats=macro_repeats,
                    params={
                        "algorithm": algorithm,
                        "nt": nt,
                        "scheduler": scheduler,
                        "n_workers": workers,
                        "engine_mode": engine_mode,
                    },
                )
            )
    return specs


def run_suite(
    specs: Sequence[BenchSpec],
    *,
    only: Optional[Sequence[str]] = None,
    label: str = "",
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Run ``specs`` (optionally filtered by ``only`` glob patterns)."""
    selected = [
        s
        for s in specs
        if only is None or any(fnmatch.fnmatch(s.name, pat) for pat in only)
    ]
    if not selected:
        raise ValueError(
            f"no benchmarks match {list(only or [])!r}; "
            f"available: {[s.name for s in specs]}"
        )
    report = BenchReport(label=label)
    for spec in selected:
        if progress is not None:
            progress(f"bench: {spec.name}")
        report.add(spec.run())
    return report
