"""Baseline comparison: the CI performance-regression gate.

``repro bench --compare benchmarks/baseline_bench.json`` re-runs the suite
and diffs throughput against the committed baseline.  A benchmark regresses
when its fresh throughput falls below ``(1 - max_regression)`` times the
baseline; the gate's exit status is the number of regressed benchmarks
(clamped by the CLI to 1), so one slow hot path fails the PR.

New benchmarks (fresh-only) never fail the gate — a new benchmark should be
a review conversation, not a red build — but baseline benchmarks *missing*
from the fresh report do fail it: a truncated or crashed bench run must not
read as "no regressions".  Gates over a deliberately filtered run pass the
same ``--only`` patterns here so out-of-scope baseline suites are not
counted as missing.  The baseline's environment block is echoed
next to the fresh one because cross-machine throughput ratios are noise:
refresh the baseline (``repro bench --out benchmarks/baseline_bench.json``)
whenever the reference machine changes.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .harness import BenchReport

__all__ = ["BenchDelta", "BenchGateResult", "compare_reports"]


@dataclass
class BenchDelta:
    """One benchmark's baseline-vs-fresh throughput comparison."""

    name: str
    baseline_ops_per_s: Optional[float]
    fresh_ops_per_s: Optional[float]
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """fresh / baseline throughput; ``None`` when either side is missing."""
        if not self.baseline_ops_per_s or self.fresh_ops_per_s is None:
            return None
        return self.fresh_ops_per_s / self.baseline_ops_per_s

    @property
    def status(self) -> str:
        if self.baseline_ops_per_s is None:
            return "new"
        if self.fresh_ops_per_s is None:
            return "missing"
        return "compared"


@dataclass
class BenchGateResult:
    """Outcome of one gate evaluation."""

    deltas: List[BenchDelta]
    max_regression: float

    @property
    def regressions(self) -> List[BenchDelta]:
        floor = 1.0 - self.max_regression
        return [d for d in self.deltas if d.ratio is not None and d.ratio < floor]

    @property
    def missing(self) -> List[BenchDelta]:
        """Baseline benchmarks absent from the fresh report (gate failures)."""
        return [d for d in self.deltas if d.status == "missing"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def table(self) -> str:
        header = (
            f"{'benchmark':<44s} {'baseline':>14s} {'fresh':>14s} "
            f"{'ratio':>7s}  status"
        )
        lines = [header, "-" * len(header)]
        floor = 1.0 - self.max_regression
        for d in self.deltas:
            base = f"{d.baseline_ops_per_s:,.0f}" if d.baseline_ops_per_s else "-"
            fresh = f"{d.fresh_ops_per_s:,.0f}" if d.fresh_ops_per_s is not None else "-"
            if d.ratio is None:
                ratio = "-"
                status = "MISSING" if d.status == "missing" else d.status
            else:
                ratio = f"{d.ratio:.2f}x"
                status = "REGRESSED" if d.ratio < floor else "ok"
            lines.append(f"{d.name:<44s} {base:>14s} {fresh:>14s} {ratio:>7s}  {status}")
        lines.append(
            f"gate: {len(self.regressions)} regression(s) beyond "
            f"{self.max_regression:.0%} of {len(self.deltas)} benchmark(s)"
        )
        if self.missing:
            names = ", ".join(d.name for d in self.missing)
            lines.append(
                f"gate: {len(self.missing)} baseline benchmark(s) missing from "
                f"the fresh report (truncated run?): {names}"
            )
        return "\n".join(lines)


def compare_reports(
    baseline: BenchReport,
    fresh: BenchReport,
    *,
    max_regression: float = 0.30,
    only: Optional[Sequence[str]] = None,
) -> BenchGateResult:
    """Diff ``fresh`` against ``baseline`` benchmark-by-benchmark.

    ``only`` takes the same glob patterns as the suite filter; baseline
    benchmarks outside the patterns are dropped from the diff so a scoped
    ``repro bench --only ... --compare ...`` run does not report every
    unselected suite as missing.
    """
    if not 0.0 < max_regression < 1.0:
        raise ValueError("max_regression must be in (0, 1)")
    base_by: Dict[str, object] = baseline.by_name()
    fresh_by: Dict[str, object] = fresh.by_name()
    if only is not None:
        base_by = {
            name: r
            for name, r in base_by.items()
            if any(fnmatch.fnmatch(name, pat) for pat in only)
        }
    deltas: List[BenchDelta] = []
    for name in sorted(set(base_by) | set(fresh_by)):
        b = base_by.get(name)
        f = fresh_by.get(name)
        deltas.append(
            BenchDelta(
                name=name,
                baseline_ops_per_s=b.ops_per_s if b is not None else None,
                fresh_ops_per_s=f.ops_per_s if f is not None else None,
                unit=(f or b).unit,
            )
        )
    return BenchGateResult(deltas=deltas, max_regression=max_regression)
