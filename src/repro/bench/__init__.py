"""Benchmark subsystem: hot-path micro/macro timings and the CI perf gate.

* :mod:`repro.bench.harness` — timing machinery and the schema-tagged
  :class:`BenchReport` document (``BENCH_*.json``);
* :mod:`repro.bench.suites` — the standard micro (TEQ, dispatch loop,
  duration sampling, hazard tracking) and macro (end-to-end ``simulate()``)
  benchmark suite;
* :mod:`repro.bench.compare` — baseline comparison backing the CI
  ``bench-gate`` job;
* :mod:`repro.bench.trend` — append-only run history and the markdown
  delta table behind the CI ``bench-trend`` step.
"""

from .compare import BenchDelta, BenchGateResult, compare_reports
from .harness import BENCH_SCHEMA, BenchReport, BenchResult, environment_metadata, run_benchmark
from .suites import BenchSpec, default_suite, run_suite, synthetic_models
from .trend import TREND_SCHEMA, append_history, history_entry, load_history, trend_table

__all__ = [
    "BENCH_SCHEMA",
    "TREND_SCHEMA",
    "append_history",
    "history_entry",
    "load_history",
    "trend_table",
    "BenchReport",
    "BenchResult",
    "BenchSpec",
    "BenchDelta",
    "BenchGateResult",
    "compare_reports",
    "default_suite",
    "environment_metadata",
    "run_benchmark",
    "run_suite",
    "synthetic_models",
]
