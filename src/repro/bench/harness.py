"""Benchmark harness: timed runs, machine-readable reports, baselines.

The subsystem answers the question the ROADMAP keeps asking — *how fast is
the simulation core, in simulated tasks per second?* — with the same rigour
the trace layer applies to correctness:

* every benchmark is a named callable timed over ``repeats`` repetitions
  (best-of, after a warm-up pass, so one scheduler hiccup or allocator
  stall cannot poison the number);
* results carry their operation count and unit, so throughput is always
  ``ops / best wall time`` and comparable across commits;
* a :class:`BenchReport` bundles the results with environment metadata
  (interpreter, platform, NumPy/SciPy versions, CPU count) under the
  :data:`BENCH_SCHEMA` tag, mirroring the ``RunMetrics`` document
  discipline, and serialises to the ``BENCH_*.json`` artifacts CI uploads.

The report format is the contract between ``repro bench`` and the CI
``bench-gate`` job: the gate re-runs the suite and calls
:func:`repro.bench.compare.compare_reports` against the committed baseline.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "BenchReport",
    "environment_metadata",
    "run_benchmark",
]

#: Schema tag stamped into every exported benchmark document.
BENCH_SCHEMA = "repro.bench/v1"


def environment_metadata() -> Dict[str, Any]:
    """Provenance of a benchmark run: enough to judge comparability.

    Two reports are only meaningfully comparable when this block matches;
    the CI gate therefore records both sides' environments in its output.
    """
    import numpy
    import scipy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "argv": list(sys.argv),
    }


@dataclass
class BenchResult:
    """One benchmark's outcome.

    ``ops`` is the number of semantic operations one repetition performs
    (tasks simulated, TEQ push+pop pairs, duration draws, ...) and ``unit``
    names them; ``ops_per_s`` is ``ops / wall_s`` where ``wall_s`` is the
    *best* repetition — the least-noise estimate of the code's speed.
    """

    name: str
    group: str  # "micro" | "macro"
    ops: int
    unit: str
    repeats: int
    wall_s: float  # best repetition
    ops_per_s: float
    mean_wall_s: float
    all_wall_s: List[float] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchResult":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def summary(self) -> str:
        return (
            f"{self.name:<44s} {self.ops_per_s:>14,.0f} {self.unit:<10s} "
            f"best {self.wall_s * 1e3:9.2f}ms  x{self.repeats}"
        )


def run_benchmark(
    name: str,
    fn: Callable[[], Optional[int]],
    *,
    group: str,
    ops: int,
    unit: str,
    repeats: int = 5,
    warmup: int = 1,
    params: Optional[Dict[str, Any]] = None,
) -> BenchResult:
    """Time ``fn`` over ``warmup + repeats`` calls and report throughput.

    ``fn`` may return an operation count to override ``ops`` (useful when
    the workload size is only known after running, e.g. events processed);
    returning ``None`` keeps the declared count.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if ops < 1:
        raise ValueError("ops must be at least 1")
    for _ in range(warmup):
        fn()
    walls: List[float] = []
    measured_ops = ops
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        walls.append(time.perf_counter() - t0)
        if out is not None:
            measured_ops = int(out)
    best = min(walls)
    return BenchResult(
        name=name,
        group=group,
        ops=measured_ops,
        unit=unit,
        repeats=repeats,
        wall_s=best,
        ops_per_s=measured_ops / best if best > 0 else float("inf"),
        mean_wall_s=sum(walls) / len(walls),
        all_wall_s=walls,
        params=dict(params or {}),
    )


@dataclass
class BenchReport:
    """A full benchmark run: results plus environment, schema-tagged."""

    results: List[BenchResult] = field(default_factory=list)
    env: Dict[str, Any] = field(default_factory=environment_metadata)
    label: str = ""

    def add(self, result: BenchResult) -> BenchResult:
        self.results.append(result)
        return result

    def by_name(self) -> Dict[str, BenchResult]:
        return {r.name: r for r in self.results}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "label": self.label,
            "env": self.env,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchReport":
        """Parse a document produced by :meth:`to_dict`.

        A missing or foreign schema tag raises ``ValueError`` so that a
        sweep-metrics or RunMetrics document fed to the comparison gate
        fails loudly instead of comparing junk.
        """
        tag = data.get("schema")
        if tag != BENCH_SCHEMA:
            raise ValueError(
                f"not a benchmark report: schema tag {tag!r} (expected {BENCH_SCHEMA!r})"
            )
        return cls(
            results=[BenchResult.from_dict(r) for r in data.get("results", [])],
            env=dict(data.get("env", {})),
            label=str(data.get("label", "")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def read_json(cls, path: Union[str, Path]) -> "BenchReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def table(self) -> str:
        lines = [f"{'benchmark':<44s} {'throughput':>14s} {'unit':<10s} {'best':>11s}"]
        lines.append("-" * len(lines[0]))
        for r in self.results:
            lines.append(r.summary())
        return "\n".join(lines)
