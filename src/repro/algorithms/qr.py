"""Tile QR factorization (paper Algorithm 2, Fig. 2).

:func:`qr_program` elaborates the serial task stream of the tile QR
factorization — the exact loop nest and access annotations of the paper's
Fig. 2 pseudocode:

.. code-block:: none

    for k = 0 .. NT-1
        geqrt(A[k][k]^rw, T[k][k]^w)
        for n = k+1 .. NT-1
            unmqr(A[k][k]^r, T[k][k]^r, A[k][n]^rw)
        for m = k+1 .. NT-1
            tsqrt(A[k][k]^rw, A[m][k]^rw, T[m][k]^w)
            for n = k+1 .. NT-1
                tsmqr(A[k][n]^rw, A[m][n]^rw, A[m][k]^r, T[m][k]^r)

As in the real runtimes, each tile is a single dependence unit (the paper's
``low``/``up`` half-tile annotations are carried in the task labels but do
not split the hazard).  For ``NT = 3`` the stream is precisely the fourteen
tasks F0..F13 listed in Fig. 2 — a unit test pins that correspondence.

:func:`execute_qr` performs the factorization numerically in serial order;
after it returns, the upper tiles of ``A`` hold ``R``, the lower tiles hold
the structured Householder blocks ``V2``, and the ``T`` store holds the
compact-WY factors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.task import DataRegistry, Program
from ..kernels import qr as qrk
from ..kernels.flops import kernel_flops
from .tiled_matrix import TiledMatrix, TileStore

__all__ = ["qr_program", "execute_qr", "extract_r", "QR_KERNELS"]

#: Kernel classes emitted by the generator.
QR_KERNELS = ("DGEQRT", "DORMQR", "DTSQRT", "DTSMQR")


def qr_program(
    nt: int,
    nb: int,
    *,
    registry: Optional[DataRegistry] = None,
    name: str = "A",
    panel_width: int = 1,
) -> Program:
    """Serial task stream of the tile QR factorization of ``nt x nt`` tiles.

    ``panel_width`` gives the DGEQRT/DTSQRT panel kernels a multi-threaded
    width (§VII future-work extension); default 1 matches the paper.
    """
    if nt <= 0:
        raise ValueError("nt must be positive")
    if nb <= 0:
        raise ValueError("nb must be positive")
    if panel_width < 1:
        raise ValueError("panel_width must be at least 1")
    prog = Program(
        f"qr[nt={nt},nb={nb}]",
        registry=registry,
        meta={"algorithm": "qr", "nt": nt, "nb": nb, "n": nt * nb},
    )
    reg = prog.registry
    tile_bytes = nb * nb * 8

    def a(i: int, j: int):
        return reg.alloc(f"{name}[{i},{j}]", tile_bytes, key=(name, i, j))

    def t(i: int, j: int):
        return reg.alloc(f"T[{i},{j}]", tile_bytes, key=("T", i, j))

    for k in range(nt):
        geqrt = prog.add_task(
            "DGEQRT",
            [a(k, k).rw(), t(k, k).write()],
            flops=kernel_flops("DGEQRT", nb),
            priority=4 * (nt - k),
            label=f"geqrt k={k}",
            k=k,
        )
        geqrt.width = panel_width
        for n in range(k + 1, nt):
            prog.add_task(
                "DORMQR",
                [a(k, k).read(), t(k, k).read(), a(k, n).rw()],
                flops=kernel_flops("DORMQR", nb),
                priority=2 * (nt - k),
                label=f"unmqr k={k} n={n}",
                k=k,
                n=n,
            )
        for m in range(k + 1, nt):
            tsqrt = prog.add_task(
                "DTSQRT",
                [a(k, k).rw(), a(m, k).rw(), t(m, k).write()],
                flops=kernel_flops("DTSQRT", nb),
                priority=3 * (nt - k),
                label=f"tsqrt k={k} m={m}",
                k=k,
                m=m,
            )
            tsqrt.width = panel_width
            for n in range(k + 1, nt):
                prog.add_task(
                    "DTSMQR",
                    [a(k, n).rw(), a(m, n).rw(), a(m, k).read(), t(m, k).read()],
                    flops=kernel_flops("DTSMQR", nb),
                    priority=0,
                    label=f"tsmqr k={k} m={m} n={n}",
                    k=k,
                    m=m,
                    n=n,
                )
    return prog


def _t_store(matrix: TiledMatrix) -> TileStore:
    """The tile store of ``matrix``, with ``T`` workspace tiles on demand."""
    return matrix.store


def execute_qr(matrix: TiledMatrix) -> TiledMatrix:
    """Factorize ``matrix`` in place, serially, tile by tile."""
    nt, nb = matrix.nt, matrix.nb
    store = _t_store(matrix)
    for k in range(nt):
        tkk = store.ensure(("T", k, k), (nb, nb))
        qrk.geqrt(matrix.tile(k, k), tkk)
        for n in range(k + 1, nt):
            qrk.ormqr(matrix.tile(k, k), tkk, matrix.tile(k, n))
        for m in range(k + 1, nt):
            tmk = store.ensure(("T", m, k), (nb, nb))
            qrk.tsqrt(matrix.tile(k, k), matrix.tile(m, k), tmk)
            for n in range(k + 1, nt):
                qrk.tsmqr(
                    matrix.tile(k, n),
                    matrix.tile(m, n),
                    matrix.tile(m, k),
                    tmk,
                )
    return matrix


def extract_r(matrix: TiledMatrix) -> np.ndarray:
    """Dense upper-triangular ``R`` from a factorized :class:`TiledMatrix`.

    Off-diagonal upper tiles are taken whole; diagonal tiles contribute their
    upper triangle (the part not occupied by reflector vectors); lower tiles
    are zero in ``R``.
    """
    n, nb, nt = matrix.n, matrix.nb, matrix.nt
    out = np.zeros((n, n))
    for i in range(nt):
        out[i * nb : (i + 1) * nb, i * nb : (i + 1) * nb] = np.triu(matrix.tile(i, i))
        for j in range(i + 1, nt):
            out[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb] = matrix.tile(i, j)
    return out


def expected_task_count(nt: int) -> int:
    """Closed-form task count of the tile QR stream.

    ``nt`` GEQRT, ``nt(nt-1)/2`` each of ORMQR and TSQRT, and
    ``sum_k (nt-1-k)^2`` TSMQR.
    """
    tsmqr = sum((nt - 1 - k) ** 2 for k in range(nt))
    return nt + nt * (nt - 1) + tsmqr
