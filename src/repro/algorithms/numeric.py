"""Numeric dispatch: run task streams against real NumPy tiles.

Every kernel name emitted by the algorithm generators maps here to a body
that takes the task's data tiles *in access-list order* (``VALUE`` accesses
excluded).  This uniform convention is what lets the threaded ``execute``
runtime dispatch any task with one line:

.. code-block:: python

    NUMERIC_BODIES[task.kernel](*(store[a.ref.key] for a in task.accesses))

:func:`run_program_serial` executes a whole program in submission order — the
reference semantics that every dependence-respecting parallel execution must
reproduce (a property the test suite checks with Hypothesis).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..core.task import AccessMode, Program, TaskSpec
from ..kernels import blas
from ..kernels import qr as qrk
from .tiled_matrix import TileStore

__all__ = ["NUMERIC_BODIES", "resolve_tiles", "run_task", "run_program_serial"]

#: kernel name -> body(*tiles); tiles arrive in access-list order.
NUMERIC_BODIES: Dict[str, Callable[..., object]] = {
    # Cholesky (Algorithm 1)
    "DPOTRF": blas.potrf,
    "DTRSM": blas.trsm_rlt,
    "DSYRK": blas.syrk,
    "DGEMM": blas.gemm_nt,
    # QR (Algorithm 2)
    "DGEQRT": qrk.geqrt,
    "DORMQR": qrk.ormqr,
    "DTSQRT": qrk.tsqrt,
    "DTSMQR": qrk.tsmqr,
    # LU (extension)
    "DGETRF_NOPIV": blas.getrf_nopiv,
    "DTRSM_LLN": blas.trsm_lln_unit,
    "DTRSM_RUN": blas.trsm_run,
    "DGEMM_NN": blas.gemm_nn,
}


def resolve_tiles(task: TaskSpec, store: TileStore, nb: int) -> Tuple[np.ndarray, ...]:
    """Resolve a task's data accesses to NumPy tiles, creating write-only
    workspace tiles (e.g. QR ``T`` factors) on first touch."""
    tiles = []
    for acc in task.accesses:
        if acc.mode is AccessMode.VALUE:
            continue
        key = acc.ref.key
        if key not in store:
            if acc.mode.reads:
                raise KeyError(f"task {task!r} reads unmaterialised tile {key!r}")
            store.ensure(key, (nb, nb))
        tiles.append(store[key])
    return tuple(tiles)


def run_task(task: TaskSpec, store: TileStore, nb: int) -> None:
    """Execute one task's numeric body against ``store``."""
    try:
        body = NUMERIC_BODIES[task.kernel]
    except KeyError:
        raise KeyError(
            f"no numeric body for kernel {task.kernel!r}; "
            f"known kernels: {sorted(NUMERIC_BODIES)}"
        ) from None
    body(*resolve_tiles(task, store, nb))


def run_program_serial(program: Program, store: TileStore) -> TileStore:
    """Execute ``program`` numerically in submission order (the reference)."""
    nb = int(program.meta.get("nb", 0))
    if nb <= 0:
        raise ValueError("program.meta['nb'] must record the tile size")
    for task in program:
        run_task(task, store, nb)
    return store
