"""Tile Cholesky factorization (paper Algorithm 1).

:func:`cholesky_program` elaborates the serial task stream of the tile
Cholesky factorization of an ``nt x nt`` tile matrix — exactly the loop nest
of Algorithm 1 with read/write-annotated data parameters.  The stream is what
gets submitted to a superscalar scheduler; hazard analysis of the annotations
yields the Cholesky DAG.

:func:`execute_cholesky` runs the same stream numerically (serially, in
submission order) against a :class:`~repro.algorithms.tiled_matrix.TiledMatrix`
— the reference the threaded parallel runtime is tested against.
"""

from __future__ import annotations

from typing import Optional

from ..core.task import DataRegistry, Program
from ..kernels import blas
from ..kernels.flops import kernel_flops
from .tiled_matrix import TiledMatrix

__all__ = ["cholesky_program", "execute_cholesky", "CHOLESKY_KERNELS"]

#: Kernel classes emitted by the generator, in panel-to-update order.
CHOLESKY_KERNELS = ("DPOTRF", "DTRSM", "DSYRK", "DGEMM")


def cholesky_program(
    nt: int,
    nb: int,
    *,
    registry: Optional[DataRegistry] = None,
    name: str = "A",
    panel_width: int = 1,
) -> Program:
    """Serial task stream of the tile Cholesky factorization.

    Parameters
    ----------
    nt:
        Number of tile rows/columns (``NT`` in Algorithm 1).
    nb:
        Tile order, used for flop counts and data sizes.
    registry:
        Optional shared :class:`DataRegistry`; a fresh one is created when
        omitted.
    name:
        Logical matrix name for the tile refs.

    panel_width:
        Width (in cores) of the DPOTRF panel tasks — the multi-threaded
        task extension the paper lists as future work (§VII).  Default 1
        reproduces the paper's single-threaded tasks.

    Panel tasks receive higher priority than trailing updates (decreasing
    with the iteration ``k``), matching the priority hints PLASMA passes to
    QUARK to keep the critical path moving.
    """
    if nt <= 0:
        raise ValueError("nt must be positive")
    if nb <= 0:
        raise ValueError("nb must be positive")
    if panel_width < 1:
        raise ValueError("panel_width must be at least 1")
    prog = Program(
        f"cholesky[nt={nt},nb={nb}]",
        registry=registry,
        meta={"algorithm": "cholesky", "nt": nt, "nb": nb, "n": nt * nb},
    )
    reg = prog.registry
    tile_bytes = nb * nb * 8

    def a(i: int, j: int):
        return reg.alloc(f"{name}[{i},{j}]", tile_bytes, key=(name, i, j))

    for k in range(nt):
        potrf = prog.add_task(
            "DPOTRF",
            [a(k, k).rw()],
            flops=kernel_flops("DPOTRF", nb),
            priority=3 * (nt - k),
            label=f"potrf k={k}",
            k=k,
        )
        potrf.width = panel_width
        for i in range(k + 1, nt):
            prog.add_task(
                "DTRSM",
                [a(k, k).read(), a(i, k).rw()],
                flops=kernel_flops("DTRSM", nb),
                priority=2 * (nt - k),
                label=f"trsm k={k} i={i}",
                k=k,
                i=i,
            )
            prog.add_task(
                "DSYRK",
                [a(i, i).rw(), a(i, k).read()],
                flops=kernel_flops("DSYRK", nb),
                priority=nt - k,
                label=f"syrk k={k} i={i}",
                k=k,
                i=i,
            )
        for i in range(k + 2, nt):
            for j in range(k + 1, i):
                prog.add_task(
                    "DGEMM",
                    [a(i, j).rw(), a(i, k).read(), a(j, k).read()],
                    flops=kernel_flops("DGEMM", nb),
                    priority=0,
                    label=f"gemm k={k} i={i} j={j}",
                    k=k,
                    i=i,
                    j=j,
                )
    return prog


def execute_cholesky(matrix: TiledMatrix) -> TiledMatrix:
    """Factorize ``matrix`` in place, serially, tile by tile.

    After the call the lower-triangular tiles hold ``L`` with
    ``A = L L^T``.  Strictly upper tiles are left untouched (LAPACK
    convention: only the lower triangle is referenced).
    """
    nt = matrix.nt
    for k in range(nt):
        blas.potrf(matrix.tile(k, k))
        for i in range(k + 1, nt):
            blas.trsm_rlt(matrix.tile(k, k), matrix.tile(i, k))
            blas.syrk(matrix.tile(i, i), matrix.tile(i, k))
        for i in range(k + 2, nt):
            for j in range(k + 1, i):
                blas.gemm_nt(matrix.tile(i, j), matrix.tile(i, k), matrix.tile(j, k))
    return matrix


def expected_task_count(nt: int) -> int:
    """Closed-form task count of the tile Cholesky stream.

    ``nt`` POTRF, ``nt(nt-1)/2`` each of TRSM and SYRK, and
    ``nt(nt-1)(nt-2)/6`` GEMM.
    """
    return nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) // 6
