"""Tile LU factorization without pivoting (extension algorithm).

The paper validates on Cholesky and QR; LU with partial pivoting is cited as
further QUARK work [27].  We include the unpivoted tile LU — the standard
third member of the PLASMA one-sided factorization family — both as an extra
workload for the simulator and as a demonstration that the task-stream /
scheduler / simulator pipeline is algorithm-agnostic.

The loop nest mirrors Algorithm 1's structure with a full (square) trailing
update:

.. code-block:: none

    for k = 0 .. NT-1
        getrf_nopiv(A[k][k]^rw)
        for j = k+1 .. NT-1:  trsm_lln(A[k][k]^r, A[k][j]^rw)   # row panel
        for i = k+1 .. NT-1:  trsm_run(A[k][k]^r, A[i][k]^rw)   # column panel
        for i,j = k+1 .. NT-1: gemm_nn(A[i][j]^rw, A[i][k]^r, A[k][j]^r)

Unpivoted LU requires a matrix for which all leading principal minors are
nonsingular; tests use diagonally dominant matrices.
"""

from __future__ import annotations

from typing import Optional

from ..core.task import DataRegistry, Program
from ..kernels import blas
from ..kernels.flops import kernel_flops
from .tiled_matrix import TiledMatrix

__all__ = ["lu_program", "execute_lu", "LU_KERNELS"]

#: Kernel classes emitted by the generator.  The two TRSM flavours are kept
#: distinct because their memory-access patterns (and hence timing models)
#: differ.
LU_KERNELS = ("DGETRF_NOPIV", "DTRSM_LLN", "DTRSM_RUN", "DGEMM_NN")


def lu_program(
    nt: int,
    nb: int,
    *,
    registry: Optional[DataRegistry] = None,
    name: str = "A",
) -> Program:
    """Serial task stream of the unpivoted tile LU factorization."""
    if nt <= 0:
        raise ValueError("nt must be positive")
    if nb <= 0:
        raise ValueError("nb must be positive")
    prog = Program(
        f"lu[nt={nt},nb={nb}]",
        registry=registry,
        meta={"algorithm": "lu", "nt": nt, "nb": nb, "n": nt * nb},
    )
    reg = prog.registry
    tile_bytes = nb * nb * 8

    def a(i: int, j: int):
        return reg.alloc(f"{name}[{i},{j}]", tile_bytes, key=(name, i, j))

    for k in range(nt):
        prog.add_task(
            "DGETRF_NOPIV",
            [a(k, k).rw()],
            flops=kernel_flops("DGETRF_NOPIV", nb),
            priority=3 * (nt - k),
            label=f"getrf k={k}",
            k=k,
        )
        for j in range(k + 1, nt):
            prog.add_task(
                "DTRSM_LLN",
                [a(k, k).read(), a(k, j).rw()],
                flops=kernel_flops("DTRSM", nb),
                priority=2 * (nt - k),
                label=f"trsm_l k={k} j={j}",
                k=k,
                j=j,
            )
        for i in range(k + 1, nt):
            prog.add_task(
                "DTRSM_RUN",
                [a(k, k).read(), a(i, k).rw()],
                flops=kernel_flops("DTRSM", nb),
                priority=2 * (nt - k),
                label=f"trsm_r k={k} i={i}",
                k=k,
                i=i,
            )
        for i in range(k + 1, nt):
            for j in range(k + 1, nt):
                prog.add_task(
                    "DGEMM_NN",
                    [a(i, j).rw(), a(i, k).read(), a(k, j).read()],
                    flops=kernel_flops("DGEMM", nb),
                    priority=0,
                    label=f"gemm k={k} i={i} j={j}",
                    k=k,
                    i=i,
                    j=j,
                )
    return prog


def execute_lu(matrix: TiledMatrix) -> TiledMatrix:
    """Factorize ``matrix`` in place: tiles end up holding packed ``L\\U``."""
    nt = matrix.nt
    for k in range(nt):
        blas.getrf_nopiv(matrix.tile(k, k))
        for j in range(k + 1, nt):
            blas.trsm_lln_unit(matrix.tile(k, k), matrix.tile(k, j))
        for i in range(k + 1, nt):
            blas.trsm_run(matrix.tile(k, k), matrix.tile(i, k))
        for i in range(k + 1, nt):
            for j in range(k + 1, nt):
                blas.gemm_nn(matrix.tile(i, j), matrix.tile(i, k), matrix.tile(k, j))
    return matrix


def expected_task_count(nt: int) -> int:
    """``nt`` GETRF, ``nt(nt-1)`` TRSMs, ``sum_k (nt-1-k)^2`` GEMMs."""
    gemm = sum((nt - 1 - k) ** 2 for k in range(nt))
    return nt + nt * (nt - 1) + gemm
