"""Tile linear-algebra algorithms: task-stream generators and numeric execution."""

from .cholesky import CHOLESKY_KERNELS, cholesky_program, execute_cholesky
from .lu import LU_KERNELS, execute_lu, lu_program
from .numeric import NUMERIC_BODIES, run_program_serial, run_task
from .qr import QR_KERNELS, execute_qr, extract_r, qr_program
from .tiled_matrix import TiledMatrix, TileStore, random_diagdom, random_general, random_spd

__all__ = [
    "CHOLESKY_KERNELS",
    "cholesky_program",
    "execute_cholesky",
    "LU_KERNELS",
    "execute_lu",
    "lu_program",
    "NUMERIC_BODIES",
    "run_program_serial",
    "run_task",
    "QR_KERNELS",
    "execute_qr",
    "extract_r",
    "qr_program",
    "TiledMatrix",
    "TileStore",
    "random_diagdom",
    "random_general",
    "random_spd",
]
