"""Tile layout for dense matrices (paper Section IV-B).

A :class:`TiledMatrix` stores an ``n x n`` matrix as ``nt x nt`` contiguous
``nb x nb`` NumPy tiles, the data layout the tile algorithms operate on.  The
class also doubles as the *tile store* used by numeric execution: tiles are
addressed by structured keys ``(name, i, j)`` that match the ``key`` field of
the :class:`~repro.core.task.DataRef` handles an algorithm generator
allocates, so a task's access list can be resolved to NumPy arrays directly.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = ["TiledMatrix", "TileStore", "random_spd", "random_general", "random_diagdom"]

Key = Tuple[object, ...]


class TileStore:
    """Mapping from structured tile keys to NumPy tiles.

    Holds the tiles of one or more logical matrices (e.g. ``A`` and the ``T``
    factors of tile QR).  Numeric task bodies index it with
    ``store[ref.key]``.
    """

    def __init__(self) -> None:
        self._tiles: Dict[Key, np.ndarray] = {}

    def put(self, key: Key, tile: np.ndarray) -> None:
        if tile.ndim != 2:
            raise ValueError("tiles must be 2-D arrays")
        self._tiles[key] = tile

    def __getitem__(self, key: Key) -> np.ndarray:
        return self._tiles[key]

    def __contains__(self, key: Key) -> bool:
        return key in self._tiles

    def __len__(self) -> int:
        return len(self._tiles)

    def keys(self) -> Iterator[Key]:
        return iter(self._tiles)

    def ensure(self, key: Key, shape: Tuple[int, int]) -> np.ndarray:
        """Return the tile at ``key``, creating a zero tile if absent.

        Used for workspace matrices such as the ``T`` factors of tile QR.
        """
        tile = self._tiles.get(key)
        if tile is None:
            tile = np.zeros(shape)
            self._tiles[key] = tile
        return tile


class TiledMatrix:
    """A square matrix partitioned into ``nt x nt`` square tiles of order ``nb``."""

    def __init__(self, dense: np.ndarray, nb: int, name: str = "A") -> None:
        dense = np.asarray(dense, dtype=float)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError("TiledMatrix requires a square matrix")
        n = dense.shape[0]
        if nb <= 0 or n % nb != 0:
            raise ValueError(f"matrix order {n} must be a positive multiple of nb={nb}")
        self.n = n
        self.nb = nb
        self.nt = n // nb
        self.name = name
        self.store = TileStore()
        for i in range(self.nt):
            for j in range(self.nt):
                self.store.put(
                    (name, i, j),
                    dense[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb].copy(),
                )

    def tile(self, i: int, j: int) -> np.ndarray:
        """The ``(i, j)`` tile (zero-based)."""
        if not (0 <= i < self.nt and 0 <= j < self.nt):
            raise IndexError(f"tile ({i},{j}) out of range for nt={self.nt}")
        return self.store[(self.name, i, j)]

    def to_dense(self) -> np.ndarray:
        """Reassemble the dense matrix from the tiles."""
        out = np.empty((self.n, self.n))
        nb = self.nb
        for i in range(self.nt):
            for j in range(self.nt):
                out[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb] = self.tile(i, j)
        return out

    def lower_tiles_dense(self) -> np.ndarray:
        """Dense matrix with strictly-upper *tiles* zeroed (Cholesky output)."""
        out = self.to_dense()
        nb = self.nb
        for i in range(self.nt):
            for j in range(i + 1, self.nt):
                out[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb] = 0.0
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TiledMatrix({self.name}: n={self.n}, nb={self.nb}, nt={self.nt})"


def random_spd(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """A random symmetric positive-definite matrix (for Cholesky tests)."""
    rng = rng or np.random.default_rng()
    m = rng.standard_normal((n, n))
    return m @ m.T + n * np.eye(n)


def random_general(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """A random dense square matrix (for QR tests)."""
    rng = rng or np.random.default_rng()
    return rng.standard_normal((n, n))


def random_diagdom(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """A random diagonally-dominant matrix (safe for unpivoted LU)."""
    rng = rng or np.random.default_rng()
    m = rng.standard_normal((n, n))
    return m + n * np.eye(n)
