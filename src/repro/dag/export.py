"""DAG export: Graphviz DOT rendering in the style of the paper's Fig. 1.

Vertices are coloured per kernel class; each data hazard contributes its own
edge, so a child with several dependences on one parent shows parallel edges
exactly as Fig. 1 draws them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import networkx as nx

from ..core.task import Program
from .build import build_dag

__all__ = ["KERNEL_COLORS", "to_dot", "write_dot"]

#: Fill colours per kernel class (extend freely; unknown kernels are grey).
KERNEL_COLORS: Dict[str, str] = {
    "DGEQRT": "#77c877",
    "DORMQR": "#e8e87a",
    "DTSQRT": "#e89a5a",
    "DTSMQR": "#8ab8e8",
    "DPOTRF": "#77c877",
    "DTRSM": "#e8e87a",
    "DSYRK": "#e89a5a",
    "DGEMM": "#8ab8e8",
    "DGETRF_NOPIV": "#77c877",
    "DTRSM_LLN": "#e8e87a",
    "DTRSM_RUN": "#e8d87a",
    "DGEMM_NN": "#8ab8e8",
}

_EDGE_STYLE = {"RaW": "solid", "WaW": "bold", "WaR": "dashed"}


def to_dot(program_or_dag: Union[Program, nx.MultiDiGraph], *, show_ids: bool = True) -> str:
    """Render a dependence DAG as a Graphviz DOT string."""
    dag = build_dag(program_or_dag) if isinstance(program_or_dag, Program) else program_or_dag
    lines = [
        f'digraph "{dag.name or "dag"}" {{',
        "  rankdir=TB;",
        '  node [shape=ellipse, style=filled, fontname="Helvetica"];',
    ]
    for node, data in dag.nodes(data=True):
        kernel = data.get("kernel", "?")
        color = KERNEL_COLORS.get(kernel, "#cccccc")
        label = data.get("label") or kernel
        if show_ids:
            label = f"F{node}\\n{label}"
        lines.append(f'  {node} [label="{label}", fillcolor="{color}"];')
    for src, dst, data in dag.edges(data=True):
        kind = data.get("kind", "RaW")
        style = _EDGE_STYLE.get(kind, "solid")
        ref = data.get("ref", "")
        lines.append(f'  {src} -> {dst} [style={style}, tooltip="{kind} {ref}"];')
    lines.append("}")
    return "\n".join(lines)


def write_dot(
    program_or_dag: Union[Program, nx.MultiDiGraph],
    path: Union[str, Path],
    *,
    show_ids: bool = True,
) -> Path:
    """Write the DOT rendering to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_dot(program_or_dag, show_ids=show_ids))
    return path
