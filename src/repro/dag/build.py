"""Build dependence DAGs from serial task streams (paper Fig. 1).

The DAG has one vertex per task and one edge per *data hazard*.  Because a
task pair can be linked by several hazards (Fig. 1: "some vertices have
multiple edges from a parent node"), the primary representation is a
:class:`networkx.MultiDiGraph`; :func:`simple_dag` collapses multiplicity for
graph-algorithmic work.
"""

from __future__ import annotations

import networkx as nx

from ..core.task import Program
from ..schedulers.taskdep import HazardTracker

__all__ = ["build_dag", "simple_dag"]


def build_dag(program: Program) -> nx.MultiDiGraph:
    """Hazard-analyse ``program`` and return its dependence multigraph.

    Node attributes: ``kernel``, ``label``, ``flops``, ``priority``.
    Edge attributes: ``kind`` (``"RaW"``/``"WaR"``/``"WaW"``) and ``ref``
    (the data name carrying the hazard).
    """
    tracker = HazardTracker()
    dag = nx.MultiDiGraph(name=program.name)
    for task in program:
        dag.add_node(
            task.task_id,
            kernel=task.kernel,
            label=task.label or task.describe(),
            flops=task.flops,
            priority=task.priority,
        )
        for dep in tracker.add_task(task):
            dag.add_edge(dep.src, dep.dst, kind=dep.kind.value, ref=dep.ref.name)
    return dag


def simple_dag(program_or_dag) -> nx.DiGraph:
    """A :class:`networkx.DiGraph` view with hazard multiplicity collapsed.

    Accepts either a :class:`~repro.core.task.Program` or an already-built
    multigraph.  Edge attribute ``multiplicity`` records how many hazards the
    collapsed edge represents.
    """
    if isinstance(program_or_dag, Program):
        multi = build_dag(program_or_dag)
    else:
        multi = program_or_dag
    simple = nx.DiGraph(name=multi.name)
    simple.add_nodes_from(multi.nodes(data=True))
    for src, dst in set(multi.edges()):
        simple.add_edge(src, dst, multiplicity=multi.number_of_edges(src, dst))
    return simple
