"""Dependence-DAG construction, analysis, and export."""

from .analysis import (
    DagStats,
    critical_path,
    dag_stats,
    depth_levels,
    makespan_lower_bound,
    parallelism_profile,
)
from .build import build_dag, simple_dag
from .listsched import ListSchedule, list_schedule, upward_ranks
from .export import KERNEL_COLORS, to_dot, write_dot

__all__ = [
    "DagStats",
    "critical_path",
    "dag_stats",
    "depth_levels",
    "makespan_lower_bound",
    "parallelism_profile",
    "build_dag",
    "simple_dag",
    "ListSchedule",
    "list_schedule",
    "upward_ranks",
    "KERNEL_COLORS",
    "to_dot",
    "write_dot",
]
