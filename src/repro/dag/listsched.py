"""Static list scheduling — the classic baseline the paper contrasts with.

The paper's related work (§II) points at the static-scheduling literature
(Kwok & Ahmad's survey [6]) and argues that *dynamic* superscalar runtimes
need simulation because static analysis cannot capture their behaviour.
This module supplies that baseline so the claim can be measured: a
critical-path-priority list scheduler (HEFT specialised to homogeneous
workers) that maps a dependence DAG onto ``n_workers`` using fixed
per-kernel costs, producing both a schedule (as a :class:`Trace`) and a
static makespan prediction.

Two uses:

* a *lower-fidelity predictor*: how well does a static schedule of mean
  kernel times predict the real dynamic runtime?  (Answer, per the
  BASE-STATIC bench: noticeably worse than the paper's simulator, because
  it ignores scheduler policy, insertion, window, and stochastic timing.)
* a *quality yardstick*: how close do the dynamic runtimes come to a
  carefully planned static schedule?
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from ..core.task import Program
from ..trace.events import Trace
from .build import build_dag, simple_dag

__all__ = ["ListSchedule", "list_schedule", "upward_ranks"]


def upward_ranks(
    dag: nx.DiGraph, costs: Mapping[int, float]
) -> Dict[int, float]:
    """HEFT upward rank: longest cost-weighted path from each node to exit."""
    g = simple_dag(dag) if dag.is_multigraph() else dag
    rank: Dict[int, float] = {}
    for node in reversed(list(nx.topological_sort(g))):
        succ_rank = max((rank[s] for s in g.successors(node)), default=0.0)
        rank[node] = costs[node] + succ_rank
    return rank


@dataclass
class ListSchedule:
    """Outcome of a static list-scheduling pass."""

    trace: Trace
    makespan: float
    ranks: Dict[int, float]


def list_schedule(
    program: Program,
    n_workers: int,
    kernel_costs: Mapping[str, float],
    *,
    meta: Optional[Dict[str, object]] = None,
) -> ListSchedule:
    """Critical-path list scheduling of ``program`` onto ``n_workers``.

    Tasks are prioritised by HEFT upward rank and greedily placed on the
    earliest-available worker (insertion-free, overhead-free, deterministic).
    ``kernel_costs`` supplies the fixed per-kernel duration (typically the
    mean of a calibrated timing model).
    """
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    dag = simple_dag(build_dag(program))
    costs = {t.task_id: float(kernel_costs[t.kernel]) for t in program}
    for tid, c in costs.items():
        if c <= 0:
            raise ValueError(f"task {tid} has non-positive cost {c}")
    ranks = upward_ranks(dag, costs)

    indegree = {n: dag.in_degree(n) for n in dag.nodes}
    data_ready: Dict[int, float] = {n: 0.0 for n in dag.nodes}
    ready: List[Tuple[float, int]] = [
        (-ranks[n], n) for n, d in indegree.items() if d == 0
    ]
    heapq.heapify(ready)
    worker_free = [0.0] * n_workers
    finish: Dict[int, float] = {}

    trace_meta = {"scheduler": "static-list", "program": program.name}
    trace_meta.update(meta or {})
    trace = Trace(n_workers, meta=trace_meta)

    while ready:
        _, node = heapq.heappop(ready)
        width = program[node].width
        if width > n_workers:
            raise ValueError(f"task {node} wider than the machine")
        est = data_ready[node]
        if width == 1:
            worker = min(range(n_workers), key=lambda w: (max(worker_free[w], est), w))
            start = max(worker_free[worker], est)
            end = start + costs[node]
            worker_free[worker] = end
        else:
            # Gang placement: the contiguous block whose latest-free worker
            # frees earliest.
            best_start, worker = None, 0
            for w0 in range(n_workers - width + 1):
                block_free = max(worker_free[w0 : w0 + width])
                s = max(block_free, est)
                if best_start is None or s < best_start:
                    best_start, worker = s, w0
            start = best_start
            end = start + costs[node]
            for w in range(worker, worker + width):
                worker_free[w] = end
        finish[node] = end
        trace.record(worker, node, program[node].kernel, start, end,
                     label=program[node].label, width=width)
        for succ in dag.successors(node):
            data_ready[succ] = max(data_ready[succ], end)
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (-ranks[succ], succ))

    if len(finish) != len(program):
        raise RuntimeError("list scheduler dropped tasks (cyclic DAG?)")
    return ListSchedule(trace=trace, makespan=trace.makespan, ranks=ranks)
