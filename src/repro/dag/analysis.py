"""DAG analysis: critical path, parallelism profile, lower bounds.

These quantities explain *why* a schedule performs the way it does: the
weighted critical path is the absolute makespan floor on any number of cores,
``total_work / p`` is the floor on ``p`` cores, and the level-by-level width
profile shows where a factorization starves for parallelism (the tail of a
tile factorization narrows to the final diagonal task).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import networkx as nx

from .build import simple_dag

__all__ = [
    "critical_path",
    "depth_levels",
    "parallelism_profile",
    "DagStats",
    "dag_stats",
    "makespan_lower_bound",
]

WeightFn = Callable[[int, dict], float]


def _weight_fn(weights: Optional[Mapping[str, float]]) -> WeightFn:
    """Node-weight function: per-kernel mean times, falling back to flops."""

    def fn(node: int, data: dict) -> float:
        if weights is not None:
            try:
                return float(weights[data.get("kernel", "")])
            except KeyError:
                pass
        return float(data.get("flops", 1.0)) or 1.0

    return fn


def critical_path(
    dag: nx.DiGraph,
    weights: Optional[Mapping[str, float]] = None,
) -> Tuple[float, List[int]]:
    """Weighted critical path: ``(length, node list)``.

    ``weights`` maps kernel name to a per-task cost (e.g. the mean of its
    fitted timing model); without it, flop counts are used.  Node weights sit
    on the vertices, so the path length includes both endpoints.
    """
    g = simple_dag(dag) if dag.is_multigraph() else dag
    wf = _weight_fn(weights)
    dist: Dict[int, float] = {}
    pred: Dict[int, int] = {}
    for node in nx.topological_sort(g):
        w = wf(node, g.nodes[node])
        best, best_pred = 0.0, -1
        for p in g.predecessors(node):
            if dist[p] > best:
                best, best_pred = dist[p], p
        dist[node] = best + w
        if best_pred >= 0:
            pred[node] = best_pred
    if not dist:
        return 0.0, []
    end = max(dist, key=dist.get)  # type: ignore[arg-type]
    path = [end]
    while path[-1] in pred:
        path.append(pred[path[-1]])
    path.reverse()
    return dist[end], path


def depth_levels(dag: nx.DiGraph) -> Dict[int, int]:
    """Unweighted longest-path depth of every node (root depth 0)."""
    g = simple_dag(dag) if dag.is_multigraph() else dag
    depth: Dict[int, int] = {}
    for node in nx.topological_sort(g):
        depth[node] = max((depth[p] + 1 for p in g.predecessors(node)), default=0)
    return depth


def parallelism_profile(dag: nx.DiGraph) -> List[int]:
    """Number of tasks at each depth level — the DAG's width profile.

    Level widths bound how many cores the algorithm can keep busy if tasks
    proceeded in lock-step levels; superscalar execution does better by
    overlapping levels, which is exactly the paper's motivation (§IV-B).
    """
    depth = depth_levels(dag)
    if not depth:
        return []
    widths = [0] * (max(depth.values()) + 1)
    for d in depth.values():
        widths[d] += 1
    return widths


@dataclass(frozen=True)
class DagStats:
    """Summary statistics of a dependence DAG."""

    n_tasks: int
    n_edges: int
    depth: int
    max_width: int
    total_work: float
    critical_path_length: float
    average_parallelism: float


def dag_stats(dag: nx.DiGraph, weights: Optional[Mapping[str, float]] = None) -> DagStats:
    """Compute :class:`DagStats` for ``dag`` under per-kernel ``weights``."""
    g = simple_dag(dag) if dag.is_multigraph() else dag
    wf = _weight_fn(weights)
    total = sum(wf(n, g.nodes[n]) for n in g.nodes)
    cp, _ = critical_path(g, weights)
    widths = parallelism_profile(g)
    return DagStats(
        n_tasks=g.number_of_nodes(),
        n_edges=g.number_of_edges(),
        depth=len(widths),
        max_width=max(widths) if widths else 0,
        total_work=total,
        critical_path_length=cp,
        average_parallelism=(total / cp) if cp > 0 else 0.0,
    )


def makespan_lower_bound(
    dag: nx.DiGraph,
    n_workers: int,
    weights: Optional[Mapping[str, float]] = None,
) -> float:
    """``max(critical path, total_work / p)`` — the classic schedule bound."""
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    stats = dag_stats(dag, weights)
    return max(stats.critical_path_length, stats.total_work / n_workers)
