"""Superscalar scheduler runtimes: QUARK-, StarPU-, and OmpSs-like."""

from .array_engine import ArrayEngine, array_backend_unsupported
from .base import Backend, SchedulerBase, TaskNode, TaskState
from .engine import Engine
from .ompss import OmpSsScheduler, TaskContext, task
from .policies import (
    FifoQueue,
    HistoryPerfModel,
    LifoQueue,
    PriorityQueue,
    WorkStealingDeques,
)
from .quark import QuarkScheduler
from .starpu import STARPU_POLICIES, Codelet, StarPUScheduler
from .taskdep import Dependence, HazardKind, HazardTracker

__all__ = [
    "ArrayEngine",
    "array_backend_unsupported",
    "Backend",
    "SchedulerBase",
    "TaskNode",
    "TaskState",
    "Engine",
    "OmpSsScheduler",
    "TaskContext",
    "task",
    "FifoQueue",
    "HistoryPerfModel",
    "LifoQueue",
    "PriorityQueue",
    "WorkStealingDeques",
    "QuarkScheduler",
    "STARPU_POLICIES",
    "Codelet",
    "StarPUScheduler",
    "Dependence",
    "HazardKind",
    "HazardTracker",
]

#: The three runtimes the paper evaluates, by name.
SCHEDULERS = {
    "quark": QuarkScheduler,
    "starpu": StarPUScheduler,
    "ompss": OmpSsScheduler,
}


def make_scheduler(name: str, n_workers: int, **kwargs) -> SchedulerBase:
    """Instantiate a scheduler by its paper name (``quark``/``starpu``/``ompss``)."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise KeyError(f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}") from None
    return cls(n_workers, **kwargs)
