"""Deterministic discrete-event engine driving a superscalar runtime.

The engine models the *runtime itself* — serial task insertion with its
per-task cost, window throttling, hazard analysis, dependence release, and
dispatch — while the policy decisions live in the scheduler object and the
kernel durations live in the backend.  Time is virtual (double-precision
seconds, paper §V: "the clock is stored as a double precision floating point
number").

Event order is deterministic: the heap is keyed by ``(time, sequence)`` and
idle workers are offered work in increasing id order, so a run is a pure
function of ``(program, scheduler, backend, seed)``.

The engine can also run **partitioned** (see :mod:`repro.core.cells`): the
machine model splits into per-socket cells, each with its own event queue
and clock, advanced by one thread per cell under conservative
synchronization.  Because scheduler state is shared between cells, the
protocol processes events in global ``(time, sequence)`` order — multicell
runs produce traces byte-identical to serialized runs, and the lookahead
bounds only the null-message horizon updates applied to idle cells' clocks.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import math
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.cells import (
    CellPlan,
    backend_duration_floor,
    compute_lookahead,
    resolve_engine_mode,
)
from ..core.metrics import RunMetrics
from ..core.task import Program
from ..obs.probe import Probe, active_probe
from ..trace.events import Trace
from .base import Backend, SchedulerBase, TaskNode, TaskState
from .taskdep import HazardTracker

__all__ = ["Engine"]

_INSERT = 0
_FINISH = 1


class Engine:
    """One run of ``program`` on ``scheduler`` with durations from ``backend``."""

    def __init__(
        self,
        scheduler: SchedulerBase,
        program: Program,
        backend: Backend,
        *,
        seed: int = 0,
        trace_meta: Optional[Dict[str, object]] = None,
        metrics: Optional[RunMetrics] = None,
        probe: Optional[Probe] = None,
        engine_mode: str = "serialized",
        cells: Optional[CellPlan] = None,
    ) -> None:
        self.sched = scheduler
        self.program = program
        self.backend = backend
        self.seed = seed
        self.n_workers = scheduler.n_workers
        self.metrics = metrics if metrics is not None else RunMetrics()
        if cells is not None and cells.n_workers != self.n_workers:
            raise ValueError(
                f"cell plan covers {cells.n_workers} workers but the "
                f"scheduler has {self.n_workers}"
            )
        self.engine_mode = engine_mode
        self.engine_mode_effective, self._plan, self._mode_fallback = resolve_engine_mode(
            engine_mode, cells
        )
        self.lookahead = compute_lookahead(
            scheduler.insert_cost,
            scheduler.dispatch_overhead,
            backend_duration_floor(backend),
        )
        # Observation hooks: ``None`` unless an *enabled* probe was supplied,
        # so every hook site below costs one attribute check by default.
        self.probe = active_probe(probe)

        meta = {
            "scheduler": scheduler.name,
            "backend": type(backend).__name__,
            "program": program.name,
            "seed": seed,
            "n_workers": self.n_workers,
        }
        meta.update(trace_meta or {})
        self.trace = Trace(self.n_workers, meta=meta)

        # -- run state -----------------------------------------------------
        self.nodes: List[TaskNode] = [TaskNode(spec) for spec in program]
        self._n_nodes = len(self.nodes)
        # The engine only consumes the dependence *structure*; skipping the
        # per-edge Dependence records saves an allocation per hazard.
        self.tracker = HazardTracker(record_edges=False, probe=self.probe)
        self.now = 0.0
        self._heap: List[Tuple[float, int, int, int]] = []  # (t, seq, kind, node_idx)
        self._seq = itertools.count()
        self._heap_size = 0
        # Partitioned state (multicell only): per-cell event queues + clocks.
        if self.engine_mode_effective == "multicell":
            plan = self._plan
            assert plan is not None
            self._cell_heaps: Optional[List[List[Tuple[float, int, int, int]]]] = [
                [] for _ in range(plan.n_cells)
            ]
            self._worker_cell = plan.cell_of_worker
            self._master_cell = plan.cell_of_worker[0]
            self._cell_now = [0.0] * plan.n_cells
        else:
            self._cell_heaps = None
        self._running: Dict[int, TaskNode] = {}  # worker -> node
        self._idle: List[int] = list(range(self.n_workers))  # sorted invariant
        self._next_insert = 0
        self._in_flight = 0
        self._insert_pending = False  # an INSERT event is on the heap
        self._window_stalled = False  # currently inside one window-stall episode
        self._master_free = 0.0  # dedicated-master timeline
        self._master_debt = 0.0  # accrued per-completion bookkeeping cost
        # Multi-threaded task waiting for a contiguous block of idle workers
        # (head-of-line: nothing else dispatches while one is pending, so
        # wide tasks cannot be starved by streams of narrow ones).
        self._pending_wide: Optional[TaskNode] = None
        self._done = 0
        self._n_ready = 0  # tasks pushed to the policy queue, not yet popped

    # -- helpers -------------------------------------------------------------
    def _push(self, t: float, kind: int, node_idx: int = -1) -> None:
        entry = (t, next(self._seq), kind, node_idx)
        cell_heaps = self._cell_heaps
        if cell_heaps is None:
            heapq.heappush(self._heap, entry)
        else:
            # Route to the owning cell: insertions run on the master's cell,
            # completions fire on the cell hosting the task's worker.
            if kind == _INSERT:
                cell = self._master_cell
            else:
                cell = self._worker_cell[self.nodes[node_idx].worker]
            heapq.heappush(cell_heaps[cell], entry)
        m = self.metrics
        m.heap_pushes += 1
        self._heap_size += 1
        if self._heap_size > m.peak_heap_depth:
            m.peak_heap_depth = self._heap_size

    def _mark_ready(self) -> None:
        self._n_ready += 1
        if self._n_ready > self.metrics.peak_ready_depth:
            self.metrics.peak_ready_depth = self._n_ready

    def _master_idle(self) -> bool:
        """Can the master start an insertion right now?"""
        if self._insert_pending:
            return False
        if self.sched.master_is_worker:
            return 0 not in self._running
        return True

    def _master_available_at(self) -> float:
        if self.sched.master_is_worker:
            return self.now  # worker 0 is idle (checked by _master_idle)
        return max(self.now, self._master_free)

    def _maybe_start_insertion(self) -> None:
        """Begin inserting the next task if the window and master allow it.

        ``window_stalls`` counts *episodes*: one increment per contiguous
        period in which insertion is blocked by a full window, however many
        times this poll runs inside it.  Counting every poll made the
        metric scale with event traffic instead of with actual throttling.
        """
        if self._next_insert >= self._n_nodes:
            return
        if self._in_flight >= self.sched.window:
            if not self._window_stalled:
                self.metrics.window_stalls += 1
                self._window_stalled = True
                if self.probe is not None:
                    self.probe.window_stall(self.now, True)
            return
        if self._window_stalled and self.probe is not None:
            self.probe.window_stall(self.now, False)
        self._window_stalled = False
        if not self._master_idle():
            return
        # Outstanding completion bookkeeping is paid before the next insert.
        t = self._master_available_at() + self._master_debt + self.sched.insert_cost
        self._master_debt = 0.0
        self._insert_pending = True
        if not self.sched.master_is_worker:
            self._master_free = t
        self._push(t, _INSERT)

    # -- event handlers --------------------------------------------------------
    def _handle_insert(self) -> None:
        self._insert_pending = False
        node = self.nodes[self._next_insert]
        self._next_insert += 1
        self._in_flight += 1
        if node.spec.width > self.n_workers:
            raise ValueError(
                f"task {node!r} requires {node.spec.width} workers but the "
                f"runtime has {self.n_workers}"
            )

        self.tracker.add_task(node.spec)
        preds = self.tracker.predecessors_view(node.task_id)
        outstanding = 0
        for pid in preds:
            pred = self.nodes[pid]
            if pred.state is not TaskState.DONE:
                pred.successors.append(node)
                outstanding += 1
        node.n_deps = outstanding
        node.state = TaskState.WAITING
        if self.probe is not None:
            self.probe.task_inserted(self.now, node.task_id, outstanding)
        if outstanding == 0:
            node.state = TaskState.READY
            node.ready_time = self.now
            self._mark_ready()
            self.sched.push_ready(node, None)
            if self.probe is not None:
                self.probe.task_ready(self.now, node.task_id)

        self._maybe_start_insertion()
        self._dispatch()

    def _handle_finish(self, node_idx: int) -> None:
        node = self.nodes[node_idx]
        worker = node.worker
        node.state = TaskState.DONE
        for w in range(worker, worker + node.spec.width):
            self._running.pop(w, None)
            bisect.insort(self._idle, w)
        self._in_flight -= 1
        self._done += 1
        self._master_debt += self.sched.completion_cost

        self.sched.on_finish(node, worker, node.end_time - node.start_time)
        if self.probe is not None:
            self.probe.task_finished(self.now, node.task_id, worker, node.spec.width)

        for succ in node.successors:
            succ.n_deps -= 1
            if succ.n_deps == 0 and succ.state is TaskState.WAITING:
                succ.state = TaskState.READY
                succ.ready_time = self.now
                self._mark_ready()
                self.sched.push_ready(succ, worker)
                if self.probe is not None:
                    self.probe.task_ready(self.now, succ.task_id)

        self._maybe_start_insertion()
        self._dispatch()

    def _worker_eligible(self, worker: int) -> bool:
        if worker in self._running:
            return False
        if self.sched.master_is_worker and worker == 0:
            # The master only executes tasks once insertion is finished or
            # stalled on a full window (QUARK behaviour).
            inserting = self._insert_pending
            more_to_insert = self._next_insert < self._n_nodes
            window_full = self._in_flight >= self.sched.window
            if inserting:
                return False
            if more_to_insert and not window_full:
                return False
        return True

    def _gang_start(self, width: int) -> Optional[int]:
        """Lowest start of a contiguous block of ``width`` eligible idle
        workers, or ``None``."""
        run_start, run_len = -1, 0
        prev = -2
        for worker in self._idle:
            if not self._worker_eligible(worker):
                prev = -2
                continue
            if worker == prev + 1 and run_len > 0:
                run_len += 1
            else:
                run_start, run_len = worker, 1
            if run_len == width:
                return run_start
            prev = worker
        return None

    def _try_place_wide(self) -> bool:
        """Place the pending multi-threaded task if a gang is free."""
        node = self._pending_wide
        assert node is not None
        start = self._gang_start(node.spec.width)
        if start is None:
            return False
        self._pending_wide = None
        self._assign(node, start)
        return True

    def _dispatch(self) -> None:
        """Offer work to idle workers until nothing more can be placed."""
        if self.probe is None:
            self._dispatch_sweep()
            return
        # Instrumented path: report the sweep as one span (how many tasks it
        # placed and whether work was left queued) without touching the
        # sweep logic itself.
        before = self.metrics.tasks_executed
        self._dispatch_sweep()
        self.probe.dispatch_sweep(
            self.now, self.metrics.tasks_executed - before, self._n_ready
        )

    def _dispatch_sweep(self) -> None:
        sched = self.sched
        while self._idle:
            if self._pending_wide is not None:
                # Head-of-line: the wide task must be placed first.
                if not self._try_place_wide():
                    self.metrics.dispatch_stalls += 1
                    return
                continue
            if not sched.has_ready():
                return
            # Master eligibility is loop-invariant across one sweep: it
            # depends only on insertion state, which dispatch never changes.
            master_blocked = sched.master_is_worker and (
                self._insert_pending
                or (
                    self._next_insert < self._n_nodes
                    and self._in_flight < sched.window
                )
            )
            progress = False
            running = self._running
            for worker in list(self._idle):
                if worker in running or (master_blocked and worker == 0):
                    continue
                node = sched.pop_ready(worker, self.now)
                if node is not None:
                    self._n_ready -= 1
                if node is None:
                    if not sched.has_ready():
                        # The sweep drained the queue: every remaining poll
                        # would be a no-op (pop_ready never consumes on a
                        # None return, so an empty queue stays empty).
                        return
                    continue
                if node.spec.width > 1:
                    self._pending_wide = node
                    progress = True
                    break  # restart the loop to place it head-of-line
                self._assign(node, worker)
                progress = True
                if not sched.has_ready():
                    return
            if not progress:
                self.metrics.dispatch_stalls += 1
                break

    def _assign(self, node: TaskNode, worker: int) -> None:
        if node.state is not TaskState.READY:
            raise RuntimeError(f"dispatching non-ready task {node!r}")
        node.state = TaskState.RUNNING
        node.worker = worker
        start = self.now + self.sched.dispatch_overhead
        if self.sched.master_is_worker and worker == 0 and self._master_debt > 0.0:
            # The master clears its bookkeeping backlog before computing.
            start += self._master_debt
            self._master_debt = 0.0
        active = len(self._running) + node.spec.width
        duration = self.backend.duration(node, worker, start, active)
        if duration < 0 or not math.isfinite(duration):
            raise ValueError(f"backend produced invalid duration {duration!r} for {node!r}")
        node.start_time = start
        node.end_time = start + duration
        for w in range(worker, worker + node.spec.width):
            self._running[w] = node
            self._idle.remove(w)
        self.metrics.tasks_executed += 1
        if self.probe is not None:
            self.probe.task_dispatched(
                self.now, node.task_id, worker, start, node.spec.width
            )
        self.trace.record(
            worker=worker,
            task_id=node.task_id,
            kernel=node.kernel,
            start=start,
            end=node.end_time,
            label=node.spec.label,
            width=node.spec.width,
        )
        self._push(node.end_time, _FINISH, node.task_id)

    # -- event loops -------------------------------------------------------------
    def _run_serialized(self) -> None:
        """Classic single-queue loop — the byte-identity reference path."""
        m = self.metrics
        heap = self._heap
        heappop = heapq.heappop
        handle_insert = self._handle_insert
        handle_finish = self._handle_finish
        while heap:
            t, _, kind, node_idx = heappop(heap)
            self._heap_size -= 1
            m.heap_pops += 1
            m.events_processed += 1
            if t < self.now - 1e-12:
                raise RuntimeError("event time went backwards — engine bug")
            if t > self.now:
                self.now = t
            if kind == _INSERT:
                m.insert_events += 1
                handle_insert()
            else:
                m.finish_events += 1
                handle_finish(node_idx)

    def _run_multicell(self) -> None:
        """Partitioned loop: one thread per cell over per-cell event queues.

        Conservative synchronization with shared scheduler state: a cell may
        pop and handle its head event only when that event is the global
        minimum over all cells' queues (the zero-lookahead degenerate case of
        Chandy–Misra–Bryant — any event may touch the shared ready queue /
        idle-worker pool, so no earlier event anywhere may still be pending).
        Handlers therefore execute in exactly the order the serialized loop
        would use, which is what makes multicell traces byte-identical.
        After each event the handling cell issues null-message-style horizon
        updates: every cell with an empty queue advances its local clock to
        the global clock (always within its lookahead horizon).
        """
        plan = self._plan
        assert plan is not None and self._cell_heaps is not None
        heaps = self._cell_heaps
        n_cells = plan.n_cells
        m = self.metrics
        cond = threading.Condition()
        errors: List[BaseException] = []
        state = {"done": False}
        self._cell_events = [0] * n_cells
        self._cell_null_updates = [0] * n_cells

        def _head_cell() -> int:
            best, best_key = -1, None
            for c, h in enumerate(heaps):
                if h and (best_key is None or h[0] < best_key):
                    best, best_key = c, h[0]
            return best

        def _cell_loop(cell_id: int) -> None:
            heap = heaps[cell_id]
            with cond:
                while True:
                    if state["done"] or errors:
                        return
                    if not heap or _head_cell() != cell_id:
                        # Not this cell's turn: the timeout is a liveness
                        # backstop only — every state change notifies.
                        cond.wait(0.1)
                        continue
                    t, _, kind, node_idx = heapq.heappop(heap)
                    self._heap_size -= 1
                    m.heap_pops += 1
                    m.events_processed += 1
                    self._cell_events[cell_id] += 1
                    try:
                        if t < self.now - 1e-12:
                            raise RuntimeError("event time went backwards — engine bug")
                        if t > self.now:
                            self.now = t
                        if self._cell_now[cell_id] < self.now:
                            self._cell_now[cell_id] = self.now
                            if self.probe is not None:
                                self.probe.cell_advance(self.now, cell_id, len(heap))
                        if kind == _INSERT:
                            m.insert_events += 1
                            self._handle_insert()
                        else:
                            m.finish_events += 1
                            self._handle_finish(node_idx)
                        now = self.now
                        for c in range(n_cells):
                            if c != cell_id and not heaps[c] and self._cell_now[c] < now:
                                self._cell_now[c] = now
                                self._cell_null_updates[c] += 1
                                if self.probe is not None:
                                    self.probe.cell_advance(now, c, 0)
                    except BaseException as exc:  # propagate to run()
                        errors.append(exc)
                        cond.notify_all()
                        return
                    if not any(heaps):
                        state["done"] = True
                    cond.notify_all()

        threads = [
            threading.Thread(target=_cell_loop, args=(c,), name=f"cell-{c}", daemon=True)
            for c in range(n_cells)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    # -- main loop ---------------------------------------------------------------
    def run(self) -> Trace:
        wall_start = time.perf_counter()
        m = self.metrics
        m.n_tasks = len(self.nodes)
        m.n_workers = self.n_workers
        rng = np.random.default_rng(self.seed)
        self.backend.reset(rng, self.n_workers)
        self.sched.setup(self.nodes)

        if not self.nodes:
            m.wall_time_s = time.perf_counter() - wall_start
            return self.trace

        self._maybe_start_insertion()
        if self._cell_heaps is None:
            self._run_serialized()
        else:
            self._run_multicell()

        m.makespan = self.trace.makespan
        if self.engine_mode != "serialized":
            engine_extra: Dict[str, object] = {
                "mode": self.engine_mode,
                "effective": self.engine_mode_effective,
                "lookahead_s": self.lookahead,
            }
            if self._mode_fallback is not None:
                engine_extra["fallback_reason"] = self._mode_fallback
            if self._plan is not None:
                engine_extra["cells"] = self._plan.to_dict()
                engine_extra["cell_events"] = list(self._cell_events)
                engine_extra["cell_null_updates"] = list(self._cell_null_updates)
                engine_extra["cell_clocks"] = list(self._cell_now)
            m.extra["engine"] = engine_extra
        m.wall_time_s = time.perf_counter() - wall_start
        if self._done != len(self.nodes):
            stuck = [n for n in self.nodes if n.state is not TaskState.DONE]
            raise RuntimeError(
                f"run ended with {len(stuck)} unfinished tasks "
                f"(first: {stuck[0]!r}) — scheduler dropped work"
            )
        return self.trace
