"""Array-native discrete-event engine: the SoA core behind ``engine_backend="array"``.

This engine replays exactly the same simulation as
:class:`repro.schedulers.engine.Engine` — same event order, same probe
stream, same random variates, byte-identical traces — but runs it over the
flat data of :class:`repro.core.soa.SoAProgram` instead of per-task
``TaskNode`` objects:

* task state, dependency counts, widths, priorities and the successor
  graph live in arrays indexed by task id (numpy for construction and
  analysis, plain lists inside the loop, where scalar indexing is several
  times faster than numpy's);
* the event set is a :class:`~repro.core.soa.CalendarQueue` keyed on
  ``(time, push sequence)`` — the same total order as the object engine's
  binary heap, so pops interleave identically;
* hazard analysis is hoisted out of the run entirely (the CSR successor
  arrays are built once, before the clock starts);
* when the backend is a plain :class:`~repro.core.simbackend.SimulationBackend`
  whose models admit closed-form transforms
  (:meth:`~repro.kernels.timing.KernelModelSet.sweep_transforms`), the whole
  run's standard-normal stream is pre-drawn in a single vectorised call and
  each dispatch applies one scalar transform — bit-identical to the batched
  sampler because NumPy fills ``standard_normal(n)`` with the same ziggurat
  sequence regardless of chunking, and the unconsumed tail is never
  observed.  Any other backend is driven through a per-call adapter with
  the exact argument sequence the object engine would use.

Two optional compiled accelerators slot in behind pure-Python fallbacks:
the innermost successor-release loop is delegated to
``repro.schedulers._array_kernels`` — replaced by its compiled Cython twin
(``_array_kernels_c``) when one has been built — and, for the no-probe
sweep-transform configuration, the *entire* event loop runs inside the
hand-written C core of ``repro.schedulers._array_core`` (built with a plain
C compiler by ``tools/build_array_core.py``, loaded via ctypes).  Both are
transliterations of the Python code with the same float operation order,
so which layer executes never changes a single output bit.

Not every configuration has an array path: work-stealing and ``dmda``
StarPU policies, scheduler subclasses, non-``serialized`` engine modes and
programs the scheduler cannot even express fall back to the object engine
(see :func:`array_backend_unsupported`); :meth:`SchedulerBase.run` performs
that fallback and records the reason.
"""

from __future__ import annotations

import math
import time
from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.metrics import RunMetrics
from ..core.soa import DONE, NOT_INSERTED, READY, RUNNING, WAITING, CalendarQueue, SoAProgram
from ..core.task import Program
from ..obs.probe import active_probe
from ..trace.events import ColumnTrace, Trace
from ._array_core import N_COUNTERS, RUN_SERIALIZED as _c_run
from .base import Backend, SchedulerBase
from .ompss import OmpSsScheduler
from .quark import QuarkScheduler
from .starpu import StarPUScheduler

try:  # pragma: no cover - exercised only when the extension is built
    from . import _array_kernels_c as _kernels  # type: ignore[attr-defined]
except ImportError:
    from . import _array_kernels as _kernels

__all__ = [
    "ArrayEngine",
    "array_backend_unsupported",
    "USING_COMPILED_KERNELS",
    "USING_COMPILED_CORE",
]

#: True when the Cython extension is driving the successor-release loop.
USING_COMPILED_KERNELS: bool = bool(getattr(_kernels, "USING_COMPILED", False))

#: True when the ctypes-loaded C core can run whole simulations.
USING_COMPILED_CORE: bool = _c_run is not None

_release_successors = _kernels.release_successors


def array_backend_unsupported(
    scheduler: SchedulerBase, engine_mode: str = "serialized"
) -> Optional[str]:
    """Why ``scheduler`` cannot run on the array engine, or ``None``.

    The array engine natively implements the exact ready-queue semantics of
    the three stock schedulers' deterministic policies.  Anything it cannot
    replicate byte-for-byte — scheduler subclasses with overridden hooks,
    StarPU's ``ws``/``dmda`` policies (per-worker deques and ETA models),
    and the partitioned engine modes — reports a reason here so callers can
    fall back to the object engine instead of producing a divergent trace.
    """
    if engine_mode != "serialized":
        return f"array backend implements the serialized event loop only (engine_mode={engine_mode!r})"
    kind = type(scheduler)
    if kind is QuarkScheduler or kind is OmpSsScheduler:
        return None
    if kind is StarPUScheduler:
        if scheduler.policy in ("eager", "prio"):
            return None
        return f"StarPU policy {scheduler.policy!r} has no array-native ready queue"
    return f"scheduler type {kind.__name__} has no array-native implementation"


class _NodeView:
    """Minimal ``TaskNode`` stand-in for per-call backend adapters.

    Backends read ``spec`` (machine model), ``kernel`` (simulation models)
    and ``task_id`` (error messages); one mutable view is reused across
    calls so the adapter path allocates nothing per dispatch.
    """

    __slots__ = ("spec",)

    def __init__(self) -> None:
        self.spec = None

    @property
    def kernel(self) -> str:
        return self.spec.kernel

    @property
    def task_id(self) -> int:
        return self.spec.task_id

    def __repr__(self) -> str:  # pragma: no cover - error paths only
        return f"_NodeView({self.spec!r})"


class ArrayEngine:
    """Drop-in :class:`~repro.schedulers.engine.Engine` replacement on SoA data.

    Constructor and :meth:`run` signature match the object engine; a
    configuration without an array path raises ``ValueError`` (use
    :func:`array_backend_unsupported` to pre-check and fall back).
    """

    def __init__(
        self,
        scheduler: SchedulerBase,
        program: Program,
        backend: Backend,
        *,
        seed: int = 0,
        trace_meta: Optional[Dict[str, Any]] = None,
        metrics: Optional[RunMetrics] = None,
        probe=None,
        engine_mode: str = "serialized",
        cells=None,
    ) -> None:
        reason = array_backend_unsupported(scheduler, engine_mode)
        if reason is not None:
            raise ValueError(f"array engine cannot run this configuration: {reason}")
        self.sched = scheduler
        self.program = program
        self.backend = backend
        self.seed = seed
        self.n_workers = scheduler.n_workers
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.probe = active_probe(probe)
        self.soa = SoAProgram.for_program(program, keep_preds=self.probe is not None)
        self.trace = Trace(
            n_workers=self.n_workers,
            meta={
                "scheduler": scheduler.name,
                "backend": type(backend).__name__,
                "program": program.name,
                "seed": seed,
                "n_workers": self.n_workers,
                **(trace_meta or {}),
            },
        )

    # -- ready-queue closures ---------------------------------------------
    def _make_ready_queue(self):
        """(push, pop) closures replicating the scheduler's ready queue.

        ``push(tid, releasing_worker)`` takes ``-1`` for "no releasing
        worker" (insertion-time pushes); ``pop(worker)`` returns ``-1``
        when the queue has nothing for that worker.  Tie-breaking matches
        :mod:`repro.schedulers.policies` exactly: priority heaps carry a
        per-queue monotone sequence so equal priorities pop FIFO.
        """
        sched = self.sched
        prios = self.soa.priorities.tolist()

        def make_priority():
            heap: List[Tuple[int, int, int]] = []
            seq = [0]

            def push(tid: int, rw: int) -> None:
                s = seq[0]
                seq[0] = s + 1
                heappush(heap, (-prios[tid], s, tid))

            def pop(worker: int) -> int:
                return heappop(heap)[2] if heap else -1

            return push, pop

        def make_lifo():
            stack: List[int] = []

            def push(tid: int, rw: int) -> None:
                stack.append(tid)

            def pop(worker: int) -> int:
                return stack.pop() if stack else -1

            return push, pop

        def make_fifo():
            q: deque = deque()

            def push(tid: int, rw: int) -> None:
                q.append(tid)

            def pop(worker: int) -> int:
                return q.popleft() if q else -1

            return push, pop

        kind = type(sched)
        if kind is QuarkScheduler:
            return make_priority() if sched.queue_kind == "priority" else make_lifo()
        if kind is StarPUScheduler:
            return make_fifo() if sched.policy == "eager" else make_priority()
        # OmpSs: central queue plus the immediate-successor bounce slots.
        central_push, central_pop = (
            make_fifo() if sched.queue_kind == "fifo" else make_priority()
        )
        if not sched.immediate_successor:
            return central_push, central_pop

        bounce: Dict[int, List[int]] = {}
        n_bounced = [0]

        def push(tid: int, rw: int) -> None:
            if rw >= 0:
                bounce.setdefault(rw, []).append(tid)
                n_bounced[0] += 1
            else:
                central_push(tid, -1)

        def pop(worker: int) -> int:
            own = bounce.get(worker)
            if own:
                n_bounced[0] -= 1
                return own.pop(0)
            tid = central_pop(worker)
            if tid < 0 and n_bounced[0] > 0:
                # Drain other workers' unclaimed bounce slots in worker
                # order, exactly like OmpSsScheduler.pop_ready.
                for w in sorted(bounce):
                    slot = bounce[w]
                    if slot:
                        n_bounced[0] -= 1
                        return slot.pop(0)
            return tid

        return push, pop

    # -- the run ------------------------------------------------------------
    def run(self) -> Trace:
        wall_start = time.perf_counter()
        m = self.metrics
        soa = self.soa
        sched = self.sched
        backend = self.backend
        probe = self.probe
        trace = self.trace
        n_nodes = soa.n_tasks
        n_workers = self.n_workers
        m.n_tasks = n_nodes
        m.n_workers = n_workers

        rng = np.random.default_rng(self.seed)

        # Duration source.  Fast path: pre-draw the whole run's normal
        # stream (consumes the same leading variates as the batched
        # sampler); otherwise reset the backend and call it per dispatch.
        # Local import: simbackend's module chain reaches back into this
        # package, so importing it at module scope would be circular.
        from ..core.simbackend import SimulationBackend

        kids = soa.kernel_ids.tolist()
        sweep = None
        if type(backend) is SimulationBackend:
            sweep = backend.models.sweep_transforms()
        if sweep is not None:
            names = soa.kernel_names
            missing = [k for k in names if k not in sweep]
            if missing:
                raise KeyError(
                    f"no timing model for kernel {missing[0]!r}; "
                    f"calibrated kernels: {sorted(sweep)}"
                )
            tf_kind = [sweep[k][0] for k in names]
            tf_a = [sweep[k][1] for k in names]
            tf_b = [sweep[k][2] for k in names]
            n_normal = sum(1 for k in kids if tf_kind[k] != 0)
            zs_arr = rng.standard_normal(n_normal)
            zs = None
            warmup_penalty = backend.warmup_penalty
            have_warmup = warmup_penalty > 0.0
            warmed = [False] * n_workers
            view = None
            specs = None
        else:
            backend.reset(rng, n_workers)
            backend_duration = backend.duration
            view = _NodeView()
            specs = soa.specs
            tf_kind = tf_a = tf_b = zs = zs_arr = None
            have_warmup = False
        zpos = 0

        sched.setup(())
        if n_nodes == 0:
            m.makespan = trace.makespan
            m.wall_time_s = time.perf_counter() - wall_start
            return trace

        # The compiled core covers exactly the probe-free sweep-transform
        # configuration: the whole event loop runs in C over the flat
        # arrays, and only the lazy column trace crosses back.
        if sweep is not None and probe is None and _c_run is not None:
            return self._run_compiled(tf_kind, tf_a, tf_b, zs_arr, warmup_penalty, wall_start)
        if zs_arr is not None:
            zs = zs_arr.tolist()

        # Flat run state (lists: scalar indexing beats numpy in the loop).
        state = [NOT_INSERTED] * n_nodes
        deps_left = soa.n_preds.tolist()
        succ_ptr = soa.succ_indptr.tolist()
        succ_ids = soa.succ_indices.tolist()
        widths = soa.widths.tolist()
        preds_tuples = soa.preds_tuples
        worker_of = [-1] * n_nodes
        start_t = [0.0] * n_nodes
        end_t = [0.0] * n_nodes
        math_exp = math.exp
        isfinite = math.isfinite
        release = _release_successors

        cal = CalendarQueue()
        cal_push = cal.push
        cal_pop = cal.pop
        q_push, q_pop = self._make_ready_queue()

        # Scheduler constants.
        master_is_worker = sched.master_is_worker
        window = sched.window
        insert_cost = sched.insert_cost
        dispatch_overhead = sched.dispatch_overhead
        completion_cost = sched.completion_cost
        all_narrow = soa.max_width == 1
        if soa.max_width > n_workers:
            # Same failure mode as the object engine's insert-time check,
            # surfaced with the first offending task.
            for tid in range(n_nodes):
                if widths[tid] > n_workers:
                    raise ValueError(
                        f"task {tid} (width {widths[tid]}) requires "
                        f"{widths[tid]} workers but the runtime has {n_workers}"
                    )

        # Clock, workers, counters — mirrors of the object engine's fields.
        now = 0.0
        running = [False] * n_workers
        n_running = 0
        idle = list(range(n_workers))
        next_insert = 0
        in_flight = 0
        n_done = 0
        insert_pending = False
        window_stalled = False
        master_free = 0.0
        master_debt = 0.0
        pending_wide = -1
        n_ready = 0
        heap_pushes = 0
        heap_pops = 0
        heap_size = 0
        peak_heap = 0
        peak_ready = 0
        events = 0
        insert_events = 0
        finish_events = 0
        window_stalls = 0
        dispatch_stalls = 0
        tasks_executed = 0
        trace_cols: List[Tuple[int, int, float, float]] = []

        def maybe_start_insertion() -> None:
            """Mirror of Engine._maybe_start_insertion on flat state."""
            nonlocal window_stalls, window_stalled, master_debt
            nonlocal insert_pending, master_free, heap_pushes, heap_size, peak_heap
            if next_insert >= n_nodes:
                return
            if in_flight >= window:
                if not window_stalled:
                    window_stalls += 1
                    window_stalled = True
                    if probe is not None:
                        probe.window_stall(now, True)
                return
            if window_stalled and probe is not None:
                probe.window_stall(now, False)
            window_stalled = False
            if insert_pending:
                return
            if master_is_worker:
                if running[0]:
                    return
                t_ins = now + master_debt + insert_cost
            else:
                avail = now if now >= master_free else master_free
                t_ins = avail + master_debt + insert_cost
                master_free = t_ins
            master_debt = 0.0
            insert_pending = True
            cal_push(t_ins, -1)
            heap_pushes += 1
            heap_size += 1
            if heap_size > peak_heap:
                peak_heap = heap_size

        def assign(tid: int, worker: int) -> None:
            """Mirror of Engine._assign: place ``tid`` on ``worker`` now."""
            nonlocal master_debt, n_running, tasks_executed, zpos
            nonlocal heap_pushes, heap_size, peak_heap
            if state[tid] != READY:
                raise RuntimeError(f"dispatching task {tid} in state {state[tid]}")
            state[tid] = RUNNING
            worker_of[tid] = worker
            start = now + dispatch_overhead
            if master_is_worker and worker == 0 and master_debt > 0.0:
                start += master_debt
                master_debt = 0.0
            w = widths[tid]
            if tf_kind is not None:
                k = kids[tid]
                kind = tf_kind[k]
                if kind == 0:
                    d = tf_a[k]
                elif kind == 1:
                    d = tf_a[k] + tf_b[k] * zs[zpos]
                    zpos += 1
                    if d < 1e-9:
                        d = 1e-9
                else:
                    d = math_exp(tf_a[k] + tf_b[k] * zs[zpos])
                    zpos += 1
                    if d < 1e-9:
                        d = 1e-9
                if have_warmup and not warmed[worker]:
                    warmed[worker] = True
                    d += warmup_penalty
            else:
                view.spec = specs[tid]
                d = backend_duration(view, worker, start, n_running + w)
            if d < 0.0 or not isfinite(d):
                raise ValueError(f"backend produced invalid duration {d!r} for task {tid}")
            start_t[tid] = start
            end = start + d
            end_t[tid] = end
            if w == 1:
                running[worker] = True
                idle.remove(worker)
            else:
                for ww in range(worker, worker + w):
                    running[ww] = True
                    idle.remove(ww)
            n_running += w
            tasks_executed += 1
            if probe is not None:
                probe.task_dispatched(now, tid, worker, start, w)
            trace_cols.append((worker, tid, start, end))
            cal_push(end, tid)
            heap_pushes += 1
            heap_size += 1
            if heap_size > peak_heap:
                peak_heap = heap_size

        def gang_start(width: int) -> int:
            """Mirror of Engine._gang_start: lowest eligible contiguous run."""
            if master_is_worker:
                master_ok = not insert_pending and (
                    next_insert >= n_nodes or in_flight >= window
                )
            else:
                master_ok = True
            run_start = -1
            run_len = 0
            prev = -2
            for worker in idle:
                if running[worker] or (worker == 0 and not master_ok):
                    prev = -2
                    continue
                if worker == prev + 1 and run_len > 0:
                    run_len += 1
                else:
                    run_start, run_len = worker, 1
                if run_len == width:
                    return run_start
                prev = worker
            return -1

        def dispatch_sweep() -> None:
            """Mirror of Engine._dispatch_sweep on flat state."""
            nonlocal pending_wide, n_ready, dispatch_stalls
            while idle:
                if pending_wide >= 0:
                    # Head-of-line blocking for the gang at the queue front.
                    start = gang_start(widths[pending_wide])
                    if start < 0:
                        dispatch_stalls += 1
                        return
                    wide, pending_wide = pending_wide, -1
                    assign(wide, start)
                    continue
                if n_ready == 0:
                    return
                master_blocked = master_is_worker and (
                    insert_pending or (next_insert < n_nodes and in_flight < window)
                )
                progress = False
                for worker in list(idle):
                    if running[worker] or (master_blocked and worker == 0):
                        continue
                    tid = q_pop(worker)
                    if tid < 0:
                        if n_ready == 0:
                            return
                        continue
                    n_ready -= 1
                    if not all_narrow and widths[tid] > 1:
                        pending_wide = tid
                        progress = True
                        break
                    assign(tid, worker)
                    progress = True
                    if n_ready == 0:
                        return
                if not progress:
                    dispatch_stalls += 1
                    break

        maybe_start_insertion()

        while cal.size:
            t, payload = cal_pop()
            heap_pops += 1
            heap_size -= 1
            events += 1
            if t < now - 1e-12:
                raise RuntimeError(f"event time went backwards: {t} < {now}")
            if t > now:
                now = t
            if payload < 0:
                # INSERT: the master commits the next task in stream order.
                insert_events += 1
                insert_pending = False
                tid = next_insert
                next_insert += 1
                in_flight += 1
                outstanding = deps_left[tid]
                if probe is not None:
                    probe.task_deps(tid, preds_tuples[tid])
                    probe.task_inserted(now, tid, outstanding)
                if outstanding == 0:
                    state[tid] = READY
                    n_ready += 1
                    if n_ready > peak_ready:
                        peak_ready = n_ready
                    q_push(tid, -1)
                    if probe is not None:
                        probe.task_ready(now, tid)
                else:
                    state[tid] = WAITING
            else:
                # FINISH: free the task's workers, release its successors.
                finish_events += 1
                tid = payload
                worker = worker_of[tid]
                state[tid] = DONE
                w = widths[tid]
                if w == 1:
                    running[worker] = False
                    insort(idle, worker)
                else:
                    for ww in range(worker, worker + w):
                        running[ww] = False
                        insort(idle, ww)
                n_running -= w
                in_flight -= 1
                n_done += 1
                master_debt += completion_cost
                if probe is not None:
                    probe.task_finished(now, tid, worker, w)
                lo = succ_ptr[tid]
                hi = succ_ptr[tid + 1]
                if lo != hi:
                    for s in release(succ_ids, deps_left, state, lo, hi):
                        n_ready += 1
                        if n_ready > peak_ready:
                            peak_ready = n_ready
                        q_push(s, worker)
                        if probe is not None:
                            probe.task_ready(now, s)
            maybe_start_insertion()
            if probe is None:
                dispatch_sweep()
            else:
                before = tasks_executed
                dispatch_sweep()
                probe.dispatch_sweep(now, tasks_executed - before, n_ready)

        if n_done != n_nodes:
            stuck = [tid for tid in range(n_nodes) if state[tid] != DONE]
            raise RuntimeError(
                f"simulation ended with {len(stuck)} unfinished task(s): {stuck[:10]}"
            )

        # Hand the dispatch-order columns to a lazy trace: event objects are
        # only built if something actually reads them.
        if trace_cols:
            col_workers, col_tids, col_starts, col_ends = zip(*trace_cols)
        else:
            col_workers = col_tids = col_starts = col_ends = ()
        trace = ColumnTrace(
            n_workers=n_workers,
            meta=trace.meta,
            col_workers=col_workers,
            col_task_ids=col_tids,
            col_starts=col_starts,
            col_ends=col_ends,
            kernel_names=soa.kernel_names,
            kernel_ids=kids,
            labels=soa.labels,
            widths=widths,
        )
        self.trace = trace

        m.events_processed = events
        m.insert_events = insert_events
        m.finish_events = finish_events
        m.heap_pushes = heap_pushes
        m.heap_pops = heap_pops
        m.peak_heap_depth = peak_heap
        m.window_stalls = window_stalls
        m.dispatch_stalls = dispatch_stalls
        m.tasks_executed = tasks_executed
        m.peak_ready_depth = peak_ready
        m.makespan = trace.makespan
        m.wall_time_s = time.perf_counter() - wall_start
        return trace

    # -- compiled fast path -------------------------------------------------
    def _queue_layout(self) -> Tuple[int, int]:
        """``(queue_kind, bounce_enabled)`` codes for the C core.

        Queue kinds: 0 FIFO, 1 priority (FIFO tie-break), 2 LIFO — the
        same three structures :meth:`_make_ready_queue` builds in Python.
        """
        sched = self.sched
        kind = type(sched)
        if kind is QuarkScheduler:
            return (1 if sched.queue_kind == "priority" else 2), 0
        if kind is StarPUScheduler:
            return (0 if sched.policy == "eager" else 1), 0
        # OmpSs: central fifo/priority queue, optional bounce slots.
        qk = 0 if sched.queue_kind == "fifo" else 1
        return qk, (1 if sched.immediate_successor else 0)

    def _run_compiled(
        self,
        tf_kind: List[int],
        tf_a: List[float],
        tf_b: List[float],
        zs: np.ndarray,
        warmup_penalty: float,
        wall_start: float,
    ) -> Trace:
        """Run the whole serialized loop inside the C core."""
        m = self.metrics
        soa = self.soa
        sched = self.sched
        n = soa.n_tasks
        n_workers = self.n_workers
        if soa.max_width > n_workers:
            widths = soa.widths
            for tid in range(n):
                if widths[tid] > n_workers:
                    raise ValueError(
                        f"task {tid} (width {int(widths[tid])}) requires "
                        f"{int(widths[tid])} workers but the runtime has "
                        f"{n_workers}"
                    )
        qk, bounce = self._queue_layout()
        deps = soa.n_preds.copy()
        out_worker = np.empty(n, dtype=np.int32)
        out_tid = np.empty(n, dtype=np.int32)
        out_start = np.empty(n, dtype=np.float64)
        out_end = np.empty(n, dtype=np.float64)
        counters = np.zeros(N_COUNTERS, dtype=np.int64)
        if zs.size == 0:
            zs = np.zeros(1, dtype=np.float64)  # never dereferenced
        rc = _c_run(
            n,
            n_workers,
            soa.kernel_ids,
            soa.widths,
            soa.priorities,
            deps,
            soa.succ_indptr,
            soa.succ_indices,
            np.asarray(tf_kind, dtype=np.int32),
            np.asarray(tf_a, dtype=np.float64),
            np.asarray(tf_b, dtype=np.float64),
            zs,
            float(warmup_penalty),
            1 if sched.master_is_worker else 0,
            sched.window,
            sched.insert_cost,
            sched.dispatch_overhead,
            sched.completion_cost,
            qk,
            bounce,
            out_worker,
            out_tid,
            out_start,
            out_end,
            counters,
        )
        if rc == 1:
            raise ValueError(
                f"backend produced invalid duration for task {int(counters[11])}"
            )
        if rc == 2:
            raise RuntimeError(
                f"simulation ended with {int(counters[11])} unfinished task(s)"
            )
        if rc != 0:  # pragma: no cover - allocation failure
            raise MemoryError("array core failed to allocate run state")
        trace = ColumnTrace(
            n_workers=n_workers,
            meta=self.trace.meta,
            col_workers=out_worker,
            col_task_ids=out_tid,
            col_starts=out_start,
            col_ends=out_end,
            kernel_names=soa.kernel_names,
            kernel_ids=soa.kernel_ids,
            labels=soa.labels,
            widths=soa.widths,
        )
        self.trace = trace
        m.events_processed = int(counters[0])
        m.insert_events = int(counters[1])
        m.finish_events = int(counters[2])
        m.heap_pushes = int(counters[3])
        m.heap_pops = int(counters[4])
        m.peak_heap_depth = int(counters[5])
        m.window_stalls = int(counters[6])
        m.dispatch_stalls = int(counters[7])
        m.tasks_executed = int(counters[8])
        m.peak_ready_depth = int(counters[9])
        m.makespan = trace.makespan
        m.wall_time_s = time.perf_counter() - wall_start
        return trace
