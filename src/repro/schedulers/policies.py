"""Ready-queue disciplines and performance models shared by the runtimes.

All containers are deterministic: ties break on insertion sequence, never on
hash order or object identity, so whole runs replay exactly.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .base import TaskNode

__all__ = [
    "FifoQueue",
    "LifoQueue",
    "PriorityQueue",
    "WorkStealingDeques",
    "HistoryPerfModel",
]


class FifoQueue:
    """Plain FIFO ready queue (StarPU's ``eager`` central queue)."""

    def __init__(self) -> None:
        self._q: Deque[TaskNode] = deque()

    def push(self, node: TaskNode) -> None:
        self._q.append(node)

    def pop(self) -> Optional[TaskNode]:
        return self._q.popleft() if self._q else None

    def __len__(self) -> int:
        return len(self._q)


class LifoQueue:
    """LIFO ready queue — favours depth-first, cache-warm execution."""

    def __init__(self) -> None:
        self._q: List[TaskNode] = []

    def push(self, node: TaskNode) -> None:
        self._q.append(node)

    def pop(self) -> Optional[TaskNode]:
        return self._q.pop() if self._q else None

    def __len__(self) -> int:
        return len(self._q)


class PriorityQueue:
    """Priority ready queue: higher ``TaskSpec.priority`` first, FIFO ties.

    QUARK's ``TASK_PRIORITY`` semantics: the tile algorithms give panel
    kernels larger priorities so the critical path is favoured.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, TaskNode]] = []
        self._seq = itertools.count()

    def push(self, node: TaskNode) -> None:
        heapq.heappush(self._heap, (-node.priority, next(self._seq), node))

    def pop(self) -> Optional[TaskNode]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class WorkStealingDeques:
    """Per-worker deques with deterministic stealing (StarPU ``ws``).

    Owners push and pop at the front (LIFO, locality); thieves steal from the
    back (FIFO, oldest task) of the *richest* victim, lowest id breaking
    ties.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self._deques: List[Deque[TaskNode]] = [deque() for _ in range(n_workers)]

    def push(self, worker: int, node: TaskNode) -> None:
        self._deques[worker].appendleft(node)

    def pop_local(self, worker: int) -> Optional[TaskNode]:
        dq = self._deques[worker]
        return dq.popleft() if dq else None

    def steal(self, thief: int) -> Optional[TaskNode]:
        victim = -1
        richest = 0
        for w, dq in enumerate(self._deques):
            if w != thief and len(dq) > richest:
                victim, richest = w, len(dq)
        if victim < 0:
            return None
        return self._deques[victim].pop()

    def pop(self, worker: int) -> Optional[TaskNode]:
        node = self.pop_local(worker)
        return node if node is not None else self.steal(worker)

    def __len__(self) -> int:
        return sum(len(dq) for dq in self._deques)

    def queue_length(self, worker: int) -> int:
        return len(self._deques[worker])


class HistoryPerfModel:
    """Online per-kernel mean execution time (StarPU's history model).

    StarPU "profiles each task execution and uses historical runtime data to
    schedule tasks" — this is that model: a running mean per kernel class,
    updated on every completion, with a configurable prior for kernels never
    seen before.
    """

    def __init__(self, default: float = 100e-6) -> None:
        if default <= 0:
            raise ValueError("default expected duration must be positive")
        self.default = default
        self._count: Dict[str, int] = {}
        self._mean: Dict[str, float] = {}

    def update(self, kernel: str, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        n = self._count.get(kernel, 0) + 1
        mean = self._mean.get(kernel, 0.0)
        self._count[kernel] = n
        self._mean[kernel] = mean + (duration - mean) / n

    def expected(self, kernel: str) -> float:
        return self._mean.get(kernel, self.default)

    def observations(self, kernel: str) -> int:
        return self._count.get(kernel, 0)
