"""Pure-Python hot-loop kernels for the array engine.

A Cython twin of this module lives in ``_array_kernels.pyx``; when a
compiled extension (``repro.schedulers._array_kernels_c``) has been built
it is preferred, otherwise these implementations are used as-is.  Both
variants must stay behaviourally identical — the array engine's trace
byte-identity guarantee covers whichever one is loaded.  See
``docs/API.md`` ("Array-native core") for the build recipe.
"""

from __future__ import annotations

from typing import List

__all__ = ["USING_COMPILED", "release_successors"]

#: True when the loaded implementation is the compiled extension.
USING_COMPILED = False


def release_successors(
    succ_ids: List[int],
    deps_left: List[int],
    state: List[int],
    lo: int,
    hi: int,
) -> List[int]:
    """Decrement dependency counts for one finished task's successors.

    ``succ_ids[lo:hi]`` is the finished task's CSR successor slice in
    ascending task id.  Every successor's count drops by one — including
    not-yet-inserted ones, whose insertion-time outstanding count is read
    from ``deps_left`` — and successors that reach zero while WAITING
    (state 1) flip to READY (state 2) and are returned in slice order,
    which is the order the object engine pushes them ready.
    """
    out: List[int] = []
    for i in range(lo, hi):
        s = succ_ids[i]
        d = deps_left[s] - 1
        deps_left[s] = d
        if d == 0 and state[s] == 1:
            state[s] = 2
            out.append(s)
    return out
