/* Compiled core of the array-native engine (optional acceleration).
 *
 * This is a line-for-line transliteration of the pure-Python event loop in
 * repro/schedulers/array_engine.py, specialised to the no-probe simulation
 * fast path: durations come from a pre-drawn standard-normal stream plus
 * per-kernel closed-form transforms, so the whole run executes without a
 * single Python-level operation.  Every floating-point expression keeps the
 * exact operation order of the Python code (build with -ffp-contract=off so
 * no FMA contraction changes rounding) and the event set pops in the same
 * (time, push-sequence) order, which keeps traces byte-identical to both
 * the pure-Python array engine and the object engine.
 *
 * Deliberately free of Python.h: the library is built with a plain C
 * compiler (tools/build_array_core.py) and loaded through ctypes, so no
 * Cython/mypyc toolchain is required and the pure-Python loop remains the
 * always-available fallback.
 *
 * Queue kinds: 0 = FIFO (StarPU eager, OmpSs fifo), 1 = priority heap with
 * FIFO tie-break (QUARK priority, StarPU prio, OmpSs priority),
 * 2 = LIFO (QUARK lifo).  bounce_enabled adds the OmpSs immediate-successor
 * bounce slots on top of the central queue.
 *
 * Return codes: 0 ok; 1 invalid duration (counters[11] = task id);
 * 2 unfinished tasks (counters[11] = count); 3 allocation failure.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Task states — must match repro.core.soa. */
#define ST_NOT_INSERTED 0
#define ST_WAITING 1
#define ST_READY 2
#define ST_RUNNING 3
#define ST_DONE 4

#define DURATION_FLOOR 1e-9

/* ---- event set: single-bucket calendar (sorted array, FIFO ties) ------- */
/* The pending-event population is bounded by one INSERT plus one FINISH
 * per running task (<= n_workers + 1), which is exactly the regime where
 * the CalendarQueue collapses to its single-bucket configuration: one
 * time-sorted array.  Kept sorted descending so the pop is O(1). */

typedef struct {
    double t;
    int64_t seq;
    int32_t payload;
} event_t;

typedef struct {
    event_t *buf;
    long len;
    int64_t seq;
} evq_t;

static int ev_before(const event_t *a, const event_t *b) {
    return a->t < b->t || (a->t == b->t && a->seq < b->seq);
}

static void evq_push(evq_t *q, double t, int32_t payload) {
    event_t e;
    long lo = 0, hi = q->len, mid;
    e.t = t;
    e.seq = q->seq++;
    e.payload = payload;
    /* buf is sorted descending by (t, seq); find the insertion point. */
    while (lo < hi) {
        mid = (lo + hi) / 2;
        if (ev_before(&e, &q->buf[mid]))
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(&q->buf[lo + 1], &q->buf[lo], (q->len - lo) * sizeof(event_t));
    q->buf[lo] = e;
    q->len++;
}

static event_t evq_pop(evq_t *q) {
    return q->buf[--q->len];
}

/* ---- ready queues ------------------------------------------------------ */

typedef struct {
    int64_t prio;
    int64_t seq;
    int32_t tid;
} rq_entry_t;

static int rq_before(const rq_entry_t *a, const rq_entry_t *b) {
    /* Higher priority first; FIFO among equals — matches PriorityQueue's
     * (-priority, seq) heap entries. */
    return a->prio > b->prio || (a->prio == b->prio && a->seq < b->seq);
}

typedef struct {
    rq_entry_t *heap;
    long heap_len;
    int64_t heap_seq;
    int32_t *ring; /* FIFO / LIFO storage */
    long ring_cap, head, tail;
} readyq_t;

static void heap_push(readyq_t *q, int64_t prio, int32_t tid) {
    long i = q->heap_len++, parent;
    rq_entry_t e;
    e.prio = prio;
    e.seq = q->heap_seq++;
    e.tid = tid;
    while (i > 0) {
        parent = (i - 1) / 2;
        if (!rq_before(&e, &q->heap[parent]))
            break;
        q->heap[i] = q->heap[parent];
        i = parent;
    }
    q->heap[i] = e;
}

static int32_t heap_pop(readyq_t *q) {
    int32_t top = q->heap[0].tid;
    rq_entry_t last = q->heap[--q->heap_len];
    long i = 0, child;
    long n = q->heap_len;
    while (1) {
        child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && rq_before(&q->heap[child + 1], &q->heap[child]))
            child++;
        if (!rq_before(&q->heap[child], &last))
            break;
        q->heap[i] = q->heap[child];
        i = child;
    }
    if (n > 0)
        q->heap[i] = last;
    return top;
}

/* Per-worker OmpSs bounce slot: FIFO list with a head index. */
typedef struct {
    int32_t *buf;
    long cap, head, tail;
} bounce_t;

static int bounce_append(bounce_t *b, int32_t tid) {
    if (b->tail == b->cap) {
        long used = b->tail - b->head;
        if (b->head > 0) {
            memmove(b->buf, &b->buf[b->head], used * sizeof(int32_t));
            b->head = 0;
            b->tail = used;
        } else {
            long cap = b->cap ? b->cap * 2 : 8;
            int32_t *nb = (int32_t *)realloc(b->buf, cap * sizeof(int32_t));
            if (!nb)
                return -1;
            b->buf = nb;
            b->cap = cap;
        }
    }
    b->buf[b->tail++] = tid;
    return 0;
}

/* ---- the simulation ---------------------------------------------------- */

typedef struct {
    /* program */
    int64_t n_tasks;
    int32_t n_workers;
    const int32_t *kernel_ids;
    const int32_t *widths;
    const int64_t *priorities;
    int64_t *deps_left;
    const int64_t *succ_indptr;
    const int32_t *succ_indices;
    /* durations */
    const int32_t *tf_kind;
    const double *tf_a;
    const double *tf_b;
    const double *zs;
    int64_t zpos;
    double warmup_penalty;
    int have_warmup;
    /* scheduler constants */
    int master_is_worker;
    int64_t window;
    double insert_cost, dispatch_overhead, completion_cost;
    int queue_kind, bounce_enabled;
    /* run state */
    double now, master_free, master_debt;
    int64_t next_insert, in_flight, n_done;
    int insert_pending, window_stalled;
    int64_t n_ready;
    int32_t pending_wide; /* task id or -1 */
    uint8_t *state;
    uint8_t *running;
    uint8_t *warmed;
    int32_t *worker_of;
    double *end_of;
    int32_t *idle; /* sorted ascending */
    long n_idle;
    int32_t *scratch; /* sweep's copy of the idle list */
    evq_t evq;
    readyq_t rq;
    bounce_t *bounce;
    int64_t n_bounced;
    /* outputs */
    int32_t *out_worker;
    int32_t *out_tid;
    double *out_start;
    double *out_end;
    int64_t n_out;
    /* counters */
    int64_t heap_pushes, heap_pops, heap_size, peak_heap;
    int64_t events, insert_events, finish_events;
    int64_t window_stalls, dispatch_stalls, tasks_executed, peak_ready;
    int error_tid;
} sim_t;

static void idle_remove(sim_t *s, int32_t worker) {
    long lo = 0, hi = s->n_idle, mid;
    while (lo < hi) {
        mid = (lo + hi) / 2;
        if (s->idle[mid] < worker)
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(&s->idle[lo], &s->idle[lo + 1], (s->n_idle - lo - 1) * sizeof(int32_t));
    s->n_idle--;
}

static void idle_insort(sim_t *s, int32_t worker) {
    long lo = 0, hi = s->n_idle, mid;
    while (lo < hi) {
        mid = (lo + hi) / 2;
        if (s->idle[mid] < worker)
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(&s->idle[lo + 1], &s->idle[lo], (s->n_idle - lo) * sizeof(int32_t));
    s->idle[lo] = worker;
    s->n_idle++;
}

static void q_push(sim_t *s, int32_t tid, int32_t releasing_worker) {
    if (s->bounce_enabled && releasing_worker >= 0) {
        bounce_append(&s->bounce[releasing_worker], tid);
        s->n_bounced++;
        return;
    }
    switch (s->queue_kind) {
    case 1:
        heap_push(&s->rq, s->priorities[tid], tid);
        break;
    case 2:
        s->rq.ring[s->rq.tail++] = tid; /* LIFO stack via tail */
        break;
    default:
        s->rq.ring[s->rq.tail++] = tid; /* FIFO ring (never wraps: cap = n) */
        break;
    }
}

static int32_t q_pop(sim_t *s, int32_t worker) {
    int32_t tid = -1;
    if (s->bounce_enabled) {
        bounce_t *own = &s->bounce[worker];
        if (own->tail > own->head) {
            s->n_bounced--;
            return own->buf[own->head++];
        }
    }
    switch (s->queue_kind) {
    case 1:
        if (s->rq.heap_len > 0)
            tid = heap_pop(&s->rq);
        break;
    case 2:
        if (s->rq.tail > s->rq.head)
            tid = s->rq.ring[--s->rq.tail];
        break;
    default:
        if (s->rq.tail > s->rq.head)
            tid = s->rq.ring[s->rq.head++];
        break;
    }
    if (tid < 0 && s->bounce_enabled && s->n_bounced > 0) {
        /* Drain unclaimed bounce slots in worker order, exactly like
         * OmpSsScheduler.pop_ready. */
        int32_t w;
        for (w = 0; w < s->n_workers; w++) {
            bounce_t *b = &s->bounce[w];
            if (b->tail > b->head) {
                s->n_bounced--;
                return b->buf[b->head++];
            }
        }
    }
    return tid;
}

static void maybe_start_insertion(sim_t *s) {
    double t_ins, avail;
    if (s->next_insert >= s->n_tasks)
        return;
    if (s->in_flight >= s->window) {
        if (!s->window_stalled) {
            s->window_stalls++;
            s->window_stalled = 1;
        }
        return;
    }
    s->window_stalled = 0;
    if (s->insert_pending)
        return;
    if (s->master_is_worker) {
        if (s->running[0])
            return;
        t_ins = s->now + s->master_debt + s->insert_cost;
    } else {
        avail = s->now >= s->master_free ? s->now : s->master_free;
        t_ins = avail + s->master_debt + s->insert_cost;
        s->master_free = t_ins;
    }
    s->master_debt = 0.0;
    s->insert_pending = 1;
    evq_push(&s->evq, t_ins, -1);
    s->heap_pushes++;
    if (++s->heap_size > s->peak_heap)
        s->peak_heap = s->heap_size;
}

static int assign(sim_t *s, int32_t tid, int32_t worker) {
    double start, d, end;
    int32_t w = s->widths[tid], k, kind, ww;
    s->state[tid] = ST_RUNNING;
    s->worker_of[tid] = worker;
    start = s->now + s->dispatch_overhead;
    if (s->master_is_worker && worker == 0 && s->master_debt > 0.0) {
        start += s->master_debt;
        s->master_debt = 0.0;
    }
    k = s->kernel_ids[tid];
    kind = s->tf_kind[k];
    if (kind == 0) {
        d = s->tf_a[k];
    } else if (kind == 1) {
        d = s->tf_a[k] + s->tf_b[k] * s->zs[s->zpos++];
        if (d < DURATION_FLOOR)
            d = DURATION_FLOOR;
    } else {
        d = exp(s->tf_a[k] + s->tf_b[k] * s->zs[s->zpos++]);
        if (d < DURATION_FLOOR)
            d = DURATION_FLOOR;
    }
    if (s->have_warmup && !s->warmed[worker]) {
        s->warmed[worker] = 1;
        d += s->warmup_penalty;
    }
    if (!(d >= 0.0) || !isfinite(d)) {
        s->error_tid = tid;
        return 1;
    }
    end = start + d;
    s->end_of[tid] = end;
    if (w == 1) {
        s->running[worker] = 1;
        idle_remove(s, worker);
    } else {
        for (ww = worker; ww < worker + w; ww++) {
            s->running[ww] = 1;
            idle_remove(s, ww);
        }
    }
    s->tasks_executed++;
    s->out_worker[s->n_out] = worker;
    s->out_tid[s->n_out] = tid;
    s->out_start[s->n_out] = start;
    s->out_end[s->n_out] = end;
    s->n_out++;
    evq_push(&s->evq, end, tid);
    s->heap_pushes++;
    if (++s->heap_size > s->peak_heap)
        s->peak_heap = s->heap_size;
    return 0;
}

static int32_t gang_start(sim_t *s, int32_t width) {
    int master_ok = 1;
    int32_t run_start = -1, prev = -2, worker;
    int32_t run_len = 0;
    long i;
    if (s->master_is_worker)
        master_ok = !s->insert_pending &&
                    (s->next_insert >= s->n_tasks || s->in_flight >= s->window);
    for (i = 0; i < s->n_idle; i++) {
        worker = s->idle[i];
        if (s->running[worker] || (worker == 0 && !master_ok)) {
            prev = -2;
            continue;
        }
        if (worker == prev + 1 && run_len > 0)
            run_len++;
        else {
            run_start = worker;
            run_len = 1;
        }
        if (run_len == width)
            return run_start;
        prev = worker;
    }
    return -1;
}

static int dispatch_sweep(sim_t *s) {
    int32_t tid, worker, start, wide;
    int master_blocked, progress;
    long i, n;
    while (s->n_idle > 0) {
        if (s->pending_wide >= 0) {
            start = gang_start(s, s->widths[s->pending_wide]);
            if (start < 0) {
                s->dispatch_stalls++;
                return 0;
            }
            wide = s->pending_wide;
            s->pending_wide = -1;
            if (assign(s, wide, start))
                return 1;
            continue;
        }
        if (s->n_ready == 0)
            return 0;
        master_blocked =
            s->master_is_worker &&
            (s->insert_pending ||
             (s->next_insert < s->n_tasks && s->in_flight < s->window));
        progress = 0;
        n = s->n_idle;
        memcpy(s->scratch, s->idle, n * sizeof(int32_t));
        for (i = 0; i < n; i++) {
            worker = s->scratch[i];
            if (s->running[worker] || (master_blocked && worker == 0))
                continue;
            tid = q_pop(s, worker);
            if (tid < 0) {
                if (s->n_ready == 0)
                    return 0;
                continue;
            }
            s->n_ready--;
            if (s->widths[tid] > 1) {
                s->pending_wide = tid;
                progress = 1;
                break;
            }
            if (assign(s, tid, worker))
                return 1;
            progress = 1;
            if (s->n_ready == 0)
                return 0;
        }
        if (!progress) {
            s->dispatch_stalls++;
            break;
        }
    }
    return 0;
}

int repro_run_serialized(
    int64_t n_tasks, int32_t n_workers,
    const int32_t *kernel_ids, const int32_t *widths, const int64_t *priorities,
    int64_t *deps_left, const int64_t *succ_indptr, const int32_t *succ_indices,
    const int32_t *tf_kind, const double *tf_a, const double *tf_b,
    const double *zs, double warmup_penalty,
    int32_t master_is_worker, int64_t window,
    double insert_cost, double dispatch_overhead, double completion_cost,
    int32_t queue_kind, int32_t bounce_enabled,
    int32_t *out_worker, int32_t *out_tid, double *out_start, double *out_end,
    int64_t *counters)
{
    sim_t s;
    event_t ev;
    int rc = 0;
    int32_t tid, worker, w, ww, sid;
    int64_t lo, hi, i, d;

    memset(&s, 0, sizeof(s));
    s.n_tasks = n_tasks;
    s.n_workers = n_workers;
    s.kernel_ids = kernel_ids;
    s.widths = widths;
    s.priorities = priorities;
    s.deps_left = deps_left;
    s.succ_indptr = succ_indptr;
    s.succ_indices = succ_indices;
    s.tf_kind = tf_kind;
    s.tf_a = tf_a;
    s.tf_b = tf_b;
    s.zs = zs;
    s.warmup_penalty = warmup_penalty;
    s.have_warmup = warmup_penalty > 0.0;
    s.master_is_worker = master_is_worker;
    s.window = window;
    s.insert_cost = insert_cost;
    s.dispatch_overhead = dispatch_overhead;
    s.completion_cost = completion_cost;
    s.queue_kind = queue_kind;
    s.bounce_enabled = bounce_enabled;
    s.pending_wide = -1;
    s.error_tid = -1;
    s.out_worker = out_worker;
    s.out_tid = out_tid;
    s.out_start = out_start;
    s.out_end = out_end;

    s.state = (uint8_t *)calloc(n_tasks ? n_tasks : 1, 1);
    s.running = (uint8_t *)calloc(n_workers, 1);
    s.warmed = (uint8_t *)calloc(n_workers, 1);
    s.worker_of = (int32_t *)malloc((n_tasks ? n_tasks : 1) * sizeof(int32_t));
    s.end_of = (double *)malloc((n_tasks ? n_tasks : 1) * sizeof(double));
    s.idle = (int32_t *)malloc(n_workers * sizeof(int32_t));
    s.scratch = (int32_t *)malloc(n_workers * sizeof(int32_t));
    s.evq.buf = (event_t *)malloc((n_workers + 2) * sizeof(event_t));
    s.rq.heap = NULL;
    s.rq.ring = NULL;
    if (queue_kind == 1)
        s.rq.heap = (rq_entry_t *)malloc((n_tasks ? n_tasks : 1) * sizeof(rq_entry_t));
    else
        s.rq.ring = (int32_t *)malloc((n_tasks ? n_tasks : 1) * sizeof(int32_t));
    if (bounce_enabled)
        s.bounce = (bounce_t *)calloc(n_workers, sizeof(bounce_t));
    if (!s.state || !s.running || !s.warmed || !s.worker_of || !s.end_of ||
        !s.idle || !s.scratch || !s.evq.buf ||
        (queue_kind == 1 ? !s.rq.heap : !s.rq.ring) ||
        (bounce_enabled && !s.bounce)) {
        rc = 3;
        goto done;
    }
    for (worker = 0; worker < n_workers; worker++)
        s.idle[worker] = worker;
    s.n_idle = n_workers;

    maybe_start_insertion(&s);

    while (s.evq.len > 0) {
        ev = evq_pop(&s.evq);
        s.heap_pops++;
        s.heap_size--;
        s.events++;
        if (ev.t > s.now)
            s.now = ev.t;
        if (ev.payload < 0) {
            /* INSERT: the master commits the next task in stream order. */
            s.insert_events++;
            s.insert_pending = 0;
            tid = (int32_t)s.next_insert;
            s.next_insert++;
            s.in_flight++;
            if (s.deps_left[tid] == 0) {
                s.state[tid] = ST_READY;
                if (++s.n_ready > s.peak_ready)
                    s.peak_ready = s.n_ready;
                q_push(&s, tid, -1);
            } else {
                s.state[tid] = ST_WAITING;
            }
        } else {
            /* FINISH: free the task's workers, release its successors. */
            s.finish_events++;
            tid = ev.payload;
            worker = s.worker_of[tid];
            s.state[tid] = ST_DONE;
            w = s.widths[tid];
            if (w == 1) {
                s.running[worker] = 0;
                idle_insort(&s, worker);
            } else {
                for (ww = worker; ww < worker + w; ww++) {
                    s.running[ww] = 0;
                    idle_insort(&s, ww);
                }
            }
            s.in_flight--;
            s.n_done++;
            s.master_debt += s.completion_cost;
            lo = succ_indptr[tid];
            hi = succ_indptr[tid + 1];
            for (i = lo; i < hi; i++) {
                sid = succ_indices[i];
                d = --s.deps_left[sid];
                if (d == 0 && s.state[sid] == ST_WAITING) {
                    s.state[sid] = ST_READY;
                    if (++s.n_ready > s.peak_ready)
                        s.peak_ready = s.n_ready;
                    q_push(&s, sid, worker);
                }
            }
        }
        maybe_start_insertion(&s);
        if (dispatch_sweep(&s)) {
            rc = 1;
            goto done;
        }
    }

    if (s.n_done != n_tasks)
        rc = 2;

done:
    counters[0] = s.events;
    counters[1] = s.insert_events;
    counters[2] = s.finish_events;
    counters[3] = s.heap_pushes;
    counters[4] = s.heap_pops;
    counters[5] = s.peak_heap;
    counters[6] = s.window_stalls;
    counters[7] = s.dispatch_stalls;
    counters[8] = s.tasks_executed;
    counters[9] = s.peak_ready;
    counters[10] = s.n_out;
    counters[11] = rc == 1 ? s.error_tid : (rc == 2 ? n_tasks - s.n_done : 0);
    free(s.state);
    free(s.running);
    free(s.warmed);
    free(s.worker_of);
    free(s.end_of);
    free(s.idle);
    free(s.scratch);
    free(s.evq.buf);
    free(s.rq.heap);
    free(s.rq.ring);
    if (s.bounce) {
        for (worker = 0; worker < n_workers; worker++)
            free(s.bounce[worker].buf);
        free(s.bounce);
    }
    return rc;
}
