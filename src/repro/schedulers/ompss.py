"""OmpSs-like superscalar runtime (paper §IV-A1).

OmpSs (the StarSs/SMPSs lineage from the Barcelona Supercomputing Center) is
a compiler-based system: ``#pragma omp task in(...) out(...) inout(...)``
annotations are translated by the Mercurium source-to-source compiler into
calls to the Nanos++ runtime.  Reproduced here:

* a **decorator front-end** standing in for the pragmas: functions decorated
  with :func:`task` record their dependence annotations, and calling them
  inside a :class:`TaskContext` appends tasks to a program instead of
  executing anything — the serial-elaboration model of OmpSs;
* a **Nanos-like runtime**: dedicated submission thread, central ready
  queue (FIFO by default, priority optional — Nanos++ ships multiple
  throttle/queue plugins), and the *immediate successor* optimisation: a
  worker that releases the last dependence of a task may execute that task
  directly, skipping the queue (Nanos++'s locality-aware continuation).
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional, Sequence

from ..core.task import Access, AccessMode, DataRef, Program
from .base import SchedulerBase, TaskNode
from .policies import FifoQueue, PriorityQueue

__all__ = ["OmpSsScheduler", "task", "TaskContext"]


class OmpSsScheduler(SchedulerBase):
    """OmpSs/Nanos++: dedicated master, central queue, successor bypass."""

    name = "ompss"
    master_is_worker = False
    default_insert_cost = 2.5e-6
    default_dispatch_overhead = 2.0e-6
    default_window = 2048

    def __init__(
        self,
        n_workers: int,
        *,
        queue: str = "fifo",
        immediate_successor: bool = True,
        window: Optional[int] = None,
        insert_cost: Optional[float] = None,
        dispatch_overhead: Optional[float] = None,
        completion_cost: Optional[float] = None,
    ) -> None:
        super().__init__(
            n_workers,
            window=window,
            insert_cost=insert_cost,
            dispatch_overhead=dispatch_overhead,
            completion_cost=completion_cost,
        )
        if queue not in ("fifo", "priority"):
            raise ValueError(f"unknown OmpSs queue discipline {queue!r}")
        self.queue_kind = queue
        self.immediate_successor = immediate_successor
        self._central: Optional[object] = None
        self._bounce: Dict[int, List[TaskNode]] = {}
        self._n_ready = 0
        self._n_bounced = 0  # tasks sitting in bounce slots

    def setup(self, nodes: Sequence[TaskNode]) -> None:
        self._central = FifoQueue() if self.queue_kind == "fifo" else PriorityQueue()
        self._bounce = {}
        self._n_ready = 0
        self._n_bounced = 0

    def push_ready(self, node: TaskNode, releasing_worker: Optional[int]) -> None:
        self._n_ready += 1
        if self.immediate_successor and releasing_worker is not None:
            # Offer the task to the releasing worker first (it is idle at
            # this instant — it just finished the predecessor).
            self._bounce.setdefault(releasing_worker, []).append(node)
            self._n_bounced += 1
            return
        self._central.push(node)  # type: ignore[union-attr]

    def pop_ready(self, worker: int, now: float) -> Optional[TaskNode]:
        bounce = self._bounce.get(worker)
        if bounce:
            self._n_ready -= 1
            self._n_bounced -= 1
            return bounce.pop(0)
        node = self._central.pop()  # type: ignore[union-attr]
        if node is None and self._n_bounced > 0:
            # Drain other workers' unclaimed bounce slots so no task is lost
            # if its preferred worker picked up different work first.
            for w in sorted(self._bounce):
                if self._bounce[w]:
                    node = self._bounce[w].pop(0)
                    self._n_bounced -= 1
                    break
        if node is not None:
            self._n_ready -= 1
        return node

    def has_ready(self) -> bool:
        return self._n_ready > 0


class TaskContext:
    """Collects calls of :func:`task`-decorated functions into a program.

    Usage::

        ctx = TaskContext("my-algorithm")

        @task(inout=("a",))
        def kernel(a, flops=0.0):
            ...

        with ctx:
            kernel(ref_a)          # appends a task, does not execute

        program = ctx.program
    """

    _active: Optional["TaskContext"] = None

    def __init__(self, name: str, meta: Optional[Dict[str, object]] = None) -> None:
        self.program = Program(name, meta=meta)

    def __enter__(self) -> "TaskContext":
        if TaskContext._active is not None:
            raise RuntimeError("TaskContext does not nest")
        TaskContext._active = self
        return self

    def __exit__(self, *exc) -> None:
        TaskContext._active = None

    @classmethod
    def current(cls) -> "TaskContext":
        if cls._active is None:
            raise RuntimeError("no active TaskContext; use 'with TaskContext(...):'")
        return cls._active


def task(
    in_: Sequence[str] = (),
    out: Sequence[str] = (),
    inout: Sequence[str] = (),
    *,
    kernel: Optional[str] = None,
    priority: int = 0,
) -> Callable:
    """OmpSs ``#pragma omp task`` equivalent for plain Python functions.

    ``in_``/``out``/``inout`` name the decorated function's parameters that
    carry dependences; those arguments must be :class:`DataRef` handles when
    the function is called inside a :class:`TaskContext`.  A ``flops``
    keyword, if passed at the call site, is recorded on the task.
    """
    modes: Dict[str, AccessMode] = {}
    for name in in_:
        modes[name] = AccessMode.READ
    for name in out:
        if name in modes:
            raise ValueError(f"parameter {name!r} annotated twice")
        modes[name] = AccessMode.WRITE
    for name in inout:
        if name in modes:
            raise ValueError(f"parameter {name!r} annotated twice")
        modes[name] = AccessMode.RW

    def decorate(fn: Callable) -> Callable:
        import inspect

        sig = inspect.signature(fn)
        unknown = set(modes) - set(sig.parameters)
        if unknown:
            raise ValueError(f"annotated parameters not in signature: {sorted(unknown)}")
        kname = kernel or fn.__name__.upper()

        @functools.wraps(fn)
        def submit(*args, **kwargs):
            ctx = TaskContext.current()
            bound = sig.bind(*args, **kwargs)
            accesses = []
            for pname, mode in modes.items():
                ref = bound.arguments.get(pname)
                if not isinstance(ref, DataRef):
                    raise TypeError(
                        f"argument {pname!r} of task {fn.__name__!r} must be a "
                        f"DataRef, got {type(ref).__name__}"
                    )
                accesses.append(Access(ref, mode))
            flops = float(bound.arguments.get("flops", 0.0) or 0.0)
            return ctx.program.add_task(
                kname, accesses, flops=flops, priority=priority, label=fn.__name__
            )

        submit.__wrapped_task__ = fn  # the real body, for numeric execution
        return submit

    return decorate
