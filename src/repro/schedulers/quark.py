"""QUARK-like superscalar runtime (paper §IV-A3).

QUARK (QUeuing And Runtime for Kernels) is PLASMA's scheduler.  The
behaviours reproduced here:

* **master participates**: the thread that inserts tasks is also a worker
  (worker 0), so insertion work displaces task execution on core 0 — the
  paper points at exactly this in Fig. 6 ("the number of tasks scheduled to
  run on the core 0 ... is the core used to insert tasks and to maintain the
  dependence graph");
* a **task window** throttles insertion (QUARK's high/low water marks);
* a **priority-aware ready queue** honouring the ``TASK_PRIORITY`` hints the
  tile algorithms attach to panel kernels, with LIFO available as an
  alternative discipline;
* a **quiesce query**: :meth:`bookkeeping_complete` reports whether the
  runtime has dispatched every task released so far — the QUARK extension
  the paper added to close the simulation race condition (§V-E).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import SchedulerBase, TaskNode
from .policies import LifoQueue, PriorityQueue

__all__ = ["QuarkScheduler"]


class QuarkScheduler(SchedulerBase):
    """QUARK: master-as-worker, windowed insertion, priority ready queue."""

    name = "quark"
    master_is_worker = True
    default_insert_cost = 3.0e-6
    default_dispatch_overhead = 1.5e-6
    # QUARK's master resolves every completed task's dependences itself, so
    # it executes visibly fewer tasks than the other cores — the core-0
    # asymmetry of the paper's Fig. 6.
    default_completion_cost = 25.0e-6
    default_window = 1024

    def __init__(
        self,
        n_workers: int,
        *,
        queue: str = "priority",
        window: Optional[int] = None,
        insert_cost: Optional[float] = None,
        dispatch_overhead: Optional[float] = None,
        completion_cost: Optional[float] = None,
    ) -> None:
        super().__init__(
            n_workers,
            window=window,
            insert_cost=insert_cost,
            dispatch_overhead=dispatch_overhead,
            completion_cost=completion_cost,
        )
        if queue not in ("priority", "lifo"):
            raise ValueError(f"unknown QUARK queue discipline {queue!r}")
        self.queue_kind = queue
        self._ready: Optional[object] = None
        self._released = 0
        self._dispatched = 0

    def setup(self, nodes: Sequence[TaskNode]) -> None:
        self._ready = PriorityQueue() if self.queue_kind == "priority" else LifoQueue()
        self._released = 0
        self._dispatched = 0

    def push_ready(self, node: TaskNode, releasing_worker: Optional[int]) -> None:
        self._released += 1
        self._ready.push(node)  # type: ignore[union-attr]

    def pop_ready(self, worker: int, now: float) -> Optional[TaskNode]:
        node = self._ready.pop()  # type: ignore[union-attr]
        if node is not None:
            self._dispatched += 1
        return node

    def has_ready(self) -> bool:
        return len(self._ready) > 0  # type: ignore[arg-type]

    def bookkeeping_complete(self) -> bool:
        """QUARK's quiesce extension: every released task has been dispatched.

        The threaded simulator polls this before letting the task at the
        front of the Task Execution Queue return (paper §V-E, solution 1).
        """
        return self._released == self._dispatched
