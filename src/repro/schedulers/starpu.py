"""StarPU-like superscalar runtime (paper §IV-A2).

StarPU's distinguishing features reproduced here:

* a **dedicated submission thread**: the master inserts tasks but never
  executes them, so all ``n_workers`` cores given to the scheduler run tasks
  full time (on a fixed machine, StarPU is normally configured with one
  fewer worker than cores to leave room for the main thread — the
  experiment drivers do exactly that);
* **codelets**: a :class:`Codelet` names a kernel and carries its
  performance model — the single-interface-multiple-implementations
  abstraction of StarPU (only the CPU variant is meaningful here; the
  ``where`` field exists for API fidelity and future accelerator work);
* **pluggable scheduling policies** selected by name, as in
  ``STARPU_SCHED``:

  - ``eager``  — one central FIFO, workers pull (StarPU's default);
  - ``prio``   — central priority queue;
  - ``ws``     — per-worker deques with work stealing, ready tasks pushed to
    the worker that released them (locality);
  - ``dmda``   — deque model data aware: each ready task is pushed to the
    worker with the *minimum expected completion time*, computed from the
    history-based performance model StarPU builds from past executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .base import SchedulerBase, TaskNode
from .policies import FifoQueue, HistoryPerfModel, PriorityQueue, WorkStealingDeques

__all__ = ["Codelet", "StarPUScheduler", "STARPU_POLICIES"]

STARPU_POLICIES = ("eager", "prio", "ws", "dmda")


@dataclass
class Codelet:
    """A StarPU codelet: one logical kernel with its performance model.

    ``where`` lists the execution targets the codelet supports; this
    reproduction schedules CPU implementations (the paper's simulations are
    CPU-only; GPU tasks are the paper's future work).
    """

    name: str
    where: tuple = ("cpu",)
    model: Optional[HistoryPerfModel] = None

    def expected(self, default_model: HistoryPerfModel) -> float:
        model = self.model if self.model is not None else default_model
        return model.expected(self.name)


class StarPUScheduler(SchedulerBase):
    """StarPU: dedicated master, codelets, selectable policy."""

    name = "starpu"
    master_is_worker = False
    default_insert_cost = 2.0e-6
    default_dispatch_overhead = 2.5e-6
    default_window = 4096

    def __init__(
        self,
        n_workers: int,
        *,
        policy: str = "eager",
        window: Optional[int] = None,
        insert_cost: Optional[float] = None,
        dispatch_overhead: Optional[float] = None,
        completion_cost: Optional[float] = None,
        perf_model_default: float = 100e-6,
        worker_kinds: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(
            n_workers,
            window=window,
            insert_cost=insert_cost,
            dispatch_overhead=dispatch_overhead,
            completion_cost=completion_cost,
        )
        if policy not in STARPU_POLICIES:
            raise ValueError(f"unknown StarPU policy {policy!r}; choose from {STARPU_POLICIES}")
        if worker_kinds is not None and len(worker_kinds) != n_workers:
            raise ValueError(
                f"worker_kinds has {len(worker_kinds)} entries for "
                f"{n_workers} workers"
            )
        self.policy = policy
        #: per-worker architecture label ("cpu"/"gpu"/...); homogeneous when
        #: None.  The history performance model is kept per (kernel, kind),
        #: so dmda routes each kernel class to the architecture where it
        #: runs fastest — StarPU's heterogeneous scheduling (paper SIV-A2).
        self.worker_kinds = tuple(worker_kinds) if worker_kinds is not None else None
        self._perf_default = perf_model_default
        self.perf_model = HistoryPerfModel(perf_model_default)
        self._central: Optional[object] = None
        self._deques: Optional[WorkStealingDeques] = None
        self._worker_eta: List[float] = []
        self._n_ready = 0

    def _kind(self, worker: int) -> str:
        return self.worker_kinds[worker] if self.worker_kinds is not None else "cpu"

    def _model_key(self, kernel: str, worker: int) -> str:
        if self.worker_kinds is None:
            return kernel
        return f"{kernel}@{self._kind(worker)}"

    # -- lifecycle -----------------------------------------------------------
    def setup(self, nodes: Sequence[TaskNode]) -> None:
        self.perf_model = HistoryPerfModel(self._perf_default)
        self._n_ready = 0
        if self.policy == "eager":
            self._central = FifoQueue()
        elif self.policy == "prio":
            self._central = PriorityQueue()
        else:
            self._deques = WorkStealingDeques(self.n_workers)
            self._worker_eta = [0.0] * self.n_workers

    # -- policy hooks ----------------------------------------------------------
    def push_ready(self, node: TaskNode, releasing_worker: Optional[int]) -> None:
        self._n_ready += 1
        if self.policy in ("eager", "prio"):
            self._central.push(node)  # type: ignore[union-attr]
            return
        if self.policy == "ws":
            target = releasing_worker if releasing_worker is not None else 0
            self._deques.push(target, node)  # type: ignore[union-attr]
            return
        # dmda: minimise expected completion time across workers, with the
        # expected duration depending on each worker's architecture.
        best_worker = 0
        best_eta = float("inf")
        for w in range(self.n_workers):
            expected = self.perf_model.expected(self._model_key(node.kernel, w))
            eta = max(self._worker_eta[w], node.ready_time) + expected
            if eta < best_eta:
                best_worker, best_eta = w, eta
        self._worker_eta[best_worker] = best_eta
        self._deques.push(best_worker, node)  # type: ignore[union-attr]

    def pop_ready(self, worker: int, now: float) -> Optional[TaskNode]:
        if self.policy in ("eager", "prio"):
            node = self._central.pop()  # type: ignore[union-attr]
        elif self.policy == "ws":
            node = self._deques.pop(worker)  # type: ignore[union-attr]
        else:  # dmda: own queue first; steal only if idle and others backlogged
            node = self._deques.pop_local(worker)  # type: ignore[union-attr]
            if node is None:
                node = self._deques.steal(worker)  # type: ignore[union-attr]
        if node is not None:
            self._n_ready -= 1
        return node

    def has_ready(self) -> bool:
        return self._n_ready > 0

    def on_finish(self, node: TaskNode, worker: int, duration: float) -> None:
        # History-based performance model learns from every execution, per
        # (kernel, architecture).
        self.perf_model.update(self._model_key(node.kernel, worker), duration)
        if self.policy == "dmda":
            # Re-anchor the worker's availability estimate to reality.
            self._worker_eta[worker] = max(self._worker_eta[worker], node.end_time)
