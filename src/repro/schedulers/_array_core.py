"""ctypes loader for the optional compiled array-engine core.

``_array_core.c`` compiles to a plain shared library (no Python.h, no
Cython) sitting next to this module as ``lib_array_core.so`` — named so the
import system never mistakes it for an extension module; build it with
``python tools/build_array_core.py``.  When the library is absent or fails
to load, :data:`RUN_SERIALIZED` is ``None`` and the array engine falls back
to its pure-Python event loop — same results, lower throughput.

The exported entry point runs the entire serialized simulation over flat
numpy buffers and fills per-event output columns plus a counter block; see
the C source for the exact contract (return codes, counter indices).
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional

import numpy as np
from numpy.ctypeslib import ndpointer

__all__ = ["RUN_SERIALIZED", "N_COUNTERS", "lib_path"]

#: Size of the int64 counter block the C core fills (see _array_core.c).
N_COUNTERS = 12

_i32 = ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
_i64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_f64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


def lib_path() -> str:
    """Where the compiled core is expected to live."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "lib_array_core.so")


def _load() -> Optional[ctypes._CFuncPtr]:  # type: ignore[name-defined]
    path = lib_path()
    if not os.path.exists(path):
        return None
    try:
        lib = ctypes.CDLL(path)
        fn = lib.repro_run_serialized
    except (OSError, AttributeError):  # pragma: no cover - corrupt build
        return None
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_int64,  # n_tasks
        ctypes.c_int32,  # n_workers
        _i32,  # kernel_ids
        _i32,  # widths
        _i64,  # priorities
        _i64,  # deps_left (mutated scratch copy)
        _i64,  # succ_indptr
        _i32,  # succ_indices
        _i32,  # tf_kind (per kernel id)
        _f64,  # tf_a
        _f64,  # tf_b
        _f64,  # zs
        ctypes.c_double,  # warmup_penalty
        ctypes.c_int32,  # master_is_worker
        ctypes.c_int64,  # window
        ctypes.c_double,  # insert_cost
        ctypes.c_double,  # dispatch_overhead
        ctypes.c_double,  # completion_cost
        ctypes.c_int32,  # queue_kind (0 fifo / 1 priority / 2 lifo)
        ctypes.c_int32,  # bounce_enabled
        _i32,  # out_worker
        _i32,  # out_tid
        _f64,  # out_start
        _f64,  # out_end
        _i64,  # counters[N_COUNTERS]
    ]
    return fn


#: The compiled entry point, or ``None`` when no library is built.
RUN_SERIALIZED = _load()
