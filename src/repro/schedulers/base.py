"""Scheduler base class and the runtime task-node bookkeeping.

A *superscalar scheduler* here is an object that (1) accepts a serial task
stream, (2) performs its own hazard analysis via
:class:`~repro.schedulers.taskdep.HazardTracker`, and (3) makes dynamic
scheduling decisions through a small set of policy hooks that the
discrete-event :class:`~repro.schedulers.engine.Engine` invokes.  The three
concrete runtimes (:mod:`~repro.schedulers.quark`,
:mod:`~repro.schedulers.starpu`, :mod:`~repro.schedulers.ompss`) differ only
in those hooks and in their overhead constants — mirroring how the paper's
simulation library treats QUARK, StarPU, and OmpSs interchangeably.

Timing semantics shared by every runtime:

* **insertion** of each task occupies the *master* for ``insert_cost``
  seconds.  With ``master_is_worker`` (QUARK) the master is worker 0 and
  insertion competes with task execution on that core — the origin of the
  sparse core-0 row in the paper's Fig. 6.  Otherwise (StarPU, OmpSs) the
  master is a dedicated thread and workers only execute tasks.
* a **task window** bounds the number of inserted-but-unfinished tasks;
  insertion stalls when the window is full (QUARK's throttling behaviour).
* each dispatch adds ``dispatch_overhead`` seconds of scheduler bookkeeping
  before the kernel starts; the kernel duration itself comes from the
  pluggable backend (machine model or simulation model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence

import numpy as np

from ..core.task import Program, TaskSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..core.metrics import RunMetrics
    from ..trace.events import Trace

__all__ = ["TaskState", "TaskNode", "Backend", "SchedulerBase"]


class TaskState(Enum):
    """Lifecycle of a task inside the runtime."""

    NOT_INSERTED = "not_inserted"
    WAITING = "waiting"  # inserted, dependences outstanding
    READY = "ready"  # all dependences satisfied, queued
    RUNNING = "running"
    DONE = "done"


@dataclass(slots=True)
class TaskNode:
    """Runtime bookkeeping wrapped around one :class:`TaskSpec`."""

    spec: TaskSpec
    n_deps: int = 0
    successors: List["TaskNode"] = field(default_factory=list)
    state: TaskState = TaskState.NOT_INSERTED
    ready_time: float = 0.0
    worker: int = -1
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def task_id(self) -> int:
        return self.spec.task_id

    @property
    def kernel(self) -> str:
        return self.spec.kernel

    @property
    def priority(self) -> int:
        return self.spec.priority

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskNode(#{self.task_id} {self.kernel} {self.state.value})"


class Backend(Protocol):
    """Source of task durations — the only thing that differs between a
    "real" run (machine model) and a simulated run (fitted kernel models)."""

    def reset(self, rng: np.random.Generator, n_workers: int) -> None:
        """Called once at the start of every run."""
        ...

    def duration(self, node: TaskNode, worker: int, now: float, active_workers: int) -> float:
        """Kernel execution time for ``node`` starting on ``worker`` at ``now``."""
        ...


class SchedulerBase:
    """Common machinery of the three superscalar runtimes.

    Subclasses must define the class attributes ``name``,
    ``master_is_worker``, and the default overhead constants, and implement
    the queue-discipline hooks :meth:`push_ready` / :meth:`pop_ready`.
    Optional hooks: :meth:`on_finish` (policy bookkeeping, e.g. perf-model
    updates or immediate-successor bypass).
    """

    #: human-readable runtime name
    name: str = "base"
    #: does the inserting master also execute tasks (QUARK) or not?
    master_is_worker: bool = False
    #: default per-task insertion cost (seconds)
    default_insert_cost: float = 2.0e-6
    #: default per-dispatch scheduler overhead (seconds)
    default_dispatch_overhead: float = 1.0e-6
    #: default per-completion master bookkeeping cost (seconds) — dependence
    #: release and window accounting performed by the master thread
    default_completion_cost: float = 0.0
    #: default task-window size (max in-flight tasks)
    default_window: int = 1024

    def __init__(
        self,
        n_workers: int,
        *,
        window: Optional[int] = None,
        insert_cost: Optional[float] = None,
        dispatch_overhead: Optional[float] = None,
        completion_cost: Optional[float] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.window = self.default_window if window is None else int(window)
        if self.window < 1:
            raise ValueError("window must be at least 1")
        self.insert_cost = (
            self.default_insert_cost if insert_cost is None else float(insert_cost)
        )
        self.dispatch_overhead = (
            self.default_dispatch_overhead
            if dispatch_overhead is None
            else float(dispatch_overhead)
        )
        self.completion_cost = (
            self.default_completion_cost
            if completion_cost is None
            else float(completion_cost)
        )
        if self.insert_cost < 0 or self.dispatch_overhead < 0 or self.completion_cost < 0:
            raise ValueError("overheads must be non-negative")

    # -- queue-discipline hooks (subclass responsibility) -------------------
    def setup(self, nodes: Sequence[TaskNode]) -> None:
        """Reset per-run policy state.  Called once before the run starts."""
        raise NotImplementedError

    def push_ready(self, node: TaskNode, releasing_worker: Optional[int]) -> None:
        """A task became ready.  ``releasing_worker`` is the worker whose
        task completion satisfied the last dependence (``None`` for tasks
        ready at insertion), which locality-aware policies use."""
        raise NotImplementedError

    def pop_ready(self, worker: int, now: float) -> Optional[TaskNode]:
        """Return the next task ``worker`` should run, or ``None``."""
        raise NotImplementedError

    def has_ready(self) -> bool:
        """Any task queued?  Used by the engine's idle-dispatch sweep."""
        raise NotImplementedError

    def on_finish(self, node: TaskNode, worker: int, duration: float) -> None:
        """Policy bookkeeping after a task completes (default: none)."""

    # -- running -------------------------------------------------------------
    def run(
        self,
        program: Program,
        backend: Backend,
        *,
        seed: int = 0,
        trace_meta: Optional[Dict[str, object]] = None,
        metrics: Optional["RunMetrics"] = None,
        probe: Optional[object] = None,
        engine_mode: str = "serialized",
        cells: Optional[object] = None,
        engine_backend: Optional[str] = None,
    ) -> "Trace":
        """Execute ``program`` against ``backend`` and return the trace.

        Deterministic given ``seed``: all engine decisions are tie-broken
        deterministically and all randomness flows through one
        ``numpy`` generator handed to the backend.  ``metrics``, when given,
        collects the run's :class:`~repro.core.metrics.RunMetrics` counters.
        ``probe``, when given and enabled, receives the scheduler-internal
        event stream (see :mod:`repro.obs.probe`); probes observe only and
        never change the trace.  ``engine_mode`` selects the event-loop
        realisation (``serialized``/``multicell``/``auto``, see
        :mod:`repro.core.cells`); ``cells`` is the
        :class:`~repro.core.cells.CellPlan` partitioning the workers, needed
        for the multicell modes.  ``engine_backend`` selects the engine
        *implementation* — ``"object"`` (per-task-node event loop) or
        ``"array"`` (the SoA core of
        :mod:`repro.schedulers.array_engine`); ``None`` defers to
        :func:`repro.core.soa.default_engine_backend` (the
        ``REPRO_ENGINE_BACKEND`` environment variable).  A configuration
        the array core cannot replicate byte-for-byte falls back to the
        object engine, recording the reason under
        ``metrics.extra["engine_backend"]``.  Every mode and backend
        produces the same trace.
        """
        from ..core.soa import ENGINE_BACKENDS, default_engine_backend

        if engine_backend is None:
            engine_backend = default_engine_backend()
        elif engine_backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {engine_backend!r}; "
                f"expected one of {ENGINE_BACKENDS}"
            )
        if engine_backend == "array":
            from .array_engine import ArrayEngine, array_backend_unsupported

            reason = array_backend_unsupported(self, engine_mode)
            if reason is None:
                engine = ArrayEngine(
                    self,
                    program,
                    backend,
                    seed=seed,
                    trace_meta=trace_meta,
                    metrics=metrics,
                    probe=probe,
                    engine_mode=engine_mode,
                    cells=cells,
                )
                if metrics is not None:
                    metrics.extra["engine_backend"] = {"requested": "array", "used": "array"}
                return engine.run()
            if metrics is not None:
                metrics.extra["engine_backend"] = {
                    "requested": "array",
                    "used": "object",
                    "fallback_reason": reason,
                }

        from .engine import Engine  # local import to avoid a cycle

        engine = Engine(
            self,
            program,
            backend,
            seed=seed,
            trace_meta=trace_meta,
            metrics=metrics,
            probe=probe,
            engine_mode=engine_mode,
            cells=cells,
        )
        return engine.run()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_workers={self.n_workers}, window={self.window})"
