# cython: language_level=3, boundscheck=False, wraparound=False
"""Compiled twin of ``_array_kernels.py`` (optional speed-up).

Build it in place with Cython available::

    cythonize -i src/repro/schedulers/_array_kernels.pyx \
        && mv src/repro/schedulers/_array_kernels.*.so \
              src/repro/schedulers/_array_kernels_c.so

The array engine imports ``repro.schedulers._array_kernels_c`` when it
exists and silently falls back to the pure-Python module otherwise; no
toolchain is required to run the simulator.  Keep this file semantically
identical to ``_array_kernels.py`` — trace byte-identity covers both.
"""

__all__ = ["USING_COMPILED", "release_successors"]

USING_COMPILED = True


def release_successors(list succ_ids, list deps_left, list state, Py_ssize_t lo, Py_ssize_t hi):
    """See ``_array_kernels.release_successors`` — identical semantics."""
    cdef list out = []
    cdef Py_ssize_t i
    cdef long s, d
    for i in range(lo, hi):
        s = succ_ids[i]
        d = deps_left[s] - 1
        deps_left[s] = d
        if d == 0 and state[s] == 1:
            state[s] = 2
            out.append(s)
    return out
