"""Data-hazard analysis: RaW / WaR / WaW dependence tracking (paper §IV-A).

Superscalar schedulers receive tasks serially and derive the task DAG from
the read/write annotations of each task's data parameters.  The
:class:`HazardTracker` implements that analysis incrementally, keyed on the
synthetic base address of each :class:`~repro.core.task.DataRef` — exactly
how the real runtimes key their hazard tables on pointer values.

For every access of a newly inserted task ``T``:

* a *read* of ``ref`` creates a **RaW** edge from the last writer of ``ref``;
* a *write* of ``ref`` creates a **WaW** edge from the last writer and a
  **WaR** edge from every task that has read ``ref`` since that write;
* the tracker state is then advanced: a write makes ``T`` the new last
  writer and clears the reader set; a pure read adds ``T`` to the readers.

Multiple concurrent readers are permitted (the paper: "multiple tasks may
have read access to a specific data parameter at the same time") — readers
only order against the *next* writer.

The tracker reports each dependence with its hazard kind so DAG exports can
show edge multiplicity the way the paper's Fig. 1 does, while schedulers
de-duplicate to one wait per predecessor.  Runtimes that only need the
dependence *structure* (the engine's hot path) construct the tracker with
``record_edges=False``, which skips :class:`Dependence` materialisation —
the analysis itself is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Set, Tuple

from ..core.task import DataRef, TaskSpec

__all__ = ["HazardKind", "Dependence", "HazardTracker"]


class HazardKind(Enum):
    """Which data hazard induced a dependence edge."""

    RAW = "RaW"
    WAR = "WaR"
    WAW = "WaW"


@dataclass(frozen=True)
class Dependence:
    """One dependence edge: ``src`` must complete before ``dst`` may start."""

    src: int
    dst: int
    kind: HazardKind
    ref: DataRef

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst} [{self.kind.value} on {self.ref.name}]"


class _RefState:
    """Hazard bookkeeping for one data address."""

    __slots__ = ("last_writer", "readers")

    def __init__(self) -> None:
        self.last_writer = -1
        self.readers: Set[int] = set()


class HazardTracker:
    """Incremental serial-order hazard analysis.

    ``add_task`` must be called in submission order; it returns the full list
    of dependence edges (with hazard kinds) terminating at the new task.
    ``predecessors`` of a task is the de-duplicated set of source task ids;
    ``successors`` is the memoized inverse, maintained incrementally so DAG
    traversals and dependence release need no rescan.

    With ``record_edges=False`` the per-edge :class:`Dependence` records are
    not materialised (``add_task`` returns an empty list and :attr:`edges` /
    :meth:`edge_multiplicity` raise) — the structural queries behave
    identically.  The discrete-event engine and the threaded runtime use
    this mode; DAG construction keeps the default.
    """

    def __init__(self, *, record_edges: bool = True, probe=None) -> None:
        self._state: Dict[int, _RefState] = {}
        self._record_edges = record_edges
        # Observation hook (repro.obs.probe): reports each task's
        # de-duplicated predecessor set as it is discovered.  Normalised to
        # ``None`` when absent/disabled so add_task pays one check.
        self._probe = probe if probe is not None and getattr(probe, "enabled", True) else None
        self._edges: List[Dependence] = []
        self._edge_count: Dict[Tuple[int, int], int] = {}
        self._preds: Dict[int, Set[int]] = {}
        self._succs: Dict[int, List[int]] = {}
        self._n_tasks = 0

    def add_task(self, task: TaskSpec) -> List[Dependence]:
        """Analyse ``task``'s accesses; returns its incoming dependences."""
        tid = task.task_id
        if tid < 0:
            raise ValueError(f"task has no id (not added to a Program?): {task!r}")
        if tid != self._n_tasks:
            raise ValueError(
                f"tasks must be inserted in serial order: expected id "
                f"{self._n_tasks}, got {tid}"
            )
        self._n_tasks += 1

        record = self._record_edges
        new_edges: List[Dependence] = []
        preds: Set[int] = set()
        state = self._state

        # Pass 1: derive edges from the pre-insertion state.
        for acc in task.accesses:
            st = state.get(acc.ref.addr)
            if st is None:
                continue
            reads, writes = acc.mode.rw_flags
            last_writer = st.last_writer
            if reads and last_writer >= 0 and last_writer != tid:
                preds.add(last_writer)
                if record:
                    new_edges.append(Dependence(last_writer, tid, HazardKind.RAW, acc.ref))
            if writes:
                if last_writer >= 0 and last_writer != tid:
                    preds.add(last_writer)
                    if record:
                        new_edges.append(Dependence(last_writer, tid, HazardKind.WAW, acc.ref))
                for reader in st.readers:
                    if reader != tid:
                        preds.add(reader)
                        if record:
                            new_edges.append(Dependence(reader, tid, HazardKind.WAR, acc.ref))

        # Pass 2: advance the state.  Writes win over reads for the same ref
        # within one task (an RW access makes the task the new last writer).
        for acc in task.accesses:
            reads, writes = acc.mode.rw_flags
            if not (reads or writes):
                continue
            st = state.get(acc.ref.addr)
            if st is None:
                st = state[acc.ref.addr] = _RefState()
            if writes:
                st.last_writer = tid
                st.readers.clear()
            else:
                st.readers.add(tid)

        if record:
            self._edges.extend(new_edges)
            edge_count = self._edge_count
            for e in new_edges:
                key = (e.src, e.dst)
                edge_count[key] = edge_count.get(key, 0) + 1
        self._preds[tid] = preds
        if self._probe is not None:
            self._probe.task_deps(tid, tuple(sorted(preds)))
        succs = self._succs
        for pid in preds:
            lst = succs.get(pid)
            if lst is None:
                succs[pid] = [tid]
            else:
                lst.append(tid)
        return new_edges

    # -- queries ----------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return self._n_tasks

    @property
    def edges(self) -> Tuple[Dependence, ...]:
        """All dependence edges discovered so far, in discovery order."""
        if not self._record_edges:
            raise RuntimeError(
                "edge records were disabled (record_edges=False); construct "
                "the tracker with record_edges=True for DAG exports"
            )
        return tuple(self._edges)

    def predecessors(self, task_id: int) -> Set[int]:
        """De-duplicated predecessor task ids of ``task_id`` (a fresh set)."""
        return set(self._preds[task_id])

    def predecessors_view(self, task_id: int) -> Set[int]:
        """The internal predecessor set of ``task_id`` — do not mutate.

        Hot-path variant of :meth:`predecessors`: the engine and the
        threaded runtime call this once per inserted task, and the copy was
        measurable on large programs.
        """
        return self._preds[task_id]

    def successors(self, task_id: int) -> Tuple[int, ...]:
        """De-duplicated successor task ids of ``task_id``, ascending.

        Maintained incrementally by :meth:`add_task` (one append per
        dependence source), so the lookup is allocation-only — no rescan of
        the edge list.  Only tasks inserted so far appear, matching the
        incremental semantics of the rest of the tracker.
        """
        return tuple(self._succs.get(task_id, ()))

    def edge_multiplicity(self, src: int, dst: int) -> int:
        """How many distinct data hazards connect ``src`` to ``dst``.

        Fig. 1 of the paper draws one edge per hazard, so a QR ``tsmqr`` can
        have several edges from the same parent.  O(1): the count is
        maintained as edges are discovered.
        """
        if not self._record_edges:
            raise RuntimeError(
                "edge records were disabled (record_edges=False); construct "
                "the tracker with record_edges=True for multiplicity queries"
            )
        return self._edge_count.get((src, dst), 0)
