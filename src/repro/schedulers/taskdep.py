"""Data-hazard analysis: RaW / WaR / WaW dependence tracking (paper §IV-A).

Superscalar schedulers receive tasks serially and derive the task DAG from
the read/write annotations of each task's data parameters.  The
:class:`HazardTracker` implements that analysis incrementally, keyed on the
synthetic base address of each :class:`~repro.core.task.DataRef` — exactly
how the real runtimes key their hazard tables on pointer values.

For every access of a newly inserted task ``T``:

* a *read* of ``ref`` creates a **RaW** edge from the last writer of ``ref``;
* a *write* of ``ref`` creates a **WaW** edge from the last writer and a
  **WaR** edge from every task that has read ``ref`` since that write;
* the tracker state is then advanced: a write makes ``T`` the new last
  writer and clears the reader set; a pure read adds ``T`` to the readers.

Multiple concurrent readers are permitted (the paper: "multiple tasks may
have read access to a specific data parameter at the same time") — readers
only order against the *next* writer.

The tracker reports each dependence with its hazard kind so DAG exports can
show edge multiplicity the way the paper's Fig. 1 does, while schedulers
de-duplicate to one wait per predecessor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Set, Tuple

from ..core.task import DataRef, TaskSpec

__all__ = ["HazardKind", "Dependence", "HazardTracker"]


class HazardKind(Enum):
    """Which data hazard induced a dependence edge."""

    RAW = "RaW"
    WAR = "WaR"
    WAW = "WaW"


@dataclass(frozen=True)
class Dependence:
    """One dependence edge: ``src`` must complete before ``dst`` may start."""

    src: int
    dst: int
    kind: HazardKind
    ref: DataRef

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst} [{self.kind.value} on {self.ref.name}]"


@dataclass
class _RefState:
    """Hazard bookkeeping for one data address."""

    last_writer: int = -1
    readers: Set[int] = field(default_factory=set)


class HazardTracker:
    """Incremental serial-order hazard analysis.

    ``add_task`` must be called in submission order; it returns the full list
    of dependence edges (with hazard kinds) terminating at the new task.
    ``predecessors`` of a task is the de-duplicated set of source task ids.
    """

    def __init__(self) -> None:
        self._state: Dict[int, _RefState] = {}
        self._edges: List[Dependence] = []
        self._preds: Dict[int, Set[int]] = {}
        self._n_tasks = 0

    def add_task(self, task: TaskSpec) -> List[Dependence]:
        """Analyse ``task``'s accesses; returns its incoming dependences."""
        tid = task.task_id
        if tid < 0:
            raise ValueError(f"task has no id (not added to a Program?): {task!r}")
        if tid != self._n_tasks:
            raise ValueError(
                f"tasks must be inserted in serial order: expected id "
                f"{self._n_tasks}, got {tid}"
            )
        self._n_tasks += 1

        new_edges: List[Dependence] = []
        preds: Set[int] = set()

        # Pass 1: derive edges from the pre-insertion state.
        for acc in task.accesses:
            st = self._state.get(acc.ref.addr)
            if st is None:
                continue
            if acc.mode.reads and st.last_writer >= 0 and st.last_writer != tid:
                new_edges.append(Dependence(st.last_writer, tid, HazardKind.RAW, acc.ref))
                preds.add(st.last_writer)
            if acc.mode.writes:
                if st.last_writer >= 0 and st.last_writer != tid:
                    new_edges.append(Dependence(st.last_writer, tid, HazardKind.WAW, acc.ref))
                    preds.add(st.last_writer)
                for reader in st.readers:
                    if reader != tid:
                        new_edges.append(Dependence(reader, tid, HazardKind.WAR, acc.ref))
                        preds.add(reader)

        # Pass 2: advance the state.  Writes win over reads for the same ref
        # within one task (an RW access makes the task the new last writer).
        for acc in task.accesses:
            if not (acc.mode.reads or acc.mode.writes):
                continue
            st = self._state.setdefault(acc.ref.addr, _RefState())
            if acc.mode.writes:
                st.last_writer = tid
                st.readers = set()
            elif acc.mode.reads:
                st.readers.add(tid)

        self._edges.extend(new_edges)
        self._preds[tid] = preds
        return new_edges

    # -- queries ----------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return self._n_tasks

    @property
    def edges(self) -> Tuple[Dependence, ...]:
        """All dependence edges discovered so far, in discovery order."""
        return tuple(self._edges)

    def predecessors(self, task_id: int) -> Set[int]:
        """De-duplicated predecessor task ids of ``task_id``."""
        return set(self._preds[task_id])

    def edge_multiplicity(self, src: int, dst: int) -> int:
        """How many distinct data hazards connect ``src`` to ``dst``.

        Fig. 1 of the paper draws one edge per hazard, so a QR ``tsmqr`` can
        have several edges from the same parent.
        """
        return sum(1 for e in self._edges if e.src == src and e.dst == dst)
