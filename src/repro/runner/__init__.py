"""Parallel sweep runner: run specs, on-disk result cache, run metrics.

The fan-out/caching layer above the simulator core.  Describe runs as
:class:`RunSpec` values, hand them to :func:`sweep` (optionally with
``jobs > 1`` for multiprocessing fan-out and a :class:`ResultCache` for
cross-invocation reuse), and read back traces plus per-run
:class:`~repro.core.metrics.RunMetrics`.  See ``docs/API.md`` for the sweep
API, the cache layout, and the metrics schema.
"""

from ..core.metrics import METRICS_SCHEMA, RunMetrics
from .cache import CachedRun, ResultCache, default_cache_dir, partition_cache_dir
from .runner import RunResult, SweepResult, execute_spec, run_cached, run_observed, sweep
from .spec import CACHE_VERSION, ProgramSpec, RunSpec, SchedulerSpec

__all__ = [
    "METRICS_SCHEMA",
    "RunMetrics",
    "CachedRun",
    "ResultCache",
    "default_cache_dir",
    "partition_cache_dir",
    "RunResult",
    "SweepResult",
    "execute_spec",
    "run_cached",
    "run_observed",
    "sweep",
    "CACHE_VERSION",
    "ProgramSpec",
    "RunSpec",
    "SchedulerSpec",
]
