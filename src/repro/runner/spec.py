"""Declarative run specifications — the unit of work of the sweep runner.

A :class:`RunSpec` fully describes one engine run as plain data: which
program (algorithm generator plus parameters), which scheduler configuration,
which machine preset, which seed, and — for simulated runs — the calibration
recipe that produces the kernel timing models.  Being plain frozen
dataclasses of primitives, specs are hashable, picklable (so they travel to
``multiprocessing`` workers), and serialisable to JSON (so they are stored
next to cached results for provenance).

The cache identity of a spec is :meth:`RunSpec.cache_key`: a SHA-256 digest
over the spec's canonical JSON *plus a content digest of the generated task
stream*.  Hashing the stream content (kernel, data accesses, flops, width of
every task) means the cache invalidates itself when an algorithm generator
changes behaviour, not just when its parameters change.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional

from ..algorithms import cholesky_program, lu_program, qr_program
from ..core.cells import ENGINE_MODES
from ..core.soa import ENGINE_BACKENDS
from ..core.task import Program
from ..core.watchdog import STALL_POLICIES, StallPolicy
from ..schedulers import make_scheduler
from ..schedulers.base import SchedulerBase

__all__ = ["ProgramSpec", "SchedulerSpec", "RunSpec", "CACHE_VERSION", "RUNTIMES"]

#: Bump to invalidate every cached result (engine semantics changed).
#: v2: window_stalls became episode-based and specs grew the threaded
#: runtime / race-guard fields.
CACHE_VERSION = 2

#: Execution engines a spec can target.
RUNTIMES = ("engine", "threaded")

_GENERATORS = {
    "cholesky": cholesky_program,
    "qr": qr_program,
    "lu": lu_program,
}


def _known_fields(cls, data: Dict[str, Any], what: str) -> Dict[str, Any]:
    """Validate that ``data`` holds only fields of dataclass ``cls``.

    Spec documents arrive over the wire (the ``repro serve`` protocol) and
    from provenance files; an unknown key is far more likely a client typo
    (``"sheduler"``) than a forward-compat field, and silently dropping it
    would run a *different* spec than the caller asked for.
    """
    if not isinstance(data, dict):
        raise ValueError(f"{what} document must be a JSON object, got {type(data).__name__}")
    known = set(cls.__dataclass_fields__)
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown {what} field(s) {unknown}; known fields: {sorted(known)}")
    return dict(data)


@dataclass(frozen=True)
class ProgramSpec:
    """Parameters of one algorithm-generated task stream."""

    algorithm: str  # cholesky | qr | lu
    nt: int  # tiles per matrix side
    nb: int  # tile order
    panel_width: int = 1

    def __post_init__(self) -> None:
        if self.algorithm not in _GENERATORS:
            raise KeyError(
                f"unknown algorithm {self.algorithm!r}; choose from {sorted(_GENERATORS)}"
            )
        if self.nt < 1 or self.nb < 1:
            raise ValueError("nt and nb must be positive")
        if self.panel_width < 1:
            raise ValueError("panel_width must be at least 1")

    def build(self) -> Program:
        gen = _GENERATORS[self.algorithm]
        kwargs: Dict[str, Any] = {}
        if self.panel_width != 1:
            kwargs["panel_width"] = self.panel_width
        return gen(self.nt, self.nb, **kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgramSpec":
        return cls(**_known_fields(cls, data, "ProgramSpec"))

    def content_digest(self) -> str:
        """SHA-256 over the generated stream's semantic content."""
        program = self.build()
        h = hashlib.sha256()
        h.update(program.name.encode())
        for t in program:
            h.update(
                f"{t.task_id}|{t.kernel}|{t.describe()}|{t.flops!r}|"
                f"{t.priority}|{t.width}\n".encode()
            )
        return h.hexdigest()


@dataclass(frozen=True)
class SchedulerSpec:
    """Constructor arguments of one scheduler configuration."""

    name: str  # quark | starpu | ompss
    n_workers: int
    policy: Optional[str] = None  # StarPU only
    window: Optional[int] = None
    immediate_successor: Optional[bool] = None  # OmpSs only

    def build(self) -> SchedulerBase:
        kwargs: Dict[str, Any] = {}
        if self.policy is not None:
            kwargs["policy"] = self.policy
        if self.window is not None:
            kwargs["window"] = self.window
        if self.immediate_successor is not None:
            kwargs["immediate_successor"] = self.immediate_successor
        return make_scheduler(self.name, self.n_workers, **kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SchedulerSpec":
        return cls(**_known_fields(cls, data, "SchedulerSpec"))


@dataclass(frozen=True)
class RunSpec:
    """One cacheable engine run: program x scheduler x backend x seed.

    ``mode="real"`` runs against the machine-model backend; the calibration
    fields are ignored.  ``mode="simulated"`` first obtains a calibration
    trace (itself an ordinary cacheable *real* run of ``cal_scheduler`` on a
    ``cal_nt``-sized problem), fits the per-kernel timing models, and runs
    against the simulation backend.

    ``runtime="engine"`` (default) uses the deterministic discrete-event
    engine.  ``runtime="threaded"`` replays the spec on the *threaded*
    runtime (real worker threads, §V-D protocol) under race guard ``guard``
    and the stall watchdog configured by ``stall_timeout`` / ``on_stall``;
    it requires ``mode="simulated"``.  Threaded traces are representative,
    not byte-canonical: real thread interleaving decides RNG draw order, so
    only the engine's byte-identical caching contract applies to them
    loosely.  The watchdog settings never change a (successful) trace, so
    they are normalised out of the cache key; the guard can, so it stays in.
    """

    program: ProgramSpec
    scheduler: SchedulerSpec
    machine: str
    seed: int = 0
    mode: str = "real"  # real | simulated

    # -- execution runtime -------------------------------------------------
    runtime: str = "engine"  # engine | threaded
    guard: Optional[str] = None  # threaded only; default "quiesce"
    stall_timeout: Optional[float] = None  # threaded only; None = default budget
    on_stall: str = "raise"  # threaded only; raise | recover

    # -- calibration recipe (simulated mode only) --------------------------
    cal_nt: Optional[int] = None
    cal_seed: int = 0
    cal_scheduler: Optional[SchedulerSpec] = None  # default: ``scheduler``
    cal_drop_first: bool = True  # drop each worker's first task (warm-up)
    cal_trim: bool = True  # trim warm-up outliers during fitting
    family: str = "lognormal"
    warmup: bool = True  # apply the machine's warm-up penalty in sim

    #: Path to a ``repro.calib/v1`` document.  When set (simulated mode
    #: only), the fitted models in the document replace the in-line
    #: calibration recipe above — no calibration run happens and the
    #: ``cal_*``/``family`` fields become inert.  Cache identity uses the
    #: document's *content* digest, never the path; ``None`` is normalised
    #: out of the cache key so pre-existing caches survive.
    calibration: Optional[str] = None

    # -- event-loop realisation (engine runtime only) ----------------------
    #: serialized | multicell | auto — see :mod:`repro.core.cells`.  Every
    #: mode produces the same trace, so ``serialized`` (the default) is
    #: normalised out of the cache key.
    engine_mode: str = "serialized"

    #: object | array — the engine implementation (:mod:`repro.core.soa`).
    #: Both produce byte-identical traces, so ``object`` (the default) is
    #: normalised out of the cache key and pre-existing caches survive;
    #: ``array`` stays in because the recorded metrics (wall time, fallback
    #: provenance) differ.
    engine_backend: str = "object"

    def __post_init__(self) -> None:
        if self.mode not in ("real", "simulated"):
            raise ValueError(f"unknown mode {self.mode!r}; choose real/simulated")
        if self.calibration is not None and self.mode != "simulated":
            raise ValueError("calibration documents only apply to simulated runs")
        if self.mode == "simulated" and self.cal_nt is None and self.calibration is None:
            raise ValueError(
                "simulated runs need cal_nt (calibration problem size) "
                "or a calibration document"
            )
        if self.runtime not in RUNTIMES:
            raise ValueError(f"unknown runtime {self.runtime!r}; choose from {RUNTIMES}")
        if self.engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"unknown engine_mode {self.engine_mode!r}; choose from {ENGINE_MODES}"
            )
        if self.engine_backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine_backend {self.engine_backend!r}; "
                f"choose from {ENGINE_BACKENDS}"
            )
        if self.runtime == "threaded" and self.engine_mode != "serialized":
            raise ValueError(
                "the threaded runtime has no partitioned event loop; "
                "engine_mode must stay 'serialized' with runtime='threaded'"
            )
        if self.runtime == "threaded" and self.engine_backend != "object":
            raise ValueError(
                "the threaded runtime has no array-native event loop; "
                "engine_backend must stay 'object' with runtime='threaded'"
            )
        if self.runtime == "threaded":
            from ..core.threaded import RACE_GUARDS  # deferred: heavy module

            if self.mode != "simulated":
                raise ValueError("the threaded runtime replays simulated runs only")
            if self.guard is not None and self.guard not in RACE_GUARDS:
                raise ValueError(
                    f"unknown race guard {self.guard!r}; choose from {RACE_GUARDS}"
                )
            if self.stall_timeout is not None and self.stall_timeout <= 0.0:
                raise ValueError("stall_timeout must be positive")
            if self.on_stall not in STALL_POLICIES:
                raise ValueError(
                    f"unknown on_stall policy {self.on_stall!r}; "
                    f"choose from {STALL_POLICIES}"
                )

    def stall_policy(self) -> StallPolicy:
        """The watchdog configuration for a threaded replay of this spec."""
        if self.stall_timeout is None:
            return StallPolicy(on_stall=self.on_stall)
        return StallPolicy(timeout_s=self.stall_timeout, on_stall=self.on_stall)

    # -- derived specs -----------------------------------------------------
    def calibration_spec(self) -> "RunSpec":
        """The real run whose trace calibrates this simulated run."""
        if self.mode != "simulated":
            raise ValueError("only simulated runs have a calibration spec")
        if self.calibration is not None:
            raise ValueError(
                "this spec loads a calibration document; no calibration run exists"
            )
        return RunSpec(
            program=replace(self.program, nt=self.cal_nt),
            scheduler=self.cal_scheduler if self.cal_scheduler is not None else self.scheduler,
            machine=self.machine,
            seed=self.cal_seed,
            mode="real",
        )

    # -- identity ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Rebuild a spec from its :meth:`to_dict` document.

        This is the wire format of the ``repro serve`` protocol and the
        ``spec.json`` provenance files: nested ``program`` / ``scheduler`` /
        ``cal_scheduler`` objects are reconstructed recursively, every
        field is validated by the dataclass ``__post_init__`` checks, and
        unknown keys raise ``ValueError`` instead of being dropped.
        """
        fields = _known_fields(cls, data, "RunSpec")
        fields["program"] = ProgramSpec.from_dict(fields.get("program") or {})
        fields["scheduler"] = SchedulerSpec.from_dict(fields.get("scheduler") or {})
        if fields.get("cal_scheduler") is not None:
            fields["cal_scheduler"] = SchedulerSpec.from_dict(fields["cal_scheduler"])
        return cls(**fields)

    def cache_key(self) -> str:
        """Stable content-addressed identity of this run."""
        doc = self.to_dict()
        doc["cache_version"] = CACHE_VERSION
        doc["program_digest"] = self.program.content_digest()
        if self.mode == "simulated" and self.calibration is not None:
            # The document's content is the identity: the same fitted models
            # under a renamed/moved file hit the same cache entry, and a
            # refit document at the same path misses as it must.  The in-line
            # calibration recipe is inert here, so it drops out (``warmup``
            # stays — it still shapes the simulation).
            from ..calib.document import load_calibration  # deferred: keeps spec light

            doc["calibration"] = load_calibration(self.calibration).digest()
            for k in (
                "cal_nt", "cal_seed", "cal_scheduler", "cal_drop_first",
                "cal_trim", "family",
            ):
                doc.pop(k, None)
        elif self.mode == "simulated":
            cal = self.calibration_spec()
            doc["cal_program_digest"] = cal.program.content_digest()
        else:
            # Calibration fields are inert for real runs: normalise them out
            # so e.g. ``family`` never splits identical real runs.
            for k in (
                "cal_nt", "cal_seed", "cal_scheduler", "cal_drop_first",
                "cal_trim", "family", "warmup",
            ):
                doc.pop(k, None)
        # No document attached: normalise the field out entirely so every
        # pre-calibration cache key (and cache entry) stays valid.
        if self.calibration is None:
            doc.pop("calibration", None)
        # The stall watchdog never alters a successful trace, and the race
        # guard only matters on the threaded runtime: normalise both so
        # inert knobs never split identical runs.
        doc.pop("stall_timeout", None)
        doc.pop("on_stall", None)
        if self.runtime != "threaded":
            doc.pop("guard", None)
        # The default serialized loop is normalised out so pre-existing keys
        # survive; non-default modes stay in — traces agree by construction,
        # but the recorded metrics (per-cell counters, wall time) differ.
        if self.engine_mode == "serialized":
            doc.pop("engine_mode", None)
        # Same normalisation for the engine implementation: the default
        # object backend drops out so existing caches stay valid.
        if self.engine_backend == "object":
            doc.pop("engine_backend", None)
        canon = json.dumps(doc, sort_keys=True, default=str)
        return hashlib.sha256(canon.encode()).hexdigest()
