"""Content-addressed on-disk result cache for simulation runs.

Layout (two-level fan-out to keep directories small)::

    <root>/
        ab/
            ab3f9c.../            one entry per RunSpec.cache_key()
                trace.txt         the run's trace (plain-text format)
                metrics.json      the RunMetrics of the producing run
                spec.json         the RunSpec that produced it (provenance)

Writes are atomic and parallel-safe: an entry is staged in a temporary
directory under the root and published with ``os.rename``, so concurrent
sweep workers computing the same point race benignly (first rename wins,
the loser discards its staging directory).  Traces are a pure function of
the spec, so whichever copy lands is correct.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..core.metrics import RunMetrics
from ..trace.events import Trace
from ..trace.textio import load_trace, save_trace

__all__ = ["CachedRun", "ResultCache", "default_cache_dir", "partition_cache_dir"]

_TRACE = "trace.txt"
_METRICS = "metrics.json"
_SPEC = "spec.json"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE`` or ``.repro_cache`` in the working directory."""
    return Path(os.environ.get("REPRO_CACHE", ".repro_cache"))


def partition_cache_dir(root: Union[str, Path], shard_id: Union[int, str]) -> Path:
    """The cache partition one fleet shard owns: ``<root>/shard-<id>``.

    The fleet router consistent-hashes ``cache_key`` across shards, so each
    shard only ever sees its own slice of the keyspace; giving every shard a
    disjoint subdirectory keeps the partitions honest (no cross-shard
    directory contention, per-shard eviction/inspection stays trivial) while
    the entries inside remain ordinary :class:`ResultCache` entries that any
    offline ``repro sweep`` could also have produced.

    Numeric ids are normalised (zero-padded to two digits, wider ids kept
    as-is) whether they arrive as ``int`` or ``str``, so the same logical
    shard addressed as ``5`` or ``"5"`` maps to one partition; non-numeric
    string ids are used verbatim.
    """
    if isinstance(shard_id, bool):
        raise TypeError("shard_id must be an int or str, not bool")
    if isinstance(shard_id, int) or (isinstance(shard_id, str) and shard_id.isdigit()):
        numeric = int(shard_id)
        if numeric < 0:
            raise ValueError(f"numeric shard ids must be non-negative, got {numeric}")
        name = f"shard-{numeric:02d}"
    else:
        name = f"shard-{shard_id}"
    return Path(root) / name


@dataclass(frozen=True)
class CachedRun:
    """Handle to one published cache entry."""

    key: str
    path: Path

    @property
    def trace_path(self) -> Path:
        return self.path / _TRACE

    @property
    def metrics_path(self) -> Path:
        return self.path / _METRICS

    def load_trace(self) -> Trace:
        return load_trace(self.trace_path)

    def load_metrics(self) -> RunMetrics:
        return RunMetrics.read_json(self.metrics_path)

    def load_spec_dict(self) -> Dict[str, Any]:
        return json.loads((self.path / _SPEC).read_text())


class ResultCache:
    """Content-addressed store of ``(trace, metrics, spec)`` run results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    @staticmethod
    def _complete(path: Path) -> bool:
        """One definition of "published" for lookups, listing, and publish
        conflicts: both the trace and the metrics survived the rename."""
        return (path / _TRACE).is_file() and (path / _METRICS).is_file()

    # -- lookup ------------------------------------------------------------
    def get(self, key: str) -> Optional[CachedRun]:
        """The entry for ``key``, or ``None`` (incomplete entries count as
        misses — an interrupted writer never published its rename)."""
        path = self._entry_dir(key)
        if self._complete(path):
            self.hits += 1
            return CachedRun(key=key, path=path)
        self.misses += 1
        return None

    def __contains__(self, key: str) -> bool:
        return self._complete(self._entry_dir(key))

    # -- publish -----------------------------------------------------------
    def put(
        self,
        key: str,
        trace: Trace,
        metrics: RunMetrics,
        spec_dict: Optional[Dict[str, Any]] = None,
    ) -> CachedRun:
        """Atomically publish one result; a concurrent duplicate is a no-op."""
        final = self._entry_dir(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        stage = Path(tempfile.mkdtemp(prefix=f".stage-{key[:8]}-", dir=self.root))
        try:
            save_trace(trace, stage / _TRACE)
            metrics.write_json(stage / _METRICS)
            if spec_dict is not None:
                (stage / _SPEC).write_text(
                    json.dumps(spec_dict, sort_keys=True, indent=2, default=str) + "\n"
                )
            try:
                os.rename(stage, final)
            except OSError:
                if self._complete(final):
                    # Somebody else published this key first; keep theirs.
                    shutil.rmtree(stage, ignore_errors=True)
                else:
                    # Stale *partial* entry (interrupted writer or manual
                    # deletion inside the directory): replace it.  The test
                    # must be completeness, not existence — a directory
                    # holding only a trace reads as a permanent miss, and
                    # keeping it would wedge the key into re-executing
                    # forever.
                    shutil.rmtree(final, ignore_errors=True)
                    try:
                        os.rename(stage, final)
                    except OSError:
                        if not self._complete(final):
                            raise
                        shutil.rmtree(stage, ignore_errors=True)
        finally:
            shutil.rmtree(stage, ignore_errors=True)
        return CachedRun(key=key, path=final)

    # -- maintenance -------------------------------------------------------
    def _entry_dirs(self) -> Iterator[Path]:
        """Every entry directory, complete or not (maintenance view)."""
        for shard in sorted(self.root.glob("??")):
            if not shard.is_dir():
                continue
            yield from sorted(p for p in shard.iterdir() if p.is_dir())

    def entries(self) -> Iterator[CachedRun]:
        """Every *complete* entry — same definition of valid as :meth:`get`.

        A directory holding only a trace (an interrupted writer, or a
        manually truncated entry) is not yielded: handing out a
        :class:`CachedRun` whose ``load_metrics`` would fail while ``get``
        reports the same key as a miss made ``len(cache)`` disagree with
        what lookups can actually see.
        """
        for entry in self._entry_dirs():
            if self._complete(entry):
                yield CachedRun(key=entry.name, path=entry)

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete every entry, partial ones included; returns the count."""
        n = 0
        for path in list(self._entry_dirs()):
            shutil.rmtree(path, ignore_errors=True)
            n += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.root)!r}, {len(self)} entries)"
