"""The parallel sweep runner: fan runs out over processes, cache results.

The execution unit is one :class:`~repro.runner.spec.RunSpec`.  The runner
offers three levels of service:

* :func:`execute_spec` — build and run one spec in-process (simulated specs
  transparently obtain their calibration trace, through the cache when one
  is available);
* :func:`run_cached` — cache-aware execution: return the cached result when
  the spec's content key is present, execute-and-publish otherwise;
* :func:`sweep` — run many specs, optionally across ``multiprocessing``
  workers, and aggregate the per-run :class:`RunMetrics` plus cache-hit
  accounting into a :class:`SweepResult`.

Traces stay byte-identical whichever path produced them: a run is a pure
function of its spec, the plain-text trace format round-trips floats via
``repr``, and wall-clock observability lives in the metrics JSON, never in
the trace.  Parallel workers therefore compose with the cache for free —
whichever process publishes a key first wins, and every reader sees the
same bytes.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.cells import plan_for_run
from ..core.metrics import RunMetrics
from ..core.simbackend import SimulationBackend
from ..kernels.timing import KernelModelSet
from ..machine import MachineBackend, collect_samples, get_machine
from ..trace.events import Trace
from ..trace.textio import dumps_trace, loads_trace
from .cache import CachedRun, ResultCache
from .spec import RunSpec

__all__ = ["RunResult", "SweepResult", "execute_spec", "run_cached", "run_observed", "sweep"]


def execute_spec(
    spec: RunSpec, cache: Optional[ResultCache] = None, *, probe=None
) -> Tuple[Trace, RunMetrics]:
    """Run ``spec`` in this process and return its trace and metrics.

    For simulated specs the calibration run goes through :func:`run_cached`
    with the same ``cache``, so repeated sweeps (and the many simulated
    points sharing one calibration recipe) pay for the calibration trace
    once.  ``probe`` (see :mod:`repro.obs.probe`) observes the main run —
    never the calibration run, whose stream would otherwise pollute it.
    """
    program = spec.program.build()
    machine = get_machine(spec.machine)
    metrics = RunMetrics()

    if spec.mode == "real":
        backend = MachineBackend(machine)
        trace_meta: Dict[str, object] = {"mode": "real"}
        models = None
    else:
        if spec.calibration is not None:
            # A pre-fitted repro.calib/v1 document replaces the in-line
            # calibration recipe: no calibration run, cached or otherwise.
            from ..calib.document import load_calibration

            models = load_calibration(spec.calibration).to_model_set()
        else:
            cal = run_cached(spec.calibration_spec(), cache)
            samples = collect_samples(
                cal.load_trace(), drop_first_per_worker=spec.cal_drop_first
            )
            if not samples:
                raise ValueError("calibration run produced no samples (empty program?)")
            models = KernelModelSet.from_samples(
                samples, family=spec.family, trim_warmup=spec.cal_trim
            )
        backend = SimulationBackend(
            models, warmup_penalty=machine.warmup_penalty if spec.warmup else 0.0
        )
        trace_meta = {"mode": "simulated"}

    if spec.runtime == "threaded":
        # Replay on real worker threads (§V-D protocol) under the spec's
        # race guard, supervised by the spec's stall watchdog.
        from ..core.threaded import ThreadedRuntime

        runtime = ThreadedRuntime(
            spec.scheduler.n_workers,
            mode="simulate",
            guard=spec.guard if spec.guard is not None else "quiesce",
            window=spec.scheduler.window if spec.scheduler.window is not None else 4096,
            stall=spec.stall_policy(),
        )
        trace = runtime.run(
            program, models=models, seed=spec.seed, metrics=metrics, probe=probe
        )
    else:
        scheduler = spec.scheduler.build()
        cells = plan_for_run(spec.engine_mode, machine, scheduler.n_workers)
        trace = scheduler.run(
            program, backend, seed=spec.seed, trace_meta=trace_meta,
            metrics=metrics, probe=probe,
            engine_mode=spec.engine_mode, cells=cells,
            engine_backend=spec.engine_backend,
        )
    metrics.extra.update(
        {
            "algorithm": spec.program.algorithm,
            "nt": spec.program.nt,
            "nb": spec.program.nb,
            "scheduler": spec.scheduler.name,
            "machine": spec.machine,
            "seed": spec.seed,
            "mode": spec.mode,
            "runtime": spec.runtime,
            "engine_mode": spec.engine_mode,
        }
    )
    return trace, metrics


@dataclass
class RunResult:
    """Outcome of one spec through the runner.

    ``cached`` says whether the result came out of the cache.  ``wall_s`` is
    the time this invocation spent obtaining the result (near zero on a
    hit).  The trace itself stays out-of-line: ``trace_path`` points into
    the cache, or ``trace_text`` carries the serialised trace for cacheless
    runs — :meth:`load_trace` resolves either.
    """

    spec: RunSpec
    key: str
    cached: bool
    metrics: RunMetrics
    wall_s: float
    trace_path: Optional[str] = None
    trace_text: Optional[str] = None

    def trace_dump(self) -> str:
        """The serialised plain-text trace (byte-comparable across runs)."""
        if self.trace_text is not None:
            return self.trace_text
        if self.trace_path is not None:
            return Path(self.trace_path).read_text()
        raise RuntimeError("result carries no trace")

    def load_trace(self) -> Trace:
        return loads_trace(self.trace_dump())


def run_cached(
    spec: RunSpec, cache: Optional[ResultCache] = None, *, probe=None
) -> RunResult:
    """Return the cached result for ``spec``, executing and publishing on miss.

    With ``cache=None`` the spec always executes and the trace travels
    in-memory with the result.  An enabled ``probe`` forces execution (a
    cached trace carries no scheduler-internal event stream to replay) but
    still publishes the result, so later unobserved runs hit the cache.
    """
    t0 = time.perf_counter()
    key = spec.cache_key()
    observing = probe is not None and getattr(probe, "enabled", True)
    if cache is not None and not observing:
        hit = cache.get(key)
        if hit is not None:
            return RunResult(
                spec=spec,
                key=key,
                cached=True,
                metrics=hit.load_metrics(),
                wall_s=time.perf_counter() - t0,
                trace_path=str(hit.trace_path),
            )
    trace, metrics = execute_spec(spec, cache, probe=probe)
    if cache is not None:
        entry: CachedRun = cache.put(key, trace, metrics, spec.to_dict())
        return RunResult(
            spec=spec,
            key=key,
            cached=False,
            metrics=metrics,
            wall_s=time.perf_counter() - t0,
            trace_path=str(entry.trace_path),
        )
    return RunResult(
        spec=spec,
        key=key,
        cached=False,
        metrics=metrics,
        wall_s=time.perf_counter() - t0,
        trace_text=dumps_trace(trace),
    )


def run_observed(
    spec: RunSpec,
    cache: Optional[ResultCache] = None,
    probe_dir: Union[str, Path, None] = None,
    *,
    prefix: Optional[str] = None,
) -> RunResult:
    """One spec, optionally with a recording probe + timeline artifact export.

    With ``probe_dir`` set, the run executes under a fresh
    :class:`~repro.obs.probe.RecordingProbe` and its timeline artifact set
    (Perfetto JSON, counter series, wait attribution, metrics) lands in
    ``probe_dir`` under ``prefix`` (default: the run's cache-key prefix —
    one artifact family per distinct spec, stable across re-runs).  Observed
    runs always execute (a cached trace carries no probe stream to replay)
    but still publish to ``cache``, so the next unobserved run hits.  This
    is the execution path shared by the sweep workers and the serving layer.
    """
    if probe_dir is None:
        return run_cached(spec, cache)
    from ..obs.probe import RecordingProbe
    from ..obs.timeline import export_timeline

    probe = RecordingProbe()
    result = run_cached(spec, cache, probe=probe)
    export_timeline(
        str(probe_dir),
        result.load_trace(),
        probe,
        metrics=result.metrics,
        prefix=prefix if prefix is not None else result.key[:16],
    )
    return result


def _sweep_worker(payload: Tuple[RunSpec, Optional[str], Optional[str]]) -> RunResult:
    """Pool entry point: one spec against the shared on-disk cache."""
    spec, cache_dir, probe_dir = payload
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return run_observed(spec, cache, probe_dir)


@dataclass
class SweepResult:
    """Aggregate outcome of one :func:`sweep` invocation."""

    results: List[RunResult]
    wall_s: float
    jobs: int
    cache_dir: Optional[str] = None
    #: sweep-level schema tag for the exported metrics document
    schema: str = field(default="repro.sweep_metrics/v1", repr=False)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    def metrics_document(self) -> Dict[str, Any]:
        """The combined metrics JSON document (the CI benchmark artifact)."""
        return {
            "schema": self.schema,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "n_runs": len(self.results),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_dir": self.cache_dir,
            "runs": [
                {
                    "key": r.key,
                    "spec": r.spec.to_dict(),
                    "cached": r.cached,
                    "wall_s": r.wall_s,
                    "metrics": r.metrics.to_dict(),
                }
                for r in self.results
            ],
        }

    def write_metrics(self, path: Union[str, Path]) -> Path:
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.metrics_document(), sort_keys=True, indent=2, default=str)
            + "\n"
        )
        return path

    def summary(self) -> str:
        return (
            f"{len(self.results)} runs in {self.wall_s:.2f}s "
            f"(jobs={self.jobs}, cache: {self.cache_hits} hits, "
            f"{self.cache_misses} misses)"
        )


def sweep(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    cache: Union[ResultCache, str, Path, None] = None,
    ephemeral_cache: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    probe_dir: Union[str, Path, None] = None,
) -> SweepResult:
    """Run every spec, fanning out over ``jobs`` worker processes.

    ``cache`` may be a :class:`ResultCache`, a directory path, or ``None``.
    With ``cache=None`` and ``ephemeral_cache=True`` (the default) the sweep
    still shares results *within* itself through a temporary cache — so the
    simulated points of one sweep reuse each other's calibration runs — and
    deletes it afterwards, returning traces in-memory.  Pass an explicit
    cache (or directory) to persist results across sweeps; see
    :func:`~repro.runner.cache.default_cache_dir` for the conventional
    location.

    ``probe_dir``, when given, attaches a recording probe to every run and
    writes each run's timeline artifact set there (named by cache-key
    prefix); observed runs always execute — the cache cannot replay a probe
    stream — but still publish, so the artifacts and the cache stay in sync.

    Results come back in spec order regardless of completion order.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    t0 = time.perf_counter()
    if probe_dir is not None:
        probe_dir = str(probe_dir)

    tmp_root: Optional[str] = None
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    if cache is None and ephemeral_cache and specs:
        tmp_root = tempfile.mkdtemp(prefix="repro-sweep-")
        cache = ResultCache(tmp_root)
    cache_dir = str(cache.root) if cache is not None else None

    try:
        n_jobs = max(1, min(jobs, len(specs)))
        if n_jobs == 1:
            results = []
            for i, spec in enumerate(specs):
                r = run_observed(spec, cache, probe_dir)
                results.append(r)
                if progress is not None:
                    progress(
                        f"[{i + 1}/{len(specs)}] "
                        f"{'hit ' if r.cached else 'run '} {_describe(spec)} "
                        f"({r.wall_s:.2f}s)"
                    )
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            payloads = [(spec, cache_dir, probe_dir) for spec in specs]
            with ctx.Pool(processes=n_jobs) as pool:
                results = []
                for i, r in enumerate(pool.imap(_sweep_worker, payloads)):
                    results.append(r)
                    if progress is not None:
                        progress(
                            f"[{i + 1}/{len(specs)}] "
                            f"{'hit ' if r.cached else 'run '} {_describe(r.spec)} "
                            f"({r.wall_s:.2f}s)"
                        )
        if tmp_root is not None:
            # The backing store is about to vanish: pull traces in-memory.
            for r in results:
                r.trace_text = r.trace_dump()
                r.trace_path = None
            cache_dir = None
    finally:
        if tmp_root is not None:
            shutil.rmtree(tmp_root, ignore_errors=True)

    return SweepResult(
        results=results,
        wall_s=time.perf_counter() - t0,
        jobs=n_jobs if specs else jobs,
        cache_dir=cache_dir,
    )


def _describe(spec: RunSpec) -> str:
    return (
        f"{spec.program.algorithm} nt={spec.program.nt} "
        f"{spec.scheduler.name} seed={spec.seed} {spec.mode}"
    )
