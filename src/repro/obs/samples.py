"""Per-kernel duration samples as a publishable artifact.

``<prefix>.samples.json`` (schema ``repro.kernel_samples/v1``) is the
calibration-facing slice of an observed run: for every kernel class, the raw
duration samples harvested from the trace with each worker's first task
dropped (the MKL-style warm-up outlier the paper neutralises before fitting,
mirroring :func:`repro.machine.calibration.collect_samples`).

:func:`repro.calib.fit.fit_from_probe_dir` ingests these documents directly;
the per-task ``attribution.json`` remains usable as a fallback for probe
directories written before this artifact existed.

Computed purely from the recorded trace — no scheduler/runtime imports, per
the obs-layer rule.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

__all__ = ["KERNEL_SAMPLES_SCHEMA", "kernel_samples_document", "write_kernel_samples"]

KERNEL_SAMPLES_SCHEMA = "repro.kernel_samples/v1"


def kernel_samples_document(
    trace,
    *,
    drop_first_per_worker: bool = True,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Build the ``repro.kernel_samples/v1`` document for one trace.

    ``meta`` (algorithm, nt, machine, ...) is embedded verbatim so a
    calibration fit can report its provenance.
    """
    skip = set()
    if drop_first_per_worker:
        for worker in range(trace.n_workers):
            events = trace.worker_events(worker)
            if events:
                skip.add(events[0].task_id)
    samples: Dict[str, List[float]] = {}
    for e in sorted(trace.events):
        if e.task_id in skip:
            continue
        samples.setdefault(e.kernel, []).append(float(e.duration))
    return {
        "schema": KERNEL_SAMPLES_SCHEMA,
        "drop_first_per_worker": bool(drop_first_per_worker),
        "n_tasks": len(trace.events),
        "n_dropped": len(skip),
        "meta": dict(meta or {}),
        "samples": {kernel: samples[kernel] for kernel in sorted(samples)},
    }


def write_kernel_samples(
    path: Union[str, Path],
    trace,
    *,
    drop_first_per_worker: bool = True,
    meta: Optional[Mapping[str, object]] = None,
) -> Path:
    """Write :func:`kernel_samples_document` to ``path`` and return it."""
    path = Path(path)
    doc = kernel_samples_document(
        trace, drop_first_per_worker=drop_first_per_worker, meta=meta
    )
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
