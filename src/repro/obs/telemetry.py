"""Service-side telemetry: metrics registry, request tracing, structured logs.

The simulation runtimes got their observability layer in :mod:`repro.obs`
(probes, wait attribution, Perfetto export); this module gives the *serving*
stack — ``repro serve``, the fleet router, loadgen — the matching three
pillars, stdlib-only:

* **Metrics.**  :class:`MetricsRegistry` holds counters, gauges, and
  fixed-bucket histograms and renders them in the Prometheus text exposition
  format (version 0.0.4), which both daemons expose as ``GET /metrics``.
  :func:`parse_exposition` is the registry's own *strict* re-parser — the
  same discipline as ``obs.perfetto``'s validating loader: CI and the tests
  round-trip every rendered page through it, and the fleet router uses it to
  validate shard scrapes before re-labelling them with ``shard="<id>"``
  (:func:`merge_expositions`) into one fleet-wide page.
* **Tracing.**  :class:`TraceContext` travels in the
  ``X-Repro-Trace-Id`` / ``X-Repro-Parent-Span`` headers
  (client → router → shard); each component records :class:`Span` values
  (route/forward on the router, admission/wait/cache-lookup/run on the
  shard) which ride back in the response document and render through
  :func:`repro.obs.perfetto.service_trace_event_document` in the same
  Chrome-trace UI as a simulation timeline.
* **Structured logs.**  :class:`JsonLogger` appends one JSON object per
  event; :class:`ServiceTelemetry` wires it as the HTTP access log
  (``--log-json``), replacing the former blanket log suppression.

Cost discipline matches PR4's probes: with telemetry disabled every hook
site in the service hot path is a single ``is not None`` check; span
recording additionally requires the *request* to carry a trace header, so
an enabled-but-untraced fleet only pays a few dictionary increments per
request.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
import uuid
from bisect import bisect_left
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "METRICS_CONTENT_TYPE",
    "PARENT_HEADER",
    "TRACE_HEADER",
    "Counter",
    "Exposition",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricFamily",
    "MetricSample",
    "MetricsError",
    "MetricsRegistry",
    "ServiceTelemetry",
    "Span",
    "TraceContext",
    "histogram_quantile",
    "merge_expositions",
    "new_span_id",
    "new_trace_id",
    "parse_exposition",
    "route_label",
]

#: Content type of a ``GET /metrics`` response (text exposition format).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Latency histogram bounds in seconds — sub-millisecond cache hits up to
#: multi-second cold simulation runs, roughly geometric.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Routes kept as distinct label values; anything else collapses to
#: ``"other"`` so a path-scanning client cannot explode series cardinality.
KNOWN_ROUTES = ("/v1/run", "/v1/batch", "/v1/health", "/v1/stats", "/metrics")


def route_label(path: str) -> str:
    """Normalise a request path into a bounded ``route`` label value."""
    return path if path in KNOWN_ROUTES else "other"


class MetricsError(ValueError):
    """A metric definition, exposition page, or merge violated the format."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_string(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(str(v))}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class _Instrument:
    """One metric family registered in a :class:`MetricsRegistry`."""

    kind = "untyped"
    __slots__ = ("name", "help", "labelnames", "_series", "_lock")

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str], lock: threading.Lock
    ) -> None:
        self.name = _check_name(name)
        self.help = help_text
        for ln in labelnames:
            if not _LABEL_NAME_RE.match(ln):
                raise MetricsError(f"invalid label name {ln!r} on {name}")
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._series: Dict[Tuple[str, ...], Any] = {}
        self._lock = lock

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"{self.name} takes labels {list(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)


class Counter(_Instrument):
    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))


class Gauge(_Instrument):
    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))


class Histogram(_Instrument):
    """Fixed-bucket histogram; exposed as cumulative ``_bucket`` samples."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float],
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(not math.isfinite(b) for b in bounds):
            raise MetricsError(f"{name}: buckets must be finite and non-empty")
        if list(bounds) != sorted(set(bounds)):
            raise MetricsError(f"{name}: buckets must be strictly increasing")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        idx = bisect_left(self.buckets, float(value))
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                entry = [[0] * (len(self.buckets) + 1), 0.0]
                self._series[key] = entry
            entry[0][idx] += 1
            entry[1] += float(value)

    def snapshot(self, **labels: Any) -> Optional[Tuple[List[int], float]]:
        """``(per-bucket counts incl. +Inf, sum)`` for one series, or None."""
        key = self._key(labels)
        with self._lock:
            entry = self._series.get(key)
            return (list(entry[0]), float(entry[1])) if entry is not None else None


class MetricsRegistry:
    """A process-local set of instruments rendered as one exposition page.

    Getter methods are idempotent: asking again for the same name with the
    same kind and label set returns the existing instrument (so components
    sharing a registry can declare their metrics independently), while a
    conflicting redefinition raises :class:`MetricsError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, inst: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(inst.name)
            if existing is None:
                # Zero-label instruments pre-create their single series so
                # the sample renders (and deltas work) before any traffic.
                if not inst.labelnames and not isinstance(inst, Histogram):
                    inst._series[()] = 0.0
                self._instruments[inst.name] = inst
                return inst
            if (
                existing.kind != inst.kind
                or existing.labelnames != inst.labelnames
                or (
                    isinstance(existing, Histogram)
                    and isinstance(inst, Histogram)
                    and existing.buckets != inst.buckets
                )
            ):
                raise MetricsError(
                    f"metric {inst.name} already registered as {existing.kind}"
                    f"{list(existing.labelnames)}"
                )
            return existing

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labelnames, self._lock))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames, self._lock))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(name, help_text, labelnames, self._lock, buckets)
        )

    def render(self) -> str:
        """The exposition page; guaranteed to re-parse strictly."""
        lines: List[str] = []
        with self._lock:
            instruments = sorted(self._instruments.items())
            for name, inst in instruments:
                lines.append(f"# HELP {name} {_escape_help(inst.help)}")
                lines.append(f"# TYPE {name} {inst.kind}")
                for key in sorted(inst._series):
                    entry = inst._series[key]
                    if isinstance(inst, Histogram):
                        cumulative = 0
                        for bound, count in zip(
                            (*inst.buckets, math.inf), entry[0]
                        ):
                            cumulative += count
                            labels = _label_string(
                                (*inst.labelnames, "le"), (*key, _fmt_value(bound))
                            )
                            lines.append(
                                f"{name}_bucket{labels} {_fmt_value(cumulative)}"
                            )
                        base = _label_string(inst.labelnames, key)
                        lines.append(f"{name}_sum{base} {_fmt_value(entry[1])}")
                        lines.append(f"{name}_count{base} {_fmt_value(cumulative)}")
                    else:
                        labels = _label_string(inst.labelnames, key)
                        lines.append(f"{name}{labels} {_fmt_value(entry)}")
        return "\n".join(lines) + "\n"


# -- exposition parsing ------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(?:\{(.*)\})?"  # optional label body
    r"\s+(\S+)"  # value
    r"(?:\s+(-?\d+))?"  # optional timestamp (accepted, ignored)
    r"\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_PARSED_TYPES = ("counter", "gauge", "histogram", "untyped")


def _unescape_label(raw: str) -> str:
    return raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


@dataclass
class MetricSample:
    """One exposition line: sample name, label set, value."""

    name: str
    labels: Dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """One ``# TYPE`` family and its samples, in page order."""

    name: str
    type: str
    help: Optional[str] = None
    samples: List[MetricSample] = field(default_factory=list)


def _parse_labels(body: str, where: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        m = _LABEL_PAIR_RE.match(body, i)
        if m is None:
            raise MetricsError(f"{where}: malformed label body at {body[i:]!r}")
        lname = m.group(1)
        if lname in labels:
            raise MetricsError(f"{where}: duplicate label {lname!r}")
        labels[lname] = _unescape_label(m.group(2))
        i = m.end()
        if i < len(body):
            if body[i] != ",":
                raise MetricsError(f"{where}: expected ',' between labels")
            i += 1
    return labels


def _parse_value(raw: str, where: str) -> float:
    try:
        return float(raw)
    except ValueError as exc:
        raise MetricsError(f"{where}: unparseable value {raw!r}") from exc


class Exposition:
    """A strictly parsed exposition page (see :func:`parse_exposition`)."""

    def __init__(self, families: Dict[str, MetricFamily]) -> None:
        self.families = families

    @staticmethod
    def _matches(
        sample: MetricSample,
        labels: Optional[Mapping[str, str]],
        without: Sequence[str],
    ) -> bool:
        if any(w in sample.labels for w in without):
            return False
        if labels:
            return all(sample.labels.get(k) == str(v) for k, v in labels.items())
        return True

    def _family_samples(self, sample_name: str) -> List[MetricSample]:
        for fam in self.families.values():
            found = [s for s in fam.samples if s.name == sample_name]
            if found:
                return found
        return []

    def total(
        self,
        sample_name: str,
        labels: Optional[Mapping[str, str]] = None,
        *,
        without: Sequence[str] = (),
    ) -> float:
        """Sum of samples named ``sample_name`` whose labels ⊇ ``labels``.

        ``without`` names labels whose mere *presence* excludes a sample —
        e.g. ``without=("shard",)`` keeps a router's own series while
        dropping the per-shard re-labelled copies it aggregates.
        """
        return sum(
            s.value
            for s in self._family_samples(sample_name)
            if self._matches(s, labels, without)
        )

    def histogram(
        self,
        family_name: str,
        labels: Optional[Mapping[str, str]] = None,
        *,
        without: Sequence[str] = (),
    ) -> Optional[Dict[str, Any]]:
        """Matching histogram series merged: cumulative buckets, sum, count.

        Returns ``{"buckets": {le: cumulative}, "sum": s, "count": n}`` or
        ``None`` when the family is absent or nothing matches.  Cumulative
        histograms are mergeable by addition, so matching multiple label
        sets (several routes, several shards) aggregates them correctly.
        """
        fam = self.families.get(family_name)
        if fam is None or fam.type != "histogram":
            return None
        without = tuple(without)
        buckets: Dict[float, float] = {}
        total = summed = 0.0
        matched = False
        for s in fam.samples:
            probe = MetricSample(
                s.name, {k: v for k, v in s.labels.items() if k != "le"}, s.value
            )
            if not self._matches(probe, labels, without):
                continue
            if s.name == family_name + "_bucket":
                le = _parse_value(s.labels["le"], family_name)
                buckets[le] = buckets.get(le, 0.0) + s.value
                matched = True
            elif s.name == family_name + "_count":
                total += s.value
            elif s.name == family_name + "_sum":
                summed += s.value
        if not matched:
            return None
        return {"buckets": buckets, "sum": summed, "count": total}


def _family_for_sample(
    families: Dict[str, MetricFamily], sample_name: str, where: str
) -> Tuple[MetricFamily, bool]:
    """Resolve which declared family a sample belongs to.

    Returns ``(family, is_histogram_child)``; strict — a sample with no
    preceding ``# TYPE`` declaration is an error.
    """
    fam = families.get(sample_name)
    if fam is not None:
        if fam.type == "histogram":
            raise MetricsError(
                f"{where}: histogram {sample_name} exposes only "
                "_bucket/_sum/_count samples"
            )
        return fam, False
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = families.get(sample_name[: -len(suffix)])
            if base is not None and base.type == "histogram":
                return base, True
    raise MetricsError(f"{where}: sample {sample_name!r} has no # TYPE declaration")


def _validate_histograms(families: Dict[str, MetricFamily]) -> None:
    for fam in families.values():
        if fam.type != "histogram":
            continue
        groups: Dict[Tuple[Tuple[str, str], ...], Dict[str, Any]] = {}
        for s in fam.samples:
            key = tuple(sorted((k, v) for k, v in s.labels.items() if k != "le"))
            g = groups.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if s.name == fam.name + "_bucket":
                if "le" not in s.labels:
                    raise MetricsError(f"{fam.name}: _bucket sample without le label")
                g["buckets"].append((_parse_value(s.labels["le"], fam.name), s.value))
            elif s.name == fam.name + "_sum":
                g["sum"] = s.value
            elif s.name == fam.name + "_count":
                g["count"] = s.value
        for key, g in groups.items():
            where = f"{fam.name}{dict(key)}"
            if not g["buckets"]:
                raise MetricsError(f"{where}: histogram series without buckets")
            ordered = sorted(g["buckets"])
            cumulative = [v for _, v in ordered]
            if any(b > a for a, b in zip(cumulative[1:], cumulative)):
                raise MetricsError(f"{where}: bucket counts are not cumulative")
            if ordered[-1][0] != math.inf:
                raise MetricsError(f"{where}: histogram without an le=\"+Inf\" bucket")
            if g["count"] is None or g["sum"] is None:
                raise MetricsError(f"{where}: histogram without _count/_sum")
            if g["count"] != ordered[-1][1]:
                raise MetricsError(
                    f"{where}: _count {g['count']} != +Inf bucket {ordered[-1][1]}"
                )


def parse_exposition(text: str) -> Exposition:
    """Strictly parse a Prometheus text exposition page.

    Beyond line syntax this enforces the structural invariants consumers
    rely on: every sample is declared by a preceding ``# TYPE``; histogram
    samples are limited to ``_bucket``/``_sum``/``_count`` with an ``le``
    label on buckets; per-series bucket counts are cumulative, carry an
    ``le="+Inf"`` bound, and agree with ``_count``; no duplicate series.
    Raises :class:`MetricsError` naming the first offending line.
    """
    families: Dict[str, MetricFamily] = {}
    seen: set = set()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        where = f"line {lineno}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            keyword = parts[1] if len(parts) > 1 else ""
            if keyword == "TYPE":
                if len(parts) != 4:
                    raise MetricsError(f"{where}: malformed # TYPE line")
                name, mtype = parts[2], parts[3].strip()
                _check_name(name)
                if mtype not in _PARSED_TYPES:
                    raise MetricsError(f"{where}: unknown metric type {mtype!r}")
                fam = families.get(name)
                if fam is not None:
                    if fam.type != "untyped" or fam.samples:
                        raise MetricsError(f"{where}: duplicate # TYPE for {name}")
                    fam.type = mtype
                else:
                    families[name] = MetricFamily(name, mtype)
            elif keyword == "HELP":
                if len(parts) < 3:
                    raise MetricsError(f"{where}: malformed # HELP line")
                name = parts[2]
                _check_name(name)
                help_text = parts[3] if len(parts) > 3 else ""
                fam = families.get(name)
                if fam is None:
                    families[name] = MetricFamily(name, "untyped", help=help_text)
                elif fam.help is None:
                    fam.help = help_text
                else:
                    raise MetricsError(f"{where}: duplicate # HELP for {name}")
            # Any other '#' line is a comment, skipped per the format.
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise MetricsError(f"{where}: unparseable sample line {line!r}")
        sample_name, label_body, value_raw = m.group(1), m.group(2), m.group(3)
        labels = _parse_labels(label_body, where) if label_body else {}
        value = _parse_value(value_raw, where)
        fam, _ = _family_for_sample(families, sample_name, where)
        series_key = (sample_name, tuple(sorted(labels.items())))
        if series_key in seen:
            raise MetricsError(f"{where}: duplicate series {sample_name}{labels}")
        seen.add(series_key)
        fam.samples.append(MetricSample(sample_name, labels, value))
    _validate_histograms(families)
    return Exposition(families)


def merge_expositions(
    parts: Sequence[Tuple[Exposition, Mapping[str, str]]]
) -> str:
    """Merge parsed pages into one, re-labelling each part's samples.

    ``parts`` pairs an :class:`Exposition` with extra labels stamped onto
    every one of its samples — the fleet router passes ``{"shard": sid}``
    per shard page and ``{}`` for its own.  Families merge by name (type
    conflicts and colliding series raise); the output re-parses strictly.
    """
    merged: Dict[str, MetricFamily] = {}
    seen: set = set()
    for expo, extra in parts:
        extra = dict(extra)
        for fam in expo.families.values():
            out = merged.get(fam.name)
            if out is None:
                out = MetricFamily(fam.name, fam.type, help=fam.help)
                merged[fam.name] = out
            elif out.type != fam.type:
                raise MetricsError(
                    f"cannot merge {fam.name}: {out.type} vs {fam.type}"
                )
            for s in fam.samples:
                labels = {**s.labels, **extra}
                series_key = (s.name, tuple(sorted(labels.items())))
                if series_key in seen:
                    raise MetricsError(f"merge collision on {s.name}{labels}")
                seen.add(series_key)
                out.samples.append(MetricSample(s.name, labels, s.value))
    lines: List[str] = []
    for name in sorted(merged):
        fam = merged[name]
        if fam.help is not None:
            lines.append(f"# HELP {name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {name} {fam.type}")
        for s in fam.samples:
            names = tuple(s.labels)
            values = tuple(s.labels[n] for n in names)
            lines.append(f"{s.name}{_label_string(names, values)} {_fmt_value(s.value)}")
    return "\n".join(lines) + "\n"


def histogram_quantile(
    buckets: Mapping[float, float], q: float
) -> Optional[float]:
    """Prometheus-style quantile estimate from cumulative ``le → count``.

    Linear interpolation inside the bucket that crosses the target rank
    (observations assumed uniform within a bucket, lower bound 0); a rank
    landing in the ``+Inf`` bucket reports the largest finite bound, which
    understates — exactly as ``histogram_quantile()`` in PromQL does.
    Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if math.inf not in buckets:
        raise MetricsError("histogram buckets carry no +Inf bound")
    total = buckets[math.inf]
    if total <= 0:
        return None
    rank = q * total
    prev_le = 0.0
    prev_cum = 0.0
    finite = sorted(le for le in buckets if math.isfinite(le))
    for le in finite:
        cum = buckets[le]
        if cum >= rank:
            if cum <= prev_cum:
                return le
            fraction = (rank - prev_cum) / (cum - prev_cum)
            return prev_le + (le - prev_le) * max(0.0, min(1.0, fraction))
        prev_le, prev_cum = le, cum
    return finite[-1] if finite else None


# -- request tracing ---------------------------------------------------------

#: Trace-context propagation headers (client → router → shard).
TRACE_HEADER = "X-Repro-Trace-Id"
PARENT_HEADER = "X-Repro-Parent-Span"

_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagated pair: which trace, and which span is the parent."""

    trace_id: str
    parent_span: Optional[str] = None

    @classmethod
    def from_headers(cls, headers: Mapping[str, str]) -> Optional["TraceContext"]:
        """Extract a context from HTTP headers; garbage degrades to None.

        An invalid trace id disables tracing for the request rather than
        failing it — telemetry must never turn a good request into a 400.
        """
        raw = headers.get(TRACE_HEADER)
        if not raw or not _ID_RE.match(raw):
            return None
        parent = headers.get(PARENT_HEADER)
        if parent is not None and not _ID_RE.match(parent):
            parent = None
        return cls(trace_id=raw, parent_span=parent)

    def headers(self) -> Dict[str, str]:
        out = {TRACE_HEADER: self.trace_id}
        if self.parent_span:
            out[PARENT_HEADER] = self.parent_span
        return out

    def child(self, span_id: str) -> "TraceContext":
        """The context to forward downstream: same trace, new parent."""
        return TraceContext(trace_id=self.trace_id, parent_span=span_id)


@dataclass(frozen=True)
class Span:
    """One timed operation inside a traced request.

    ``start_s`` is epoch wall-clock seconds (durations are measured on the
    monotonic clock by the recorders).  Spans recorded inside a shared
    flight are created *unbound* (no trace id) and bound per requester via
    :meth:`bound`, since several traced requests may join one execution.
    """

    name: str
    component: str
    start_s: float
    duration_s: float
    span_id: str
    trace_id: Optional[str] = None
    parent_id: Optional[str] = None
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def bound(self, trace_id: str, parent_id: Optional[str] = None) -> "Span":
        """A copy attached to ``trace_id``; existing ids are never clobbered."""
        return replace(
            self,
            trace_id=self.trace_id or trace_id,
            parent_id=self.parent_id or parent_id,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "component": self.component,
            "start_s": round(float(self.start_s), 6),
            "duration_s": round(max(0.0, float(self.duration_s)), 6),
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Span":
        """Parse a span document; raises ``ValueError`` on any defect."""
        if not isinstance(doc, Mapping):
            raise ValueError(f"span must be an object, got {type(doc).__name__}")
        for key in ("name", "component", "span_id"):
            if not isinstance(doc.get(key), str) or not doc[key]:
                raise ValueError(f"span needs a non-empty string {key!r}")
        for key in ("start_s", "duration_s"):
            v = doc.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                raise ValueError(f"span {key!r} must be a non-negative number")
        for key in ("trace_id", "parent_id"):
            v = doc.get(key)
            if v is not None and not isinstance(v, str):
                raise ValueError(f"span {key!r} must be a string or null")
        attrs = doc.get("attrs", {})
        if not isinstance(attrs, Mapping):
            raise ValueError("span 'attrs' must be an object")
        return cls(
            name=doc["name"],
            component=doc["component"],
            start_s=float(doc["start_s"]),
            duration_s=float(doc["duration_s"]),
            span_id=doc["span_id"],
            trace_id=doc.get("trace_id"),
            parent_id=doc.get("parent_id"),
            attrs=dict(attrs),
        )


# -- structured logging ------------------------------------------------------


class JsonLogger:
    """Append-only structured log: one JSON object per line, flushed.

    ``target`` is a path (opened in append mode, parents created) or any
    writable text stream.  Thread-safe; a failing write is swallowed —
    logging must never take the serving path down with it.
    """

    def __init__(self, target: Union[str, Path, Any]) -> None:
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self.path: Optional[Path] = None
            self._fh = target
            self._owns = False
        else:
            self.path = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._owns = True

    def log(self, event: str, **fields: Any) -> None:
        doc: Dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        doc.update(fields)
        # default=str: an exotic field value degrades to its repr instead of
        # raising mid-request.
        line = json.dumps(doc, sort_keys=True, default=str)
        try:
            with self._lock:
                self._fh.write(line + "\n")
                self._fh.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._owns:
            try:
                self._fh.close()
            except OSError:
                pass


# -- the per-daemon bundle ---------------------------------------------------


class ServiceTelemetry:
    """One daemon's registry + pre-created instruments + access log.

    ``component`` names the emitting process in spans and log lines
    (``"serve"``, ``"shard-0"``, ``"router"``).  ``access_log`` is a path /
    stream wired into a :class:`JsonLogger`, or ``None`` to log nothing.
    The shared HTTP front end calls :meth:`record_http` once per request;
    the service/router objects update the domain instruments directly.
    """

    def __init__(
        self,
        component: str = "serve",
        *,
        registry: Optional[MetricsRegistry] = None,
        access_log: Union[str, Path, JsonLogger, Any, None] = None,
    ) -> None:
        self.component = component
        self.registry = registry if registry is not None else MetricsRegistry()
        if access_log is None or isinstance(access_log, JsonLogger):
            self.access_log: Optional[JsonLogger] = access_log
        else:
            self.access_log = JsonLogger(access_log)
        r = self.registry
        self.requests = r.counter(
            "repro_requests_total",
            "HTTP requests handled, by route, method, and status.",
            ("route", "method", "status"),
        )
        self.latency = r.histogram(
            "repro_request_latency_seconds",
            "Wall-clock request handling latency by route.",
            ("route",),
        )
        self.rejected = r.counter(
            "repro_rejected_total",
            "Requests rejected by admission control, by reason.",
            ("reason",),
        )
        self.coalesced = r.counter(
            "repro_coalesced_total",
            "Requests that joined an already-running identical flight.",
        )
        self.cache_hits = r.counter(
            "repro_cache_hits_total",
            "Executions answered from the content-addressed result cache.",
        )
        self.runs = r.counter(
            "repro_runs_total",
            "Flight executions finished, by outcome.",
            ("outcome",),
        )
        self.run_seconds = r.histogram(
            "repro_run_seconds",
            "Flight wall time from admission to completion.",
        )
        self.queue_wait = r.histogram(
            "repro_queue_wait_seconds",
            "Time an admitted request waited before its run started.",
        )

    def record_http(
        self,
        *,
        route: str,
        method: str,
        status: int,
        latency_s: float,
        trace_id: Optional[str] = None,
        client: Optional[str] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Count one handled HTTP request and emit its access-log line."""
        self.requests.inc(route=route, method=method, status=str(int(status)))
        self.latency.observe(latency_s, route=route)
        log = self.access_log
        if log is not None:
            fields: Dict[str, Any] = {
                "component": self.component,
                "route": route,
                "method": method,
                "status": int(status),
                "latency_ms": round(latency_s * 1000.0, 3),
                "trace_id": trace_id,
            }
            if client:
                fields["client"] = client
            if extra:
                fields.update(extra)
            log.log("request", **fields)

    def server_log(self, message: str, *, client: Optional[str] = None) -> bool:
        """Route an ``http.server`` log line into the structured log.

        Returns ``True`` when a line was written — the HTTP handler falls
        back to its plain logger otherwise.
        """
        log = self.access_log
        if log is None:
            return False
        fields: Dict[str, Any] = {"component": self.component, "message": message}
        if client:
            fields["client"] = client
        log.log("http.server", **fields)
        return True

    def close(self) -> None:
        if self.access_log is not None:
            self.access_log.close()
