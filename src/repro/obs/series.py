"""Virtual-time series derived from a recorded probe stream.

Replays the lifecycle and TEQ events of a :class:`~repro.obs.probe.RecordingProbe`
into step-function counters over virtual time:

``ready_depth``
    Tasks ready but not yet claimed by a worker (+1 on ``ready``, −1 on
    ``dispatched``).
``window_occupancy``
    Inserted-but-unfinished tasks — the quantity the scheduler window
    throttles (+1 on ``inserted``, −1 on ``finished``).
``active_workers``
    Cores currently executing a task (+width on ``dispatched``, −width on
    ``finished``).
``teq_depth``
    Task Execution Queue depth; present only for threaded-runtime streams
    (the event-driven engine has no TEQ).  Uses the depth each TEQ hook
    recorded rather than re-deriving it, so real-thread append reordering
    cannot corrupt the counter.
``cell<k>_depth``
    Per-cell event-queue depth at each clock advance of cell ``k``; present
    only for partitioned-engine (multicell) streams.  A sample with value 0
    at time *t* can also mark a null-message horizon update — the cell had
    nothing pending and conservatively advanced its clock to *t*.

Each series is a pair of parallel lists ``(times, values)``: the counter
holds ``values[i]`` from ``times[i]`` until ``times[i+1]``.  Consecutive
samples at one timestamp are collapsed to the last value so the exported
documents stay compact and monotone in time; :attr:`TimeSeries.peak` is
tracked over *every* appended sample, so a transient high-water mark inside
a zero-width burst (task ready and dispatched at the same instant) still
matches the corresponding :class:`~repro.core.metrics.RunMetrics` peak.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from .probe import (
    CELL_ADVANCE,
    DISPATCHED,
    FINISHED,
    INSERTED,
    READY,
    TEQ_INSERT,
    TEQ_POP,
    RecordingProbe,
)

__all__ = ["TimeSeries", "TimeSeriesSet", "build_series", "SERIES_SCHEMA"]

#: Schema tag of the exported time-series document.
SERIES_SCHEMA = "repro.timeline_series/v1"


@dataclass
class TimeSeries:
    """One step-function counter over virtual time."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    _peak: float = 0.0

    def append(self, t: float, value: float) -> None:
        """Add a sample, collapsing repeated timestamps to the last value.

        The peak is updated *before* collapsing, so transient values inside
        a same-timestamp burst still count.
        """
        if value > self._peak:
            self._peak = value
        if self.times and self.times[-1] == t:
            self.values[-1] = value
            return
        self.times.append(t)
        self.values.append(value)

    @property
    def peak(self) -> float:
        """High-water mark over every appended sample, transients included."""
        return self._peak

    def value_at(self, t: float) -> float:
        """Counter value in effect at virtual time ``t`` (0 before the start)."""
        from bisect import bisect_right

        i = bisect_right(self.times, t)
        return self.values[i - 1] if i > 0 else 0.0

    def __len__(self) -> int:
        return len(self.times)


class TimeSeriesSet:
    """The named counters of one run, with CSV/JSON export."""

    def __init__(self, series: Dict[str, TimeSeries]) -> None:
        self.series = series

    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series

    def names(self) -> List[str]:
        return sorted(self.series)

    def peaks(self) -> Dict[str, float]:
        return {name: s.peak for name, s in sorted(self.series.items())}

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SERIES_SCHEMA,
            "peaks": self.peaks(),
            "series": {
                name: {"t": s.times, "value": s.values}
                for name, s in sorted(self.series.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def to_csv(self) -> str:
        """Long-format CSV: ``series,t,value`` — one row per sample."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(["series", "t", "value"])
        for name in self.names():
            s = self.series[name]
            for t, v in zip(s.times, s.values):
                writer.writerow([name, repr(t), repr(v)])
        return buf.getvalue()

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    def write_csv(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_csv())
        return path


def build_series(probe: RecordingProbe) -> TimeSeriesSet:
    """Replay ``probe``'s stream into the standard counter set."""
    ready = TimeSeries("ready_depth")
    window = TimeSeries("window_occupancy")
    active = TimeSeries("active_workers")
    teq = TimeSeries("teq_depth")

    n_ready = 0
    n_window = 0
    n_active = 0
    saw_teq = False
    cells: Dict[int, TimeSeries] = {}
    for e in probe.sorted_events():
        kind = e.kind
        if kind == READY:
            n_ready += 1
            ready.append(e.t, n_ready)
        elif kind == DISPATCHED:
            n_ready -= 1
            n_active += e.width
            ready.append(e.t, n_ready)
            active.append(e.t, n_active)
        elif kind == INSERTED:
            n_window += 1
            window.append(e.t, n_window)
        elif kind == FINISHED:
            n_window -= 1
            n_active -= e.width
            window.append(e.t, n_window)
            active.append(e.t, n_active)
        elif kind in (TEQ_INSERT, TEQ_POP):
            saw_teq = True
            teq.append(e.t, e.value)
        elif kind == CELL_ADVANCE:
            cell = cells.get(e.worker)
            if cell is None:
                cell = cells[e.worker] = TimeSeries(f"cell{e.worker}_depth")
            cell.append(e.t, e.value)

    out = {"ready_depth": ready, "window_occupancy": window, "active_workers": active}
    if saw_teq:
        out["teq_depth"] = teq
    for cell_id in sorted(cells):
        series = cells[cell_id]
        out[series.name] = series
    return TimeSeriesSet(out)
