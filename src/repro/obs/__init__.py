"""Scheduler introspection layer (probe bus + derived products).

The package splits observation from interpretation:

* :mod:`~repro.obs.probe` — the :class:`Probe` event bus the runtimes call
  into (hook sites in the engine, the TEQ, and the threaded runtime), plus
  the :class:`NullProbe` / :class:`RecordingProbe` implementations;
* :mod:`~repro.obs.series` — virtual-time counter series (ready-queue
  depth, TEQ depth, window occupancy, active workers) replayed from a
  recorded stream;
* :mod:`~repro.obs.attribution` — per-task wait attribution: each task's
  insert-to-start latency split into dependence wait, worker wait, and
  window-throttle wait, aggregated into a "where did the makespan go"
  report;
* :mod:`~repro.obs.perfetto` — Chrome ``trace_event`` JSON export for
  https://ui.perfetto.dev, with per-worker task lanes, scheduler-internal
  spans, and counter tracks;
* :mod:`~repro.obs.timeline` — one-call artifact export bundling all of the
  above (what ``repro timeline`` and the sweep/stress ``--probe-dir`` flags
  write);
* :mod:`~repro.obs.telemetry` — the *serving* stack's counterpart: a
  Prometheus-text metrics registry (with its own strict exposition
  re-parser), request-trace contexts and spans propagated
  client → router → shard, and the structured JSON access logger.

Probes observe and never perturb: with no probe attached every hook site
costs a single ``is not None`` check, and traces produced with a recording
probe are byte-identical to traces produced without one.
"""

# ``probe`` must come first: the engine imports ``repro.obs.probe``, which
# triggers this package __init__ — anything imported above it that reached
# back into the schedulers would cycle.
from .probe import (  # noqa: F401
    PROBE_STREAM_SCHEMA,
    NullProbe,
    Probe,
    ProbeEvent,
    RecordingProbe,
    active_probe,
)

from .attribution import (  # noqa: F401
    ATTRIBUTION_SCHEMA,
    AttributionReport,
    TaskWait,
    attribute_waits,
    stall_episodes,
)
from .perfetto import (  # noqa: F401
    load_trace_event,
    loads_trace_event,
    service_span_events,
    service_trace_event_document,
    trace_event_document,
    write_trace_event,
)
from .telemetry import (  # noqa: F401
    METRICS_CONTENT_TYPE,
    PARENT_HEADER,
    TRACE_HEADER,
    Exposition,
    JsonLogger,
    MetricsError,
    MetricsRegistry,
    ServiceTelemetry,
    Span,
    TraceContext,
    histogram_quantile,
    merge_expositions,
    new_span_id,
    new_trace_id,
    parse_exposition,
)
from .series import (  # noqa: F401
    SERIES_SCHEMA,
    TimeSeries,
    TimeSeriesSet,
    build_series,
)
from .timeline import TimelineArtifacts, export_timeline  # noqa: F401

__all__ = [
    "PROBE_STREAM_SCHEMA",
    "Probe",
    "ProbeEvent",
    "NullProbe",
    "RecordingProbe",
    "active_probe",
    "SERIES_SCHEMA",
    "TimeSeries",
    "TimeSeriesSet",
    "build_series",
    "ATTRIBUTION_SCHEMA",
    "TaskWait",
    "AttributionReport",
    "attribute_waits",
    "stall_episodes",
    "trace_event_document",
    "service_span_events",
    "service_trace_event_document",
    "write_trace_event",
    "loads_trace_event",
    "load_trace_event",
    "TimelineArtifacts",
    "export_timeline",
    "METRICS_CONTENT_TYPE",
    "TRACE_HEADER",
    "PARENT_HEADER",
    "MetricsError",
    "MetricsRegistry",
    "Exposition",
    "ServiceTelemetry",
    "Span",
    "TraceContext",
    "JsonLogger",
    "histogram_quantile",
    "merge_expositions",
    "new_span_id",
    "new_trace_id",
    "parse_exposition",
]
