"""Chrome/Perfetto ``trace_event`` export of a run plus its probe stream.

Produces the JSON object format of the Trace Event specification — the
format ``chrome://tracing`` and https://ui.perfetto.dev open directly — so a
simulated run can be inspected next to our SVG Gantt with full zoom, search,
and counter tracks:

* **per-worker task lanes** (process "workers", one thread per core): one
  complete ``"X"`` event per executed task, taken from the :class:`Trace`
  itself (start/end/kernel/label/width are authoritative there);
* **scheduler-internal spans** (process "scheduler"): window-stall episodes
  as spans on a dedicated lane, dispatch sweeps and watchdog stall episodes
  as instant events;
* **counter tracks**: ready-queue depth, window occupancy, active workers,
  and — for threaded runs — TEQ depth, emitted as ``"C"`` events from the
  derived time series;
* **per-cell lanes** (process "cells", multicell runs only): one thread per
  engine cell, carrying an instant event at each clock advance — regular
  advances (the cell handled an event) and null-message horizon updates
  (depth 0, the cell was idle) are distinguished in ``args``.

Timestamps are virtual microseconds (the spec's ``ts`` unit); the virtual
origin is preserved, not rebased.  :func:`load_trace_event` is the
exporter's own loader: it re-parses and structurally validates a document,
and the CI smoke job round-trips every emitted file through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..trace.events import Trace
from .probe import CELL_ADVANCE, STALL_EPISODE, SWEEP, RecordingProbe
from .attribution import stall_episodes
from .series import TimeSeriesSet, build_series

__all__ = [
    "trace_event_document",
    "service_span_events",
    "service_trace_event_document",
    "write_trace_event",
    "load_trace_event",
    "loads_trace_event",
]

#: pid of the worker-lanes process, the scheduler-internals process, the
#: partitioned-engine cells process (present only for multicell streams),
#: and the service-request process (traced fleet requests).  The pid spaces
#: are disjoint so service spans and a simulation timeline can merge into
#: one document without lane collisions.
_PID_WORKERS = 1
_PID_SCHED = 2
_PID_CELLS = 3
_PID_SERVICE = 4

#: tids inside the scheduler process.
_TID_WINDOW = 0
_TID_SWEEP = 1
_TID_WATCHDOG = 2

_US = 1e6  # virtual seconds -> trace_event microseconds


def _meta(pid: int, tid: Optional[int], key: str, name: str) -> Dict[str, Any]:
    ev: Dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": key,
        "args": {"name": name},
    }
    if tid is not None:
        ev["tid"] = tid
    return ev


def trace_event_document(
    trace: Trace,
    probe: Optional[RecordingProbe] = None,
    *,
    series: Optional[TimeSeriesSet] = None,
) -> Dict[str, Any]:
    """Build the ``trace_event`` JSON document for one run.

    Without a probe the document carries the task lanes only; with one it
    gains the scheduler spans and counter tracks.  ``series`` may be passed
    to reuse an already-built :class:`TimeSeriesSet` (the timeline CLI
    builds it once for several artifacts); otherwise it is derived here.
    """
    events: List[Dict[str, Any]] = []

    events.append(_meta(_PID_WORKERS, None, "process_name", "workers"))
    for w in range(trace.n_workers):
        events.append(_meta(_PID_WORKERS, w, "thread_name", f"core {w}"))

    for e in sorted(trace.events):
        args: Dict[str, Any] = {"task_id": e.task_id}
        if e.label:
            args["label"] = e.label
        if e.width > 1:
            args["width"] = e.width
        events.append(
            {
                "name": e.kernel,
                "cat": "task",
                "ph": "X",
                "ts": e.start * _US,
                "dur": e.duration * _US,
                "pid": _PID_WORKERS,
                "tid": e.worker,
                "args": args,
            }
        )

    if probe is not None:
        events.append(_meta(_PID_SCHED, None, "process_name", "scheduler"))
        events.append(_meta(_PID_SCHED, _TID_WINDOW, "thread_name", "window throttle"))
        events.append(_meta(_PID_SCHED, _TID_SWEEP, "thread_name", "dispatch sweeps"))
        events.append(_meta(_PID_SCHED, _TID_WATCHDOG, "thread_name", "watchdog"))

        end_of_run = trace.start_time + trace.makespan
        for begin, end in stall_episodes(probe, end_of_run=end_of_run):
            events.append(
                {
                    "name": "window stall",
                    "cat": "scheduler",
                    "ph": "X",
                    "ts": begin * _US,
                    "dur": max(0.0, end - begin) * _US,
                    "pid": _PID_SCHED,
                    "tid": _TID_WINDOW,
                    "args": {},
                }
            )
        for e in probe.sorted_events():
            if e.kind == SWEEP and e.value > 0:
                events.append(
                    {
                        "name": "dispatch",
                        "cat": "scheduler",
                        "ph": "i",
                        "s": "t",
                        "ts": e.t * _US,
                        "pid": _PID_SCHED,
                        "tid": _TID_SWEEP,
                        "args": {"placed": int(e.value), "ready_left": e.worker},
                    }
                )
            elif e.kind == STALL_EPISODE:
                events.append(
                    {
                        "name": "stall episode",
                        "cat": "scheduler",
                        "ph": "i",
                        "s": "p",
                        "ts": e.t * _US,
                        "pid": _PID_SCHED,
                        "tid": _TID_WATCHDOG,
                        "args": {"recover_attempts": int(e.value)},
                    }
                )

        cell_advances = [e for e in probe.sorted_events() if e.kind == CELL_ADVANCE]
        if cell_advances:
            events.append(_meta(_PID_CELLS, None, "process_name", "cells"))
            for cell_id in sorted({e.worker for e in cell_advances}):
                events.append(_meta(_PID_CELLS, cell_id, "thread_name", f"cell {cell_id}"))
            for e in cell_advances:
                events.append(
                    {
                        "name": "advance" if e.value > 0 else "null update",
                        "cat": "cell",
                        "ph": "i",
                        "s": "t",
                        "ts": e.t * _US,
                        "pid": _PID_CELLS,
                        "tid": e.worker,
                        "args": {"queue_depth": int(e.value)},
                    }
                )

        if series is None:
            series = build_series(probe)
        for name in series.names():
            s = series[name]
            for t, v in zip(s.times, s.values):
                events.append(
                    {
                        "name": name,
                        "cat": "counter",
                        "ph": "C",
                        "ts": t * _US,
                        "pid": _PID_SCHED,
                        "args": {name: v},
                    }
                )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.perfetto/v1",
            "meta": {k: str(v) for k, v in sorted(trace.meta.items())},
            "n_workers": trace.n_workers,
            "n_tasks": len(trace),
        },
    }


def service_span_events(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Render service span documents as ``trace_event`` complete events.

    ``spans`` are :meth:`repro.obs.telemetry.Span.to_dict` documents — the
    ``"spans"`` list a traced service response carries.  Each component
    (``router``, ``shard-0``, …) becomes one thread lane in a dedicated
    "service" process; timestamps are rebased so the earliest span starts at
    0, putting a fleet request on the same visual origin as the virtual-time
    simulation lanes it may share a document with.
    """
    if not spans:
        return []
    docs = [s.to_dict() if hasattr(s, "to_dict") else s for s in spans]
    components = sorted({str(s.get("component") or "service") for s in docs})
    tids = {c: i for i, c in enumerate(components)}
    origin = min(float(s["start_s"]) for s in docs)
    events = [_meta(_PID_SERVICE, None, "process_name", "service")]
    for c in components:
        events.append(_meta(_PID_SERVICE, tids[c], "thread_name", c))
    for s in docs:
        attrs = s.get("attrs")
        args: Dict[str, Any] = dict(attrs) if isinstance(attrs, dict) else {}
        for key in ("trace_id", "span_id", "parent_id"):
            if s.get(key):
                args[key] = s[key]
        events.append(
            {
                "name": str(s["name"]),
                "cat": "service",
                "ph": "X",
                "ts": max(0.0, float(s["start_s"]) - origin) * _US,
                "dur": max(0.0, float(s["duration_s"])) * _US,
                "pid": _PID_SERVICE,
                "tid": tids[str(s.get("component") or "service")],
                "args": args,
            }
        )
    return events


def service_trace_event_document(
    spans: List[Dict[str, Any]], *, base: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """A ``trace_event`` document for traced service request spans.

    ``base`` may be an existing trace_event document (typically a simulation
    timeline from :func:`trace_event_document`) whose events and metadata
    are carried over — the mixed document renders the fleet request *and*
    the run it triggered in one Perfetto UI.  Output passes
    :func:`loads_trace_event`.
    """
    events: List[Dict[str, Any]] = []
    other: Dict[str, Any] = {"exporter": "repro.obs.perfetto/v1"}
    if base is not None:
        if not isinstance(base, dict) or not isinstance(base.get("traceEvents"), list):
            raise ValueError("base is not a trace_event document")
        events.extend(base["traceEvents"])
        if isinstance(base.get("otherData"), dict):
            other.update(base["otherData"])
    events.extend(service_span_events(spans))
    docs = [s.to_dict() if hasattr(s, "to_dict") else s for s in spans]
    other["service_spans"] = len(docs)
    trace_ids = sorted({s["trace_id"] for s in docs if s.get("trace_id")})
    if trace_ids:
        other["trace_ids"] = trace_ids
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def write_trace_event(
    path: Union[str, Path],
    trace: Trace,
    probe: Optional[RecordingProbe] = None,
    *,
    series: Optional[TimeSeriesSet] = None,
) -> Path:
    """Write :func:`trace_event_document` output as JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = trace_event_document(trace, probe, series=series)
    path.write_text(json.dumps(doc, sort_keys=True) + "\n")
    return path


_PHASES_WITH_TS = ("X", "i", "C")


def loads_trace_event(text: str) -> Dict[str, Any]:
    """Parse and structurally validate a ``trace_event`` JSON string.

    Checks the invariants the exporter guarantees (and Perfetto relies on):
    a ``traceEvents`` list of dict events, every event carrying a known
    ``ph`` plus ``pid``/``name``, numeric non-negative ``ts`` on timed
    phases, numeric non-negative ``dur`` on complete events, and metadata
    events carrying an ``args.name``.  Returns the parsed document; raises
    ``ValueError`` naming the first offending event.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("not a trace_event document: missing traceEvents list")
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: event is not an object")
        ph = ev.get("ph")
        if ph not in ("M", "X", "i", "C"):
            raise ValueError(f"{where}: unsupported phase {ph!r}")
        if not isinstance(ev.get("pid"), int):
            raise ValueError(f"{where}: missing integer pid")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{where}: missing event name")
        if ph in _PHASES_WITH_TS:
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: bad dur {dur!r}")
            if not isinstance(ev.get("tid"), int):
                raise ValueError(f"{where}: complete event without integer tid")
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise ValueError(f"{where}: metadata event without args.name")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"{where}: counter event without samples")
    return doc


def load_trace_event(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a ``trace_event`` JSON file (see :func:`loads_trace_event`)."""
    return loads_trace_event(Path(path).read_text())
