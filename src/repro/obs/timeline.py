"""One-call timeline artifact export.

:func:`export_timeline` turns one observed run — its :class:`Trace`, its
:class:`RecordingProbe` stream, and optionally its :class:`RunMetrics` —
into the full artifact set the ``repro timeline`` CLI and the sweep/stress
``--probe-dir`` flags publish:

========================================  =====================================
``<prefix>.perfetto.json``                Chrome ``trace_event`` document for
                                          https://ui.perfetto.dev
``<prefix>.series.json``                  virtual-time counter series
``<prefix>.series.csv``                   same series, long-format CSV
``<prefix>.attribution.json``             per-task wait attribution
``<prefix>.samples.json``                 per-kernel duration samples
                                          (``repro.kernel_samples/v1``, the
                                          ``repro calibrate`` input)
``<prefix>.metrics.json``                 RunMetrics counters (when given)
========================================  =====================================

Everything here is derived from the recorded stream after the run — this
module must stay import-light (no scheduler/runtime imports) so attaching
observability never drags execution machinery into readers of the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .attribution import AttributionReport, attribute_waits
from .perfetto import write_trace_event
from .probe import RecordingProbe
from .samples import write_kernel_samples
from .series import TimeSeriesSet, build_series

__all__ = ["TimelineArtifacts", "export_timeline"]


@dataclass(frozen=True)
class TimelineArtifacts:
    """Paths written by :func:`export_timeline`, plus the derived products."""

    perfetto: Path
    series_json: Path
    series_csv: Path
    attribution_json: Path
    samples_json: Path
    metrics_json: Optional[Path]
    series: TimeSeriesSet
    report: AttributionReport

    def paths(self) -> tuple:
        """All written paths, in a stable order (metrics last, if any)."""
        out = [
            self.perfetto,
            self.series_json,
            self.series_csv,
            self.attribution_json,
            self.samples_json,
        ]
        if self.metrics_json is not None:
            out.append(self.metrics_json)
        return tuple(out)


def export_timeline(
    out_dir: Union[str, Path],
    trace,
    probe: RecordingProbe,
    *,
    metrics=None,
    prefix: str = "timeline",
) -> TimelineArtifacts:
    """Write the full timeline artifact set for one observed run.

    ``trace`` is the run's :class:`~repro.trace.events.Trace` (worker lanes
    and kernel names come from it); ``probe`` the :class:`RecordingProbe`
    that rode along; ``metrics`` the optional
    :class:`~repro.core.metrics.RunMetrics` to publish next to them.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    series = build_series(probe)
    report = attribute_waits(probe, trace)

    perfetto = out_dir / f"{prefix}.perfetto.json"
    write_trace_event(perfetto, trace, probe, series=series)
    series_json = series.write_json(out_dir / f"{prefix}.series.json")
    series_csv = series.write_csv(out_dir / f"{prefix}.series.csv")
    attribution_json = report.write_json(out_dir / f"{prefix}.attribution.json")
    meta = dict(getattr(metrics, "extra", None) or {})
    samples_json = write_kernel_samples(
        out_dir / f"{prefix}.samples.json", trace, meta=meta
    )
    metrics_json = None
    if metrics is not None:
        metrics_json = metrics.write_json(out_dir / f"{prefix}.metrics.json")

    return TimelineArtifacts(
        perfetto=perfetto,
        series_json=series_json,
        series_csv=series_csv,
        attribution_json=attribution_json,
        samples_json=samples_json,
        metrics_json=metrics_json,
        series=series,
        report=report,
    )
