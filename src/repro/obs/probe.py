"""The probe bus: low-overhead instrumentation hooks for the simulation core.

A *probe* observes scheduler-internal transitions that neither the trace nor
the :class:`~repro.core.metrics.RunMetrics` counters preserve: when each
task moved through its lifecycle (inserted → ready → dispatched → running →
finished), when the insertion window throttled, what every dispatch sweep
achieved, and — on the threaded runtime — the Task Execution Queue's
insert/pop/bounce traffic and the watchdog's stall episodes.  The recorded
stream is the raw material for every derived product in this package:
virtual-time series (:mod:`repro.obs.series`), per-task wait attribution
(:mod:`repro.obs.attribution`), and the Perfetto export
(:mod:`repro.obs.perfetto`).

Design constraints, in priority order:

1. **Probes observe, never perturb.**  No hook may change scheduling
   decisions, RNG draw order, or trace content; golden trace digests must
   stay byte-identical with a probe attached.
2. **The default path is near-free.**  Runtimes store ``probe`` as a plain
   attribute that is ``None`` when no *enabled* probe was supplied, so every
   hook site costs one attribute load plus an ``is not None`` test — well
   inside the CI bench gate.  :class:`NullProbe` exists for callers that
   need a probe-shaped object (subclassing, dependency injection); passing
   it is equivalent to passing ``None``.
3. **Deterministic for fixed seeds on the engine backend.**  The engine
   invokes hooks from its single event loop in event order, so a
   :class:`RecordingProbe` stream (and its digest) is a pure function of
   ``(program, scheduler, backend, seed)``.  Threaded-runtime streams are
   timestamped in *virtual* time but appended in real-thread order, so only
   their per-task content — not their interleaving — is reproducible.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any, Dict, List, NamedTuple, Optional, Protocol, Tuple, runtime_checkable

__all__ = [
    "ProbeEvent",
    "Probe",
    "NullProbe",
    "RecordingProbe",
    "PROBE_STREAM_SCHEMA",
    "active_probe",
]

#: Schema tag of the serialised probe stream document.
PROBE_STREAM_SCHEMA = "repro.probe_stream/v1"

# -- event kinds -----------------------------------------------------------
INSERTED = "inserted"
READY = "ready"
DISPATCHED = "dispatched"
FINISHED = "finished"
WINDOW_STALL_BEGIN = "window_stall_begin"
WINDOW_STALL_END = "window_stall_end"
SWEEP = "sweep"
TEQ_INSERT = "teq_insert"
TEQ_POP = "teq_pop"
TEQ_BOUNCE = "teq_bounce"
STALL_EPISODE = "stall_episode"
CELL_ADVANCE = "cell_advance"

EVENT_KINDS = (
    INSERTED,
    READY,
    DISPATCHED,
    FINISHED,
    WINDOW_STALL_BEGIN,
    WINDOW_STALL_END,
    SWEEP,
    TEQ_INSERT,
    TEQ_POP,
    TEQ_BOUNCE,
    STALL_EPISODE,
    CELL_ADVANCE,
)


class ProbeEvent(NamedTuple):
    """One recorded scheduler-internal transition.

    ``t`` is virtual time (seconds).  The meaning of ``value`` depends on
    ``kind``: dispatch start time for ``dispatched``, queue depth after the
    operation for ``teq_insert``/``teq_pop``, tasks placed for ``sweep``,
    outstanding dependences for ``inserted``, recovery count for
    ``stall_episode`` — and 0.0 where unused.
    """

    t: float
    kind: str
    task_id: int = -1
    worker: int = -1
    value: float = 0.0
    width: int = 1


@runtime_checkable
class Probe(Protocol):
    """Hook surface the runtimes call into.

    Implementations must be cheap and side-effect-free with respect to the
    simulation: hooks run inside the engine's event loop (and, on the
    threaded runtime, under runtime locks), so they must never block, raise,
    or call back into the scheduler.  ``enabled`` is the opt-out switch the
    runtimes consult once at attach time — a falsy value makes attachment a
    no-op, keeping every hot-path hook behind a single ``None`` check.
    """

    enabled: bool

    # -- task lifecycle (engine + threaded runtime) ---------------------
    def task_inserted(self, t: float, task_id: int, n_deps: int) -> None: ...

    def task_ready(self, t: float, task_id: int) -> None: ...

    def task_dispatched(
        self, t: float, task_id: int, worker: int, start: float, width: int
    ) -> None: ...

    def task_finished(self, t: float, task_id: int, worker: int, width: int) -> None: ...

    # -- scheduler internals --------------------------------------------
    def window_stall(self, t: float, begin: bool) -> None: ...

    def dispatch_sweep(self, t: float, placed: int, ready_left: int) -> None: ...

    def task_deps(self, task_id: int, preds: Tuple[int, ...]) -> None: ...

    # -- threaded runtime / TEQ -----------------------------------------
    def teq_insert(self, t: float, task_id: int, depth: int) -> None: ...

    def teq_pop(self, t: float, task_id: int, depth: int) -> None: ...

    def teq_bounce(self, t: float, task_id: int) -> None: ...

    def stall_episode(self, t: float, attempts: int) -> None: ...

    # -- partitioned engine ---------------------------------------------
    def cell_advance(self, t: float, cell_id: int, depth: int) -> None: ...


def active_probe(probe: Optional[Probe]) -> Optional[Probe]:
    """Normalise a caller-supplied probe to the runtimes' internal form.

    Returns ``probe`` when it is enabled, else ``None`` — so hook sites pay
    one ``is not None`` check and a disabled probe (or :class:`NullProbe`)
    costs exactly the uninstrumented path.
    """
    if probe is None or not getattr(probe, "enabled", True):
        return None
    return probe


class NullProbe:
    """A probe that records nothing and disables the hook sites entirely."""

    enabled = False

    def task_inserted(self, t: float, task_id: int, n_deps: int) -> None:
        pass

    def task_ready(self, t: float, task_id: int) -> None:
        pass

    def task_dispatched(
        self, t: float, task_id: int, worker: int, start: float, width: int
    ) -> None:
        pass

    def task_finished(self, t: float, task_id: int, worker: int, width: int) -> None:
        pass

    def window_stall(self, t: float, begin: bool) -> None:
        pass

    def dispatch_sweep(self, t: float, placed: int, ready_left: int) -> None:
        pass

    def task_deps(self, task_id: int, preds: Tuple[int, ...]) -> None:
        pass

    def teq_insert(self, t: float, task_id: int, depth: int) -> None:
        pass

    def teq_pop(self, t: float, task_id: int, depth: int) -> None:
        pass

    def teq_bounce(self, t: float, task_id: int) -> None:
        pass

    def stall_episode(self, t: float, attempts: int) -> None:
        pass

    def cell_advance(self, t: float, cell_id: int, depth: int) -> None:
        pass


class RecordingProbe(NullProbe):
    """Append-only probe recording every hook as a :class:`ProbeEvent`.

    Thread-safe: the threaded runtime fires hooks from many worker threads,
    so appends are serialised by a lock (recording is opt-in; the default
    ``probe=None`` path never pays for it).  Besides the event stream it
    keeps the per-task dependence sets the :class:`HazardTracker` reports,
    which the wait-attribution report uses to name what a task waited *on*.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: List[ProbeEvent] = []
        self.deps: Dict[int, Tuple[int, ...]] = {}

    # -- hook implementations -------------------------------------------
    def task_inserted(self, t: float, task_id: int, n_deps: int) -> None:
        with self._lock:
            self.events.append(ProbeEvent(t, INSERTED, task_id, value=float(n_deps)))

    def task_ready(self, t: float, task_id: int) -> None:
        with self._lock:
            self.events.append(ProbeEvent(t, READY, task_id))

    def task_dispatched(
        self, t: float, task_id: int, worker: int, start: float, width: int
    ) -> None:
        with self._lock:
            self.events.append(ProbeEvent(t, DISPATCHED, task_id, worker, start, width))

    def task_finished(self, t: float, task_id: int, worker: int, width: int) -> None:
        with self._lock:
            self.events.append(ProbeEvent(t, FINISHED, task_id, worker, width=width))

    def window_stall(self, t: float, begin: bool) -> None:
        with self._lock:
            self.events.append(
                ProbeEvent(t, WINDOW_STALL_BEGIN if begin else WINDOW_STALL_END)
            )

    def dispatch_sweep(self, t: float, placed: int, ready_left: int) -> None:
        with self._lock:
            self.events.append(
                ProbeEvent(t, SWEEP, worker=ready_left, value=float(placed))
            )

    def task_deps(self, task_id: int, preds: Tuple[int, ...]) -> None:
        with self._lock:
            self.deps[task_id] = preds

    def teq_insert(self, t: float, task_id: int, depth: int) -> None:
        with self._lock:
            self.events.append(ProbeEvent(t, TEQ_INSERT, task_id, value=float(depth)))

    def teq_pop(self, t: float, task_id: int, depth: int) -> None:
        with self._lock:
            self.events.append(ProbeEvent(t, TEQ_POP, task_id, value=float(depth)))

    def teq_bounce(self, t: float, task_id: int) -> None:
        with self._lock:
            self.events.append(ProbeEvent(t, TEQ_BOUNCE, task_id))

    def stall_episode(self, t: float, attempts: int) -> None:
        with self._lock:
            self.events.append(ProbeEvent(t, STALL_EPISODE, value=float(attempts)))

    def cell_advance(self, t: float, cell_id: int, depth: int) -> None:
        # ``worker`` carries the cell id; ``value`` the cell's queue depth
        # after the advance (0.0 for a null-message horizon update).
        with self._lock:
            self.events.append(ProbeEvent(t, CELL_ADVANCE, worker=cell_id, value=float(depth)))

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self.events)

    def by_kind(self, kind: str) -> List[ProbeEvent]:
        with self._lock:
            return [e for e in self.events if e.kind == kind]

    def sorted_events(self) -> List[ProbeEvent]:
        """Events in virtual-time order (stable on recording order).

        The engine records in nondecreasing time already; the threaded
        runtime's real-thread interleaving can reorder neighbours, so the
        derived products always consume this view.
        """
        with self._lock:
            return sorted(self.events, key=lambda e: e.t)

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "schema": PROBE_STREAM_SCHEMA,
                "n_events": len(self.events),
                "events": [list(e) for e in self.events],
                "deps": {str(tid): list(p) for tid, p in self.deps.items()},
            }

    def digest(self) -> str:
        """SHA-256 of the canonical stream — the determinism fingerprint."""
        doc = self.to_dict()
        doc.pop("schema", None)
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
