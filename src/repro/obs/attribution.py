"""Per-task wait attribution: where did each task's latency — and in
aggregate, the makespan — go?

For every task the probe stream gives three lifecycle instants in virtual
time: *insert* (the master finished its hazard analysis), *ready* (the last
dependence was released), and *start* (a worker began executing, dispatch
overhead included).  The insert→start latency decomposes exactly into:

``dep_wait``
    ``ready − insert``: time spent waiting on unfinished predecessors.
``throttle_wait``
    The part of ``start − ready`` that elapsed while the runtime's task
    window was saturated (a window-stall episode was open): the runtime was
    at maximum in-flight capacity, so this wait is charged to the window
    throttle rather than to worker scarcity.
``worker_wait``
    The remainder of ``start − ready``: ready with window headroom but no
    eligible worker took the task (includes the per-dispatch scheduler
    overhead).

By construction ``dep_wait + throttle_wait + worker_wait`` equals each
task's insert→start latency to float precision.  The aggregate report adds
the execution time itself and frames the totals against the run's total
core-time (``n_workers × makespan``) — a critical-path-style "where did the
makespan go" accounting in the spirit of the paper's Figs. 6-7 lane
comparisons.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..trace.events import Trace
from .probe import (
    DISPATCHED,
    INSERTED,
    READY,
    WINDOW_STALL_BEGIN,
    WINDOW_STALL_END,
    RecordingProbe,
)

__all__ = [
    "TaskWait",
    "AttributionReport",
    "attribute_waits",
    "stall_episodes",
    "ATTRIBUTION_SCHEMA",
]

#: Schema tag of the exported attribution document.
ATTRIBUTION_SCHEMA = "repro.wait_attribution/v1"


@dataclass(frozen=True)
class TaskWait:
    """The latency decomposition of one task."""

    task_id: int
    kernel: str
    insert_t: float
    ready_t: float
    start_t: float
    end_t: float
    dep_wait: float
    throttle_wait: float
    worker_wait: float
    n_deps: int

    @property
    def latency(self) -> float:
        """Insert→start latency (the sum of the three wait components)."""
        return self.start_t - self.insert_t

    @property
    def run_time(self) -> float:
        return self.end_t - self.start_t


def stall_episodes(
    probe: RecordingProbe, *, end_of_run: Optional[float] = None
) -> List[Tuple[float, float]]:
    """Window-stall episodes as ``(begin, end)`` intervals in virtual time.

    An episode still open at the end of the stream is closed at
    ``end_of_run`` (default: the last event time), mirroring how the engine
    counts episodes rather than polls.
    """
    episodes: List[Tuple[float, float]] = []
    begin: Optional[float] = None
    last_t = 0.0
    for e in probe.sorted_events():
        last_t = e.t
        if e.kind == WINDOW_STALL_BEGIN and begin is None:
            begin = e.t
        elif e.kind == WINDOW_STALL_END and begin is not None:
            episodes.append((begin, e.t))
            begin = None
    if begin is not None:
        episodes.append((begin, end_of_run if end_of_run is not None else last_t))
    return episodes


def _overlap(
    lo: float, hi: float, episodes: List[Tuple[float, float]], starts: List[float]
) -> float:
    """Total overlap of ``[lo, hi)`` with the (sorted, disjoint) episodes."""
    if hi <= lo or not episodes:
        return 0.0
    total = 0.0
    # Episodes are disjoint and sorted; start from the first that can overlap.
    i = max(0, bisect_right(starts, lo) - 1)
    for b, e in episodes[i:]:
        if b >= hi:
            break
        total += max(0.0, min(hi, e) - max(lo, b))
    return total


@dataclass
class AttributionReport:
    """Aggregate wait attribution of one run."""

    tasks: List[TaskWait]
    n_workers: int
    makespan: float
    episodes: List[Tuple[float, float]] = field(default_factory=list)

    # -- aggregates -------------------------------------------------------
    def totals(self) -> Dict[str, float]:
        return {
            "dep_wait": sum(t.dep_wait for t in self.tasks),
            "throttle_wait": sum(t.throttle_wait for t in self.tasks),
            "worker_wait": sum(t.worker_wait for t in self.tasks),
            "run_time": sum(t.run_time for t in self.tasks),
        }

    def by_kernel(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for t in self.tasks:
            agg = out.setdefault(
                t.kernel,
                {
                    "count": 0,
                    "dep_wait": 0.0,
                    "throttle_wait": 0.0,
                    "worker_wait": 0.0,
                    "run_time": 0.0,
                },
            )
            agg["count"] += 1
            agg["dep_wait"] += t.dep_wait
            agg["throttle_wait"] += t.throttle_wait
            agg["worker_wait"] += t.worker_wait
            agg["run_time"] += t.run_time
        return out

    def slowest(self, n: int = 5) -> List[TaskWait]:
        """The ``n`` tasks with the largest insert→start latency."""
        return sorted(self.tasks, key=lambda t: (-t.latency, t.task_id))[:n]

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": ATTRIBUTION_SCHEMA,
            "n_tasks": len(self.tasks),
            "n_workers": self.n_workers,
            "makespan": self.makespan,
            "window_stall_episodes": [list(ep) for ep in self.episodes],
            "totals": self.totals(),
            "by_kernel": self.by_kernel(),
            "tasks": [
                {
                    "task_id": t.task_id,
                    "kernel": t.kernel,
                    "insert_t": t.insert_t,
                    "ready_t": t.ready_t,
                    "start_t": t.start_t,
                    "end_t": t.end_t,
                    "dep_wait": t.dep_wait,
                    "throttle_wait": t.throttle_wait,
                    "worker_wait": t.worker_wait,
                    "n_deps": t.n_deps,
                }
                for t in self.tasks
            ],
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n")
        return path

    def report(self) -> str:
        """Human rendering: the "where did the makespan go" table."""
        lines = []
        total_core = self.n_workers * self.makespan
        totals = self.totals()
        busy = totals["run_time"]
        lines.append(
            f"wait attribution: {len(self.tasks)} tasks, {self.n_workers} workers, "
            f"makespan {self.makespan:.6f}s"
        )
        if total_core > 0:
            idle = max(0.0, total_core - busy)
            lines.append(
                f"core-time {total_core:.6f}s = busy {busy:.6f}s "
                f"({100 * busy / total_core:.1f}%) + idle {idle:.6f}s"
            )
        lines.append(
            f"aggregate waits: dependence {totals['dep_wait']:.6f}s, "
            f"worker {totals['worker_wait']:.6f}s, "
            f"window throttle {totals['throttle_wait']:.6f}s "
            f"({len(self.episodes)} stall episodes)"
        )
        lines.append(f"{'kernel':<10} {'count':>6} {'dep':>12} {'worker':>12} "
                     f"{'throttle':>12} {'run':>12}")
        for kernel, agg in sorted(self.by_kernel().items()):
            lines.append(
                f"{kernel:<10} {agg['count']:>6} {agg['dep_wait']:>12.6f} "
                f"{agg['worker_wait']:>12.6f} {agg['throttle_wait']:>12.6f} "
                f"{agg['run_time']:>12.6f}"
            )
        slow = self.slowest(5)
        if slow:
            lines.append("slowest insert->start latencies:")
            for t in slow:
                lines.append(
                    f"  task {t.task_id} ({t.kernel}): {t.latency:.6f}s = "
                    f"dep {t.dep_wait:.6f} + worker {t.worker_wait:.6f} "
                    f"+ throttle {t.throttle_wait:.6f}"
                )
        return "\n".join(lines)


def attribute_waits(probe: RecordingProbe, trace: Trace) -> AttributionReport:
    """Build the wait-attribution report for one recorded run.

    ``trace`` supplies the kernel names, end times, and run geometry; the
    probe stream supplies the insert/ready/start instants and the
    window-stall episodes.  Tasks missing any lifecycle instant (possible
    only on aborted threaded runs) are skipped.
    """
    insert_t: Dict[int, float] = {}
    ready_t: Dict[int, float] = {}
    start_t: Dict[int, float] = {}
    n_deps: Dict[int, int] = {}
    for e in probe.events:
        if e.kind == INSERTED:
            insert_t[e.task_id] = e.t
            n_deps[e.task_id] = int(e.value)
        elif e.kind == READY:
            ready_t[e.task_id] = e.t
        elif e.kind == DISPATCHED:
            start_t[e.task_id] = e.value

    episodes = stall_episodes(probe, end_of_run=trace.makespan + trace.start_time)
    starts = [b for b, _ in episodes]

    tasks: List[TaskWait] = []
    for ev in sorted(trace.events, key=lambda e: e.task_id):
        tid = ev.task_id
        if tid not in insert_t or tid not in ready_t or tid not in start_t:
            continue
        t_ins, t_rdy, t_sta = insert_t[tid], ready_t[tid], start_t[tid]
        dep = t_rdy - t_ins
        post_ready = t_sta - t_rdy
        throttle = min(_overlap(t_rdy, t_sta, episodes, starts), post_ready)
        tasks.append(
            TaskWait(
                task_id=tid,
                kernel=ev.kernel,
                insert_t=t_ins,
                ready_t=t_rdy,
                start_t=t_sta,
                end_t=ev.end,
                dep_wait=dep,
                throttle_wait=throttle,
                worker_wait=post_ready - throttle,
                n_deps=n_deps.get(tid, 0),
            )
        )
    return AttributionReport(
        tasks=tasks,
        n_workers=trace.n_workers,
        makespan=trace.makespan,
        episodes=episodes,
    )
