"""Trace verification: is a trace a legal execution of a program?

:func:`verify_trace` combines the three checks every experiment in this
repository relies on, as one public API:

1. **completeness** — every task of the program appears exactly once;
2. **physical consistency** — no two events overlap on any worker
   (including the extra lanes of multi-threaded tasks);
3. **dependence respect** — for every hazard edge of the program's DAG,
   the successor starts no earlier than the predecessor ends.

Raises :class:`TraceVerificationError` with a precise message on the first
violation; returns a small summary on success.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.task import Program
from .events import Trace

__all__ = ["TraceVerificationError", "VerificationSummary", "verify_trace"]


class TraceVerificationError(AssertionError):
    """A trace is not a legal execution of its program."""


@dataclass(frozen=True)
class VerificationSummary:
    """Returned by a successful :func:`verify_trace`."""

    n_tasks: int
    n_dependences: int
    makespan: float


def verify_trace(
    program: Program,
    trace: Trace,
    *,
    tolerance: float = 1e-12,
) -> VerificationSummary:
    """Check that ``trace`` is a legal execution of ``program``."""
    # 1. completeness ------------------------------------------------------
    seen = sorted(e.task_id for e in trace.events)
    expected = list(range(len(program)))
    if seen != expected:
        missing = sorted(set(expected) - set(seen))
        extra = sorted(set(seen) - set(expected))
        dupes = sorted({t for t in seen if seen.count(t) > 1}) if len(seen) != len(set(seen)) else []
        raise TraceVerificationError(
            f"task set mismatch: missing={missing[:5]} extra={extra[:5]} "
            f"duplicated={dupes[:5]}"
        )

    # widths must match the specs
    for e in trace.events:
        if e.width != program[e.task_id].width:
            raise TraceVerificationError(
                f"task {e.task_id} recorded with width {e.width}, "
                f"spec says {program[e.task_id].width}"
            )

    # 2. physical consistency ---------------------------------------------
    try:
        trace.validate()
    except ValueError as exc:
        raise TraceVerificationError(str(exc)) from exc

    # 3. dependence respect -------------------------------------------------
    from ..schedulers.taskdep import HazardTracker

    starts: Dict[int, float] = {e.task_id: e.start for e in trace.events}
    ends: Dict[int, float] = {e.task_id: e.end for e in trace.events}
    tracker = HazardTracker()
    n_deps = 0
    for task in program:
        tracker.add_task(task)
        for pred in tracker.predecessors(task.task_id):
            n_deps += 1
            if starts[task.task_id] < ends[pred] - tolerance:
                raise TraceVerificationError(
                    f"dependence violated: task {task.task_id} starts at "
                    f"{starts[task.task_id]:.9f} before predecessor {pred} "
                    f"ends at {ends[pred]:.9f}"
                )
    return VerificationSummary(
        n_tasks=len(program), n_dependences=n_deps, makespan=trace.makespan
    )
