"""Execution traces: the primary output of both real and simulated runs.

A :class:`Trace` is an append-only collection of :class:`TraceEvent` records
— one per executed task, carrying the worker, the kernel class, and the
start/end times (wall-clock seconds for real runs, virtual seconds for
simulated ones; paper §V-A).  Traces support the queries every experiment
needs: makespan, per-worker rows, utilisation, per-kernel duration samples
(the calibration input), and achieved GFLOP/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["TraceEvent", "Trace", "ColumnTrace"]


@dataclass(frozen=True, order=True, slots=True)
class TraceEvent:
    """One executed task: ``[start, end)`` on ``worker``.

    Ordering is by ``(start, end, worker, task_id)`` so a sorted event list
    reads chronologically.  A multi-threaded task (``width > 1``) occupies
    workers ``worker .. worker + width - 1`` and is recorded once, on its
    primary (lowest-index) worker.
    """

    start: float
    end: float
    worker: int
    task_id: int
    kernel: str
    label: str = ""
    width: int = 1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event ends before it starts: {self}")
        if self.worker < 0:
            raise ValueError("worker index must be non-negative")
        if self.width < 1:
            raise ValueError("width must be at least 1")

    # Python 3.10 restores slot state with setattr, which a frozen dataclass
    # rejects; 3.11+ generates equivalent hooks itself.
    def __getstate__(self):
        return tuple(getattr(self, f) for f in self.__slots__)

    def __setstate__(self, state) -> None:
        for f, v in zip(self.__slots__, state):
            object.__setattr__(self, f, v)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def workers(self) -> range:
        """The workers this event occupies."""
        return range(self.worker, self.worker + self.width)


class Trace:
    """An execution trace: events plus run metadata.

    ``meta`` records provenance (scheduler, backend, problem, seed) so that
    saved traces are self-describing.
    """

    def __init__(self, n_workers: int, meta: Optional[Dict[str, object]] = None) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.meta: Dict[str, object] = dict(meta or {})
        self._events: List[TraceEvent] = []

    # -- construction ------------------------------------------------------
    def record(
        self,
        worker: int,
        task_id: int,
        kernel: str,
        start: float,
        end: float,
        label: str = "",
        width: int = 1,
    ) -> TraceEvent:
        """Append one event (``width`` workers starting at ``worker``)."""
        if not (0 <= worker and worker + width <= self.n_workers):
            raise ValueError(
                f"workers [{worker}, {worker + width}) out of range "
                f"[0, {self.n_workers})"
            )
        ev = TraceEvent(
            start=start, end=end, worker=worker, task_id=task_id, kernel=kernel,
            label=label, width=width,
        )
        self._events.append(ev)
        return ev

    def add(self, event: TraceEvent) -> None:
        if not (0 <= event.worker and event.worker + event.width <= self.n_workers):
            raise ValueError(f"workers of {event} out of range")
        self._events.append(event)

    # -- queries -----------------------------------------------------------
    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def start_time(self) -> float:
        return min((e.start for e in self._events), default=0.0)

    @property
    def makespan(self) -> float:
        """End of the last task minus start of the first."""
        if not self._events:
            return 0.0
        return max(e.end for e in self._events) - self.start_time

    def worker_events(self, worker: int) -> List[TraceEvent]:
        """Chronologically sorted events occupying one worker."""
        return sorted(e for e in self._events if worker in e.workers)

    def rows(self) -> List[List[TraceEvent]]:
        """All workers' rows, index = worker id (empty rows included).

        A multi-threaded event appears in every row it occupies.
        """
        out: List[List[TraceEvent]] = [[] for _ in range(self.n_workers)]
        for e in self._events:
            for w in e.workers:
                out[w].append(e)
        for row in out:
            row.sort()
        return out

    def busy_time(self, worker: Optional[int] = None) -> float:
        """Total core-seconds of task time on one worker (or all workers)."""
        if worker is None:
            return sum(e.duration * e.width for e in self._events)
        return sum(e.duration for e in self._events if worker in e.workers)

    def utilization(self) -> float:
        """Busy fraction of ``n_workers x makespan`` (0 for an empty trace)."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time() / (self.n_workers * span)

    def kernel_durations(self) -> Dict[str, List[float]]:
        """Duration samples grouped by kernel — the calibration harvest."""
        out: Dict[str, List[float]] = {}
        for e in sorted(self._events):
            out.setdefault(e.kernel, []).append(e.duration)
        return out

    def kernel_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.kernel] = out.get(e.kernel, 0) + 1
        return out

    def tasks_per_worker(self) -> List[int]:
        counts = [0] * self.n_workers
        for e in self._events:
            for w in e.workers:
                counts[w] += 1
        return counts

    def gflops(self, total_flops: float) -> float:
        """Achieved GFLOP/s given the algorithmic flop count."""
        span = self.makespan
        if span <= 0:
            raise ValueError("empty trace has no rate")
        return total_flops / span / 1e9

    def completion_order(self) -> List[int]:
        """Task ids ordered by completion time (ties by id)."""
        return [e.task_id for e in sorted(self._events, key=lambda e: (e.end, e.task_id))]

    def validate(self) -> None:
        """Check physical consistency; raises ``ValueError`` on violation.

        * no two events on one worker overlap in time;
        * no task id appears twice.
        """
        seen: Dict[int, TraceEvent] = {}
        for e in self._events:
            if e.task_id in seen:
                raise ValueError(f"task {e.task_id} recorded twice: {seen[e.task_id]} / {e}")
            seen[e.task_id] = e
        for w, row in enumerate(self.rows()):
            for a, b in zip(row, row[1:]):
                # Strict overlap check with a tolerance for float rounding.
                if b.start < a.end - 1e-12:
                    raise ValueError(
                        f"worker {w}: overlapping events {a} and {b}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace({len(self._events)} events, {self.n_workers} workers, "
            f"makespan={self.makespan:.6f}s)"
        )


class ColumnTrace(Trace):
    """A :class:`Trace` backed by parallel columns, materialised lazily.

    The array engine records executions as four parallel scalars per event
    (worker, task id, start, end) plus per-task lookup tables — the SoA
    shape of its run state.  Building a :class:`TraceEvent` object per task
    costs more than the engine's entire per-event budget, so this subclass
    defers it: the columns are converted to event objects on the first read
    of any event-level query (serialisation, makespan, rows, ...).  A run
    whose trace is reduced to metrics and discarded — the common case in
    parameter sweeps — never pays for materialisation at all.

    Once materialised (or appended to via :meth:`Trace.record` /
    :meth:`Trace.add`, which force materialisation first), the instance
    behaves exactly like an eagerly-built :class:`Trace`; the event list is
    identical object-for-object to what the object engine would have
    recorded, so serialised traces stay byte-identical.
    """

    _cols = None

    def __init__(
        self,
        n_workers: int,
        meta: Optional[Dict[str, object]] = None,
        *,
        col_workers: Sequence[int] = (),
        col_task_ids: Sequence[int] = (),
        col_starts: Sequence[float] = (),
        col_ends: Sequence[float] = (),
        kernel_names: Sequence[str] = (),
        kernel_ids: Sequence[int] = (),
        labels: Sequence[str] = (),
        widths: Sequence[int] = (),
    ) -> None:
        super().__init__(n_workers=n_workers, meta=meta)
        self._cols = (
            col_workers,
            col_task_ids,
            col_starts,
            col_ends,
            kernel_names,
            kernel_ids,
            labels,
            widths,
        )

    @property
    def _events(self) -> List[TraceEvent]:
        cols = self._cols
        if cols is not None:
            self._cols = None
            workers, task_ids, starts, ends, names, kids, labels, widths = cols
            out = self._events_list
            append = out.append
            # int()/float() are no-ops for native scalars and normalise the
            # numpy scalars that array-backed columns yield, so serialised
            # traces never depend on the column storage type.
            for i in range(len(task_ids)):
                tid = int(task_ids[i])
                append(
                    TraceEvent(
                        start=float(starts[i]),
                        end=float(ends[i]),
                        worker=int(workers[i]),
                        task_id=tid,
                        kernel=names[kids[tid]],
                        label=labels[tid],
                        width=int(widths[tid]),
                    )
                )
        return self._events_list

    @_events.setter
    def _events(self, value: List[TraceEvent]) -> None:
        self._events_list = value

    # Reductions over raw columns: the common "run, reduce, discard" path
    # (benchmarks, sweeps) reads only these, so it never materialises.
    @property
    def start_time(self) -> float:
        cols = self._cols
        if cols is not None:
            starts = cols[2]
            return float(min(starts)) if len(starts) else 0.0
        return min((e.start for e in self._events), default=0.0)

    @property
    def makespan(self) -> float:
        cols = self._cols
        if cols is not None:
            ends = cols[3]
            if not len(ends):
                return 0.0
            return float(max(ends)) - float(min(cols[2]))
        if not self._events:
            return 0.0
        return max(e.end for e in self._events) - self.start_time

    def __len__(self) -> int:
        cols = self._cols
        if cols is not None:
            return len(cols[1])
        return len(self._events_list)
