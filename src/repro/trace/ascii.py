"""ASCII Gantt rendering: trace inspection without leaving the terminal.

One character column per time slice, one row per worker; each cell shows
the initial of the kernel running there (``.`` for idle).  A multi-threaded
task paints every lane it occupies.  The output of :func:`ascii_gantt` for
a small QR run makes the pipeline structure (panel / update overlap)
directly visible in test logs and CLI output.
"""

from __future__ import annotations

from typing import Dict, List

from .events import Trace

__all__ = ["ascii_gantt"]


def _initials(kernels) -> Dict[str, str]:
    """Distinct single-character labels per kernel (stable, readable)."""
    out: Dict[str, str] = {}
    used = set()
    for kernel in sorted(kernels):
        # Prefer a distinctive character: skip the common "D" prefix of
        # BLAS names, then fall back to later characters and digits.
        candidates = [c for c in kernel.lstrip("D") if c.isalnum()] + list("0123456789")
        for c in candidates:
            if c not in used:
                out[kernel] = c
                used.add(c)
                break
        else:  # pragma: no cover - >36 kernel classes
            out[kernel] = "?"
    return out


def ascii_gantt(trace: Trace, *, width: int = 100, legend: bool = True) -> str:
    """Render ``trace`` as an ASCII Gantt chart ``width`` columns wide."""
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    if len(trace) == 0:
        return "(empty trace)"
    t0 = trace.start_time
    span = trace.makespan
    initials = _initials(trace.kernel_counts())
    grid: List[List[str]] = [["."] * width for _ in range(trace.n_workers)]
    for e in sorted(trace.events):
        c0 = int((e.start - t0) / span * width) if span > 0 else 0
        c1 = int((e.end - t0) / span * width) if span > 0 else width
        c0 = min(max(c0, 0), width - 1)
        c1 = min(max(c1, c0 + 1), width)
        for w in e.workers:
            row = grid[w]
            for c in range(c0, c1):
                row[c] = initials[e.kernel]
    label_w = len(f"w{trace.n_workers - 1}")
    lines = [
        f"w{w:<{label_w - 1}} |" + "".join(grid[w]) + "|"
        for w in range(trace.n_workers)
    ]
    if legend:
        pairs = ", ".join(f"{v}={k}" for k, v in sorted(initials.items()))
        lines.append(f"legend: {pairs}  (.=idle, {span * 1e3:.3f} ms across)")
    return "\n".join(lines)
