"""Trace statistics reports: the numbers behind a Gantt chart.

:func:`trace_statistics` condenses a trace into the quantities a performance
engineer reads off the paper's Figs. 6-7 by eye: per-kernel time breakdown,
per-worker utilisation spread, critical-phase detection (ramp-up / steady /
tail by active-core thresholds), and scheduling-gap totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .compare import activity_profile
from .events import Trace

__all__ = ["KernelStats", "PhaseBreakdown", "TraceStatistics", "trace_statistics"]


@dataclass(frozen=True)
class KernelStats:
    """Aggregate timing of one kernel class within a trace."""

    kernel: str
    count: int
    total_time: float
    mean: float
    std: float
    min: float
    max: float
    share: float  # fraction of total busy time


@dataclass(frozen=True)
class PhaseBreakdown:
    """Ramp-up / steady-state / tail split of the makespan.

    Phases are defined by the active-core profile crossing half the peak
    concurrency: the time before the first crossing is ramp-up, after the
    last crossing is the tail.
    """

    ramp_up: float
    steady: float
    tail: float


@dataclass
class TraceStatistics:
    """Full statistics bundle for one trace."""

    n_tasks: int
    n_workers: int
    makespan: float
    utilization: float
    kernels: List[KernelStats] = field(default_factory=list)
    worker_busy_fraction: Tuple[float, float, float] = (0.0, 0.0, 0.0)  # min/mean/max
    phases: Optional[PhaseBreakdown] = None
    total_gap_time: float = 0.0  # idle time inside [start, end] summed over workers

    def report(self) -> str:
        lines = [
            f"{self.n_tasks} tasks on {self.n_workers} workers, "
            f"makespan {self.makespan * 1e3:.3f} ms, "
            f"utilisation {self.utilization * 100:.1f}%",
            f"worker busy fraction: min {self.worker_busy_fraction[0] * 100:.1f}% / "
            f"mean {self.worker_busy_fraction[1] * 100:.1f}% / "
            f"max {self.worker_busy_fraction[2] * 100:.1f}%",
        ]
        if self.phases is not None:
            p = self.phases
            lines.append(
                f"phases: ramp-up {p.ramp_up * 1e3:.2f} ms, "
                f"steady {p.steady * 1e3:.2f} ms, tail {p.tail * 1e3:.2f} ms"
            )
        lines.append(
            f"{'kernel':<14} {'count':>6} {'mean us':>10} {'std us':>9} "
            f"{'total ms':>9} {'share %':>8}"
        )
        for k in self.kernels:
            lines.append(
                f"{k.kernel:<14} {k.count:>6} {k.mean * 1e6:>10.2f} "
                f"{k.std * 1e6:>9.2f} {k.total_time * 1e3:>9.2f} {k.share * 100:>8.2f}"
            )
        return "\n".join(lines)


def trace_statistics(trace: Trace, *, n_bins: int = 400) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace``."""
    if len(trace) == 0:
        return TraceStatistics(
            n_tasks=0, n_workers=trace.n_workers, makespan=0.0, utilization=0.0
        )
    busy_total = trace.busy_time()
    kernels: List[KernelStats] = []
    for kernel, durations in sorted(trace.kernel_durations().items()):
        arr = np.asarray(durations)
        kernels.append(
            KernelStats(
                kernel=kernel,
                count=int(arr.size),
                total_time=float(arr.sum()),
                mean=float(arr.mean()),
                std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
                min=float(arr.min()),
                max=float(arr.max()),
                share=float(arr.sum()) / busy_total if busy_total > 0 else 0.0,
            )
        )
    kernels.sort(key=lambda k: -k.total_time)

    span = trace.makespan
    fractions = [
        trace.busy_time(w) / span if span > 0 else 0.0 for w in range(trace.n_workers)
    ]
    worker_stats = (min(fractions), float(np.mean(fractions)), max(fractions))

    profile = activity_profile(trace, n_bins)
    phases: Optional[PhaseBreakdown] = None
    if profile.size and profile.max() > 0:
        threshold = profile.max() / 2.0
        above = np.nonzero(profile >= threshold)[0]
        bin_w = span / n_bins
        first, last = int(above[0]), int(above[-1])
        phases = PhaseBreakdown(
            ramp_up=first * bin_w,
            steady=(last - first + 1) * bin_w,
            tail=(n_bins - last - 1) * bin_w,
        )

    gap = trace.n_workers * span - busy_total
    return TraceStatistics(
        n_tasks=len(trace),
        n_workers=trace.n_workers,
        makespan=span,
        utilization=trace.utilization(),
        kernels=kernels,
        worker_busy_fraction=worker_stats,
        phases=phases,
        total_gap_time=max(gap, 0.0),
    )
