"""Per-event concurrency analysis of traces.

The §VII improved kernel model conditions each kernel's duration on the
machine load it experienced.  :func:`event_loads` computes, for every event
in a trace, the *mean number of concurrently running tasks* (including
itself, weighted by core count for multi-threaded tasks) over the event's
lifetime — using an event-boundary sweep, O(n log n) in the number of
events.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .events import Trace

__all__ = ["event_loads", "loaded_kernel_samples"]


def event_loads(trace: Trace) -> Dict[int, float]:
    """Mean concurrent active-core count experienced by each task.

    Returns ``{task_id: mean_load}``; an event running alone has load equal
    to its own width.
    """
    events = sorted(trace.events)
    if not events:
        return {}
    # Boundary sweep: active core count is piecewise constant between the
    # sorted start/end boundaries.
    boundaries: List[Tuple[float, int]] = []
    for e in events:
        boundaries.append((e.start, e.width))
        boundaries.append((e.end, -e.width))
    boundaries.sort()
    times: List[float] = []
    counts: List[int] = []
    active = 0
    for t, delta in boundaries:
        if times and times[-1] == t:
            active += delta
            counts[-1] = active
        else:
            active += delta
            times.append(t)
            counts.append(active)
    # Prefix integral of the active count.
    integral = [0.0]
    for i in range(len(times) - 1):
        integral.append(integral[-1] + counts[i] * (times[i + 1] - times[i]))

    import bisect

    def integrate(a: float, b: float) -> float:
        ia = bisect.bisect_right(times, a) - 1
        ib = bisect.bisect_right(times, b) - 1
        if ia == ib:
            return counts[ia] * (b - a)
        total = counts[ia] * (times[ia + 1] - a)
        total += integral[ib] - integral[ia + 1]
        total += counts[ib] * (b - times[ib])
        return total

    loads: Dict[int, float] = {}
    for e in events:
        if e.duration <= 0:
            loads[e.task_id] = float(counts[bisect.bisect_right(times, e.start) - 1])
            continue
        loads[e.task_id] = integrate(e.start, e.end) / e.duration
    return loads


def loaded_kernel_samples(
    trace: Trace,
    *,
    drop_first_per_worker: bool = True,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-kernel ``(duration, load)`` pairs — the load-aware calibration
    harvest (§VII improved kernel model)."""
    skip = set()
    if drop_first_per_worker:
        for worker in range(trace.n_workers):
            events = trace.worker_events(worker)
            if events:
                skip.add(events[0].task_id)
    loads = event_loads(trace)
    out: Dict[str, List[Tuple[float, float]]] = {}
    for e in sorted(trace.events):
        if e.task_id in skip:
            continue
        out.setdefault(e.kernel, []).append((e.duration, loads[e.task_id]))
    return out
