"""SVG rendering of execution traces (paper §V-A, Figs. 6-7).

The paper's "rudimentary trace generation environment" converts traces to
Scalable Vector Graphics for visual comparison of real and simulated runs.
This module is its equivalent: one horizontal lane per core, one rectangle
per task, coloured by kernel class, with an optional shared time scale so a
real/simulated pair can be compared the way Figs. 6 and 7 are ("presented
with identical time scales along the x-axis").
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Optional, Sequence, Union

from ..dag.export import KERNEL_COLORS
from .events import Trace

__all__ = ["render_svg", "write_svg", "write_comparison_svg"]

_LANE_H = 14
_LANE_GAP = 2
_MARGIN_L = 60
_MARGIN_T = 28
_MARGIN_B = 30
_WIDTH = 1200
_AXIS_TICKS = 8


def _color(kernel: str) -> str:
    return KERNEL_COLORS.get(kernel, "#bbbbbb")


def _render_lanes(
    trace: Trace,
    *,
    t0: float,
    scale: float,
    y0: int,
    parts: list,
) -> int:
    """Append one trace's lanes to ``parts``; returns the y after the block."""
    for worker in range(trace.n_workers):
        y = y0 + worker * (_LANE_H + _LANE_GAP)
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + _LANE_H - 3}" text-anchor="end" '
            f'font-size="9" fill="#444">core {worker}</text>'
        )
    for e in sorted(trace.events):
        y = y0 + e.worker * (_LANE_H + _LANE_GAP)
        x = _MARGIN_L + (e.start - t0) * scale
        w = max(e.duration * scale, 0.4)
        # Multi-threaded tasks span the lanes of every core they occupy.
        h = e.width * _LANE_H + (e.width - 1) * _LANE_GAP
        title = html.escape(
            f"{e.kernel} task {e.task_id} [{e.start:.6f}, {e.end:.6f}] {e.label}"
        )
        parts.append(
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{h}" '
            f'fill="{_color(e.kernel)}" stroke="#333" stroke-width="0.3">'
            f"<title>{title}</title></rect>"
        )
    return y0 + trace.n_workers * (_LANE_H + _LANE_GAP)


def _render_axis(parts: list, *, t0: float, t1: float, scale: float, y: int) -> None:
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{y}" x2="{_MARGIN_L + (t1 - t0) * scale:.2f}" '
        f'y2="{y}" stroke="#333" stroke-width="1"/>'
    )
    for i in range(_AXIS_TICKS + 1):
        t = t0 + (t1 - t0) * i / _AXIS_TICKS
        x = _MARGIN_L + (t - t0) * scale
        parts.append(f'<line x1="{x:.2f}" y1="{y}" x2="{x:.2f}" y2="{y + 4}" stroke="#333"/>')
        parts.append(
            f'<text x="{x:.2f}" y="{y + 14}" text-anchor="middle" font-size="9" '
            f'fill="#333">{(t - t0):.4g}s</text>'
        )


def _render_legend(parts: list, kernels: Sequence[str], y: int) -> None:
    x = _MARGIN_L
    for kernel in kernels:
        parts.append(
            f'<rect x="{x}" y="{y}" width="10" height="10" fill="{_color(kernel)}" '
            f'stroke="#333" stroke-width="0.3"/>'
        )
        parts.append(
            f'<text x="{x + 14}" y="{y + 9}" font-size="9" fill="#333">{kernel}</text>'
        )
        x += 14 + 7 * len(kernel) + 18


def render_svg(
    trace: Trace,
    *,
    title: str = "",
    time_span: Optional[float] = None,
    width: int = _WIDTH,
) -> str:
    """Render one trace as an SVG document string.

    ``time_span`` fixes the x-axis extent (seconds); pass the *longer* of two
    makespans to put a real/simulated pair on identical time scales.
    """
    t0 = trace.start_time
    span = time_span if time_span is not None else trace.makespan
    span = max(span, 1e-12)
    scale = (width - _MARGIN_L - 20) / span
    kernels = sorted(trace.kernel_counts())
    height = (
        _MARGIN_T
        + trace.n_workers * (_LANE_H + _LANE_GAP)
        + _MARGIN_B
        + 16  # legend row
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="Helvetica, sans-serif">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_MARGIN_L}" y="16" font-size="12" fill="#111">{html.escape(title)}</text>'
        )
    y_end = _render_lanes(trace, t0=t0, scale=scale, y0=_MARGIN_T, parts=parts)
    _render_axis(parts, t0=t0, t1=t0 + span, scale=scale, y=y_end + 4)
    _render_legend(parts, kernels, y_end + 20)
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    trace: Trace,
    path: Union[str, Path],
    *,
    title: str = "",
    time_span: Optional[float] = None,
) -> Path:
    """Write :func:`render_svg` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_svg(trace, title=title, time_span=time_span))
    return path


def write_comparison_svg(
    real: Trace,
    simulated: Trace,
    path: Union[str, Path],
    *,
    titles: Sequence[str] = ("real execution", "simulated execution"),
) -> Path:
    """Write a Figs. 6-7 style stacked comparison on one shared time scale."""
    span = max(real.makespan, simulated.makespan)
    block_a = render_svg(real, title=titles[0], time_span=span)
    block_b = render_svg(simulated, title=titles[1], time_span=span)

    def _strip(svg: str) -> tuple:
        body = svg.split(">", 1)[1].rsplit("</svg>", 1)[0]
        height = int(svg.split('height="')[1].split('"')[0])
        return body, height

    body_a, h_a = _strip(block_a)
    body_b, h_b = _strip(block_b)
    total_h = h_a + h_b + 10
    doc = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{total_h}" '
        f'font-family="Helvetica, sans-serif">\n'
        f"<g>{body_a}</g>\n"
        f'<g transform="translate(0,{h_a + 10})">{body_b}</g>\n'
        f"</svg>"
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(doc)
    return path
