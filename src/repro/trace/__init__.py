"""Trace recording, rendering, persistence, and comparison."""

from .compare import (
    TraceComparison,
    activity_profile,
    activity_rmse,
    compare_traces,
    completion_order_similarity,
    kernel_time_drift,
    makespan_error,
)
from .ascii import ascii_gantt
from .events import Trace, TraceEvent
from .load import event_loads, loaded_kernel_samples
from .stats import TraceStatistics, trace_statistics
from .svg import render_svg, write_comparison_svg, write_svg
from .textio import dumps_trace, load_trace, loads_trace, save_trace
from .verify import TraceVerificationError, VerificationSummary, verify_trace

__all__ = [
    "TraceComparison",
    "activity_profile",
    "activity_rmse",
    "compare_traces",
    "completion_order_similarity",
    "kernel_time_drift",
    "makespan_error",
    "ascii_gantt",
    "Trace",
    "TraceEvent",
    "TraceStatistics",
    "trace_statistics",
    "event_loads",
    "loaded_kernel_samples",
    "render_svg",
    "write_comparison_svg",
    "write_svg",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "save_trace",
    "TraceVerificationError",
    "VerificationSummary",
    "verify_trace",
]
