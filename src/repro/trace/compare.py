"""Trace comparison metrics: quantifying Figs. 6-7 "nearly identical" claims.

The paper validates its simulator in two ways: the **execution time** must be
within a few percent of the real run, and the **trace must retain the
essential features** of the real trace.  This module turns both criteria into
numbers:

* :func:`makespan_error` — the signed relative makespan error;
* :func:`completion_order_similarity` — Kendall's tau between the two runs'
  task-completion orders (1.0 = identical out-of-order behaviour);
* :func:`activity_profile` / :func:`activity_rmse` — active-core-count
  curves over normalised time and their RMS difference (the visual
  "shape" of a Gantt chart);
* :func:`kernel_time_drift` — per-kernel mean-duration discrepancy, which
  localises model error to a kernel class;
* :func:`compare_traces` — all of the above in one report object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np
from scipy import stats

from .events import Trace

__all__ = [
    "makespan_error",
    "completion_order_similarity",
    "activity_profile",
    "activity_rmse",
    "kernel_time_drift",
    "canonicalize_workers",
    "TraceComparison",
    "compare_traces",
]


def canonicalize_workers(trace: Trace) -> Trace:
    """The same schedule with worker lanes relabelled deterministically.

    On the threaded runtime, *which* OS thread claims a given task is an
    arbitrary race outcome — the simulated semantics pin every task's
    virtual ``(start, end)`` but permute the worker column run to run.  For
    byte-level comparison of two threaded traces (e.g. the §V-E golden
    digests) the lanes must be named canonically: workers are renumbered in
    order of their first event under the chronological event order
    ``(start, end, task_id)``, preserving which events share a lane.

    Engine traces are already deterministic; canonicalising one is a no-op
    permutation at most.  Multi-threaded tasks (``width > 1``) occupy
    adjacent lanes and are not relabelled — the threaded runtime rejects
    them anyway.
    """
    if any(e.width > 1 for e in trace.events):
        raise ValueError("canonicalize_workers supports width-1 events only")
    mapping: Dict[int, int] = {}
    ordered = sorted(trace.events, key=lambda e: (e.start, e.end, e.task_id))
    for e in ordered:
        if e.worker not in mapping:
            mapping[e.worker] = len(mapping)
    out = Trace(trace.n_workers, meta=dict(trace.meta))
    for e in ordered:
        out.record(
            mapping[e.worker], e.task_id, e.kernel, e.start, e.end, e.label, e.width
        )
    return out


def makespan_error(real: Trace, simulated: Trace) -> float:
    """Signed relative error ``(sim - real) / real`` of the makespans."""
    real_span = real.makespan
    if real_span <= 0:
        raise ValueError("real trace has zero makespan")
    return (simulated.makespan - real_span) / real_span


def completion_order_similarity(real: Trace, simulated: Trace) -> float:
    """Kendall's tau between completion orders (over shared task ids).

    1.0 means the simulation reproduced the real run's out-of-order task
    completion sequence exactly; 0 means no correlation.  Returns 1.0 for
    fewer than two shared tasks.
    """
    rank_real = {tid: i for i, tid in enumerate(real.completion_order())}
    rank_sim = {tid: i for i, tid in enumerate(simulated.completion_order())}
    shared = sorted(set(rank_real) & set(rank_sim))
    if len(shared) < 2:
        return 1.0
    a = [rank_real[t] for t in shared]
    b = [rank_sim[t] for t in shared]
    tau = stats.kendalltau(a, b).statistic
    return float(tau) if np.isfinite(tau) else 0.0


def activity_profile(trace: Trace, n_bins: int = 200) -> np.ndarray:
    """Mean active-core count in each of ``n_bins`` equal time slices."""
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    span = trace.makespan
    profile = np.zeros(n_bins)
    if span <= 0:
        return profile
    t0 = trace.start_time
    width = span / n_bins
    for e in trace.events:
        # Distribute the event's busy time over the bins it spans.
        lo = (e.start - t0) / width
        hi = (e.end - t0) / width
        first, last = int(lo), min(int(hi), n_bins - 1)
        if first == last:
            profile[first] += hi - lo
            continue
        profile[first] += first + 1 - lo
        profile[first + 1 : last] += 1.0
        profile[last] += hi - last
    return profile


def activity_rmse(real: Trace, simulated: Trace, n_bins: int = 200) -> float:
    """RMS difference of the two activity profiles on normalised time."""
    a = activity_profile(real, n_bins)
    b = activity_profile(simulated, n_bins)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def kernel_time_drift(real: Trace, simulated: Trace) -> Dict[str, float]:
    """Relative per-kernel mean-duration error, ``(sim - real) / real``."""
    real_d = {k: float(np.mean(v)) for k, v in real.kernel_durations().items()}
    sim_d = {k: float(np.mean(v)) for k, v in simulated.kernel_durations().items()}
    out: Dict[str, float] = {}
    for kernel in sorted(set(real_d) & set(sim_d)):
        if real_d[kernel] > 0:
            out[kernel] = (sim_d[kernel] - real_d[kernel]) / real_d[kernel]
    return out


@dataclass
class TraceComparison:
    """Aggregate comparison of a real and a simulated trace."""

    makespan_real: float
    makespan_sim: float
    makespan_error: float
    order_similarity: float
    activity_rmse: float
    kernel_drift: Dict[str, float] = field(default_factory=dict)
    tasks_real: int = 0
    tasks_sim: int = 0

    @property
    def abs_error_percent(self) -> float:
        return abs(self.makespan_error) * 100.0

    def report(self) -> str:
        lines = [
            f"makespan: real={self.makespan_real:.6f}s sim={self.makespan_sim:.6f}s "
            f"error={self.makespan_error * 100:+.2f}%",
            f"completion-order similarity (Kendall tau): {self.order_similarity:.3f}",
            f"activity-profile RMSE: {self.activity_rmse:.3f} cores",
            f"tasks: real={self.tasks_real} sim={self.tasks_sim}",
        ]
        for kernel, drift in sorted(self.kernel_drift.items()):
            lines.append(f"  {kernel:<14s} mean-duration drift {drift * 100:+.2f}%")
        return "\n".join(lines)


def compare_traces(real: Trace, simulated: Trace, n_bins: int = 200) -> TraceComparison:
    """Compute every comparison metric between ``real`` and ``simulated``."""
    return TraceComparison(
        makespan_real=real.makespan,
        makespan_sim=simulated.makespan,
        makespan_error=makespan_error(real, simulated),
        order_similarity=completion_order_similarity(real, simulated),
        activity_rmse=activity_rmse(real, simulated, n_bins),
        kernel_drift=kernel_time_drift(real, simulated),
        tasks_real=len(real),
        tasks_sim=len(simulated),
    )
