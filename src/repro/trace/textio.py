"""Plain-text trace persistence (paper §V-A: "the trace data can also be
stored in a plain text file for further processing").

Format: a ``#``-prefixed JSON metadata header, then one whitespace-separated
record per event::

    # {"n_workers": 4, "meta": {...}}
    worker task_id kernel start end width label...

The label may contain spaces (it occupies the remainder of the line).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .events import Trace

__all__ = ["save_trace", "load_trace", "dumps_trace", "loads_trace"]


def _check_round_trippable(kernel: str, label: str) -> None:
    """Reject event fields the line format cannot represent.

    Records are whitespace-split on load, so a kernel containing whitespace
    (or an empty kernel) shifts every following field; a label with a
    newline splits one record in two; leading/trailing label whitespace is
    eaten by the split.  All of these used to round-trip *silently wrong* —
    failing at save time names the offending value instead.
    """
    if not kernel or kernel.split() != [kernel]:
        raise ValueError(
            f"kernel name {kernel!r} cannot be saved: the plain-text trace "
            "format requires a non-empty kernel without whitespace"
        )
    if "\n" in label or "\r" in label:
        raise ValueError(f"label {label!r} cannot be saved: newlines break the line format")
    if label != label.strip():
        raise ValueError(
            f"label {label!r} cannot be saved: leading/trailing whitespace "
            "is lost by the plain-text trace format"
        )


def dumps_trace(trace: Trace) -> str:
    """Serialise ``trace`` to the plain-text format.

    Raises ``ValueError`` for events the format cannot represent
    losslessly (whitespace in kernel names, newlines or edge whitespace in
    labels) instead of producing text that parses back differently.
    """
    header = json.dumps({"n_workers": trace.n_workers, "meta": trace.meta}, sort_keys=True)
    lines = [f"# {header}"]
    for e in sorted(trace.events):
        _check_round_trippable(e.kernel, e.label)
        record = f"{e.worker} {e.task_id} {e.kernel} {e.start!r} {e.end!r} {e.width}"
        if e.label:
            record += f" {e.label}"
        lines.append(record)
    return "\n".join(lines) + "\n"


def loads_trace(text: str) -> Trace:
    """Parse the plain-text format back into a :class:`Trace`."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines or not lines[0].startswith("#"):
        raise ValueError("trace text must begin with a '# {json}' header line")
    header = json.loads(lines[0][1:].strip())
    trace = Trace(n_workers=int(header["n_workers"]), meta=dict(header.get("meta", {})))
    for ln in lines[1:]:
        fields = ln.split(None, 6)
        if len(fields) < 6:
            raise ValueError(f"malformed trace record: {ln!r}")
        worker, task_id, kernel, start, end, width = fields[:6]
        label = fields[6] if len(fields) == 7 else ""
        trace.record(
            worker=int(worker),
            task_id=int(task_id),
            kernel=kernel,
            start=float(start),
            end=float(end),
            label=label,
            width=int(width),
        )
    return trace


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` in the plain-text format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_trace(trace))
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    return loads_trace(Path(path).read_text())
