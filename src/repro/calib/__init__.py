"""Calibration: fit per-kernel duration models from probe artifacts.

Turns the per-task timing artifacts observed sweeps already publish
(``--probe-dir``) into a versioned ``repro.calib/v1`` document that
:class:`~repro.kernels.timing.KernelModelSet` loads as a drop-in model set
(``RunSpec.calibration`` / ``repro sweep --calibration``).

* :mod:`repro.calib.document` — the ``repro.calib/v1`` schema: per-kernel
  fitted family + parameters + goodness-of-fit scores, loadable and
  content-addressable.
* :mod:`repro.calib.fit` — the fitting pipeline: candidate families per
  kernel (including the log-normal mixture and KDE), AIC/BIC selection
  behind a Kolmogorov-Smirnov gate.
"""

from .document import (  # noqa: F401
    CALIB_SCHEMA,
    CalibrationDocument,
    KernelFit,
    calibration_digest,
    load_calibration,
)
from .fit import (  # noqa: F401
    DEFAULT_FAMILIES,
    collect_probe_samples,
    fit_from_probe_dir,
    fit_from_samples,
    fit_kernel,
    ks_threshold,
)

__all__ = [
    "CALIB_SCHEMA",
    "CalibrationDocument",
    "KernelFit",
    "calibration_digest",
    "load_calibration",
    "DEFAULT_FAMILIES",
    "collect_probe_samples",
    "fit_from_probe_dir",
    "fit_from_samples",
    "fit_kernel",
    "ks_threshold",
]
