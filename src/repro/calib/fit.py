"""Fitting pipeline: probe artifacts → candidate fits → ``repro.calib/v1``.

Family-selection rule (documented in docs/API.md):

1. warm-up outliers are trimmed per kernel
   (:func:`~repro.kernels.timing.trim_warmup_outliers`);
2. kernels with fewer than ``min_samples`` post-trim samples get a
   :class:`~repro.kernels.distributions.ConstantModel` at the sample mean
   (``selected_by == "too_few_samples"``);
3. every requested family is fitted and scored (AIC, BIC, KS);
4. the KS gate keeps candidates with
   ``D <= sqrt(-ln(alpha/2)/2) / sqrt(n)`` (the asymptotic one-sample
   critical value; 1.358/sqrt(n) at alpha=0.05);
5. among *parametric* gate-passers the lowest AIC (or BIC) wins — the
   nonparametric families (kde, empirical) are excluded from this round
   because their ``n_params == 0`` makes them trivially win any likelihood
   criterion;
6. if no parametric family passes the gate, the KDE is selected when
   requested (``selected_by == "fallback_kde"``), else the best-scoring
   parametric family wins anyway (``selected_by == "no_gate_pass"``).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..kernels.distributions import (
    ConstantModel,
    DurationModel,
    fit_family,
    model_to_params,
)
from ..kernels.timing import trim_warmup_outliers
from ..obs.samples import KERNEL_SAMPLES_SCHEMA
from .document import CALIB_SCHEMA, CalibrationDocument, KernelFit

__all__ = [
    "DEFAULT_FAMILIES",
    "ks_threshold",
    "fit_kernel",
    "fit_from_samples",
    "collect_probe_samples",
    "fit_from_probe_dir",
]

#: Candidate families fitted per kernel unless overridden.
DEFAULT_FAMILIES = ("normal", "gamma", "lognormal", "lognormal_mixture", "kde")

#: Families excluded from the AIC/BIC round (they win trivially at n_params=0).
_NONPARAMETRIC = ("kde", "empirical")


def ks_threshold(n: int, alpha: float = 0.05) -> float:
    """Asymptotic one-sample KS critical value ``c(alpha)/sqrt(n)``.

    ``c(alpha) = sqrt(-ln(alpha/2)/2)`` — 1.358 at the default alpha=0.05.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return math.sqrt(-math.log(alpha / 2.0) / 2.0) / math.sqrt(n)


def fit_kernel(
    kernel: str,
    samples: Sequence[float],
    *,
    families: Sequence[str] = DEFAULT_FAMILIES,
    criterion: str = "aic",
    ks_alpha: float = 0.05,
    min_samples: int = 8,
    trim_warmup: bool = True,
) -> KernelFit:
    """Fit candidate families to one kernel's samples and select the winner."""
    if criterion not in ("aic", "bic"):
        raise ValueError(f"unknown criterion {criterion!r}; use 'aic' or 'bic'")
    if not families:
        raise ValueError("at least one candidate family is required")
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"no samples for kernel {kernel!r}")
    if trim_warmup and arr.size >= 4:
        arr = trim_warmup_outliers(arr)
    n = int(arr.size)
    threshold = ks_threshold(max(n, 1), ks_alpha)

    if n < min_samples:
        model = ConstantModel.fit(arr)
        return KernelFit(
            kernel=kernel,
            family=model.family,
            params=model_to_params(model),
            n_samples=n,
            selected_by="too_few_samples",
            ks_statistic=float(model.ks_statistic(arr)),
            ks_threshold=threshold,
            ks_pass=bool(model.ks_statistic(arr) <= threshold),
            candidates=[],
        )

    fits: Dict[str, DurationModel] = {}
    scores: List[Dict[str, object]] = []
    for family in families:
        model = fit_family(family, arr)
        ks = float(model.ks_statistic(arr))
        fits[family] = model
        scores.append(
            {
                "family": family,
                "aic": float(model.aic(arr)),
                "bic": float(model.bic(arr)),
                "ks": ks,
                "ks_pass": bool(ks <= threshold),
            }
        )
    by_family = {s["family"]: s for s in scores}

    parametric = [s for s in scores if s["family"] not in _NONPARAMETRIC]
    passers = [s for s in parametric if s["ks_pass"]]
    if passers:
        winner = min(passers, key=lambda s: s[criterion])
        selected_by = criterion
    elif "kde" in fits:
        winner = by_family["kde"]
        selected_by = "fallback_kde"
    elif parametric:
        winner = min(parametric, key=lambda s: s[criterion])
        selected_by = "no_gate_pass"
    else:
        # Only nonparametric families were requested: lowest KS wins.
        winner = min(scores, key=lambda s: s["ks"])
        selected_by = "ks"
    family = str(winner["family"])
    model = fits[family]
    return KernelFit(
        kernel=kernel,
        family=family,
        params=model_to_params(model),
        n_samples=n,
        selected_by=selected_by,
        ks_statistic=float(winner["ks"]),
        ks_threshold=threshold,
        ks_pass=bool(winner["ks_pass"]),
        candidates=scores,
    )


def fit_from_samples(
    samples: Mapping[str, Sequence[float]],
    *,
    families: Sequence[str] = DEFAULT_FAMILIES,
    criterion: str = "aic",
    ks_alpha: float = 0.05,
    min_samples: int = 8,
    trim_warmup: bool = True,
    provenance: Optional[Mapping[str, object]] = None,
) -> CalibrationDocument:
    """Fit every kernel in ``samples`` and assemble the document."""
    if not samples:
        raise ValueError("no kernel samples to fit")
    kernels = {
        kernel: fit_kernel(
            kernel,
            samples[kernel],
            families=families,
            criterion=criterion,
            ks_alpha=ks_alpha,
            min_samples=min_samples,
            trim_warmup=trim_warmup,
        )
        for kernel in sorted(samples)
    }
    return CalibrationDocument(
        kernels=kernels,
        criterion=criterion,
        ks_alpha=ks_alpha,
        families=tuple(families),
        provenance=dict(provenance or {}),
    )


def _samples_from_samples_doc(doc: Mapping[str, object]) -> Dict[str, List[float]]:
    out: Dict[str, List[float]] = {}
    for kernel, values in doc.get("samples", {}).items():
        out.setdefault(str(kernel), []).extend(float(v) for v in values)
    return out


def _samples_from_attribution_doc(doc: Mapping[str, object]) -> Dict[str, List[float]]:
    out: Dict[str, List[float]] = {}
    for task in doc.get("tasks", []):
        kernel = task.get("kernel")
        start, end = task.get("start_t"), task.get("end_t")
        if kernel is None or start is None or end is None:
            continue
        duration = float(end) - float(start)
        if duration > 0.0:
            out.setdefault(str(kernel), []).append(duration)
    return out


def collect_probe_samples(
    probe_dir: Union[str, Path],
) -> Tuple[Dict[str, List[float]], Dict[str, object]]:
    """Merge per-kernel samples from every probe artifact in ``probe_dir``.

    Prefers ``*.samples.json`` (``repro.kernel_samples/v1``, warm-up already
    dropped); falls back to reconstructing durations from
    ``*.attribution.json`` for probe directories that predate the samples
    artifact.  Returns ``(samples, provenance)`` where provenance records the
    files used and skipped.
    """
    probe_dir = Path(probe_dir)
    if not probe_dir.is_dir():
        raise FileNotFoundError(f"probe directory not found: {probe_dir}")

    used: List[str] = []
    skipped: List[str] = []
    merged: Dict[str, List[float]] = {}
    source = "samples"
    sample_files = sorted(probe_dir.glob("*.samples.json"))
    if not sample_files:
        source = "attribution"
        sample_files = sorted(probe_dir.glob("*.attribution.json"))
    for path in sample_files:
        try:
            doc = json.loads(path.read_text())
            if source == "samples":
                if doc.get("schema") != KERNEL_SAMPLES_SCHEMA:
                    raise ValueError(f"unexpected schema {doc.get('schema')!r}")
                part = _samples_from_samples_doc(doc)
            else:
                part = _samples_from_attribution_doc(doc)
        except (ValueError, KeyError, TypeError):
            skipped.append(path.name)
            continue
        if not part:
            skipped.append(path.name)
            continue
        used.append(path.name)
        for kernel, values in part.items():
            merged.setdefault(kernel, []).extend(values)
    if not merged:
        raise ValueError(
            f"no usable timing artifacts in {probe_dir} "
            f"(looked for *.samples.json / *.attribution.json; "
            f"skipped {len(skipped)} unusable files)"
        )
    provenance = {
        "probe_dir": str(probe_dir),
        "source": source,
        "files_used": used,
        "files_skipped": skipped,
    }
    return merged, provenance


def fit_from_probe_dir(
    probe_dir: Union[str, Path],
    *,
    families: Sequence[str] = DEFAULT_FAMILIES,
    criterion: str = "aic",
    ks_alpha: float = 0.05,
    min_samples: int = 8,
    trim_warmup: bool = True,
) -> CalibrationDocument:
    """End-to-end: probe artifacts in ``probe_dir`` → ``repro.calib/v1``."""
    samples, provenance = collect_probe_samples(probe_dir)
    provenance["schema_out"] = CALIB_SCHEMA
    return fit_from_samples(
        samples,
        families=families,
        criterion=criterion,
        ks_alpha=ks_alpha,
        min_samples=min_samples,
        trim_warmup=trim_warmup,
        provenance=provenance,
    )
