"""The ``repro.calib/v1`` calibration document.

A calibration document is the durable, versioned record of one fitting run:
for every kernel class, the selected family, its parameters, the sample count
behind the fit, the goodness-of-fit scores of every candidate, and enough
provenance to trace the fit back to the probe artifacts it came from.

The document is pure JSON so it can ride through CI artifact uploads, and it
is content-addressable: :meth:`CalibrationDocument.digest` hashes the
canonical serialization, which is what :meth:`~repro.runner.spec.RunSpec`
folds into the cache key (the *content* of the calibration decides cache
identity, never the file path).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from ..kernels.distributions import MODEL_FAMILIES, DurationModel, model_from_params
from ..kernels.timing import KernelModelSet

__all__ = [
    "CALIB_SCHEMA",
    "KernelFit",
    "CalibrationDocument",
    "load_calibration",
    "calibration_digest",
]

CALIB_SCHEMA = "repro.calib/v1"


@dataclass(frozen=True)
class KernelFit:
    """One kernel's selected model plus the audit trail of the selection."""

    kernel: str
    family: str
    params: Dict[str, object]
    n_samples: int
    selected_by: str  #: "aic" | "bic" | "fallback_kde" | "too_few_samples"
    ks_statistic: float
    ks_threshold: float
    ks_pass: bool
    #: per-candidate scores: [{family, aic, bic, ks, ks_pass}, ...]
    candidates: List[Dict[str, object]] = field(default_factory=list)

    def to_model(self) -> DurationModel:
        return model_from_params(self.family, self.params)

    def to_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "params": self.params,
            "n_samples": self.n_samples,
            "selected_by": self.selected_by,
            "ks_statistic": self.ks_statistic,
            "ks_threshold": self.ks_threshold,
            "ks_pass": self.ks_pass,
            "candidates": self.candidates,
        }

    @classmethod
    def from_dict(cls, kernel: str, doc: Mapping[str, object]) -> "KernelFit":
        family = str(doc["family"])
        if family not in MODEL_FAMILIES:
            raise ValueError(f"kernel {kernel!r}: unknown model family {family!r}")
        return cls(
            kernel=kernel,
            family=family,
            params=dict(doc["params"]),
            n_samples=int(doc["n_samples"]),
            selected_by=str(doc["selected_by"]),
            ks_statistic=float(doc["ks_statistic"]),
            ks_threshold=float(doc["ks_threshold"]),
            ks_pass=bool(doc["ks_pass"]),
            candidates=[dict(c) for c in doc.get("candidates", [])],
        )


@dataclass(frozen=True)
class CalibrationDocument:
    """A full ``repro.calib/v1`` document: one :class:`KernelFit` per kernel."""

    kernels: Dict[str, KernelFit]
    criterion: str = "aic"
    ks_alpha: float = 0.05
    families: tuple = ()
    provenance: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("calibration document must cover at least one kernel")
        for kernel, fit in self.kernels.items():
            if fit.kernel != kernel:
                raise ValueError(f"kernel-fit mismatch: {kernel!r} vs {fit.kernel!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CALIB_SCHEMA,
            "criterion": self.criterion,
            "ks_alpha": self.ks_alpha,
            "families": list(self.families),
            "provenance": self.provenance,
            "kernels": {k: self.kernels[k].to_dict() for k in sorted(self.kernels)},
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "CalibrationDocument":
        schema = doc.get("schema")
        if schema != CALIB_SCHEMA:
            raise ValueError(
                f"not a calibration document: schema {schema!r} (expected {CALIB_SCHEMA!r})"
            )
        kernels_doc = doc.get("kernels")
        if not isinstance(kernels_doc, Mapping) or not kernels_doc:
            raise ValueError("calibration document has no kernels")
        kernels = {
            str(k): KernelFit.from_dict(str(k), v) for k, v in kernels_doc.items()
        }
        return cls(
            kernels=kernels,
            criterion=str(doc.get("criterion", "aic")),
            ks_alpha=float(doc.get("ks_alpha", 0.05)),
            families=tuple(doc.get("families", ())),
            provenance=dict(doc.get("provenance", {})),
        )

    def dumps(self) -> str:
        """Canonical serialization (sorted keys, fixed separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical serialization — the cache-key identity."""
        return hashlib.sha256(self.dumps().encode()).hexdigest()

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def to_model_set(self) -> KernelModelSet:
        """Materialize the document as a drop-in :class:`KernelModelSet`."""
        return KernelModelSet(
            models={k: fit.to_model() for k, fit in self.kernels.items()},
            family="calibrated",
            sample_counts={k: fit.n_samples for k, fit in self.kernels.items()},
        )

    def summary(self) -> str:
        """One line per kernel: family, selection route, scores."""
        rows = []
        for kernel in sorted(self.kernels):
            f = self.kernels[kernel]
            gate = "pass" if f.ks_pass else "FAIL"
            rows.append(
                f"{kernel:<14s} {f.family:<18s} n={f.n_samples:<5d} "
                f"ks={f.ks_statistic:.4f}/{f.ks_threshold:.4f} ({gate}) "
                f"via {f.selected_by}"
            )
        return "\n".join(rows)


def load_calibration(path: Union[str, Path]) -> CalibrationDocument:
    """Load and validate a ``repro.calib/v1`` document from disk."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(f"calibration document not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"calibration document {path} is not valid JSON: {exc}") from None
    return CalibrationDocument.from_dict(doc)


def calibration_digest(path: Union[str, Path]) -> str:
    """Content digest of the document at ``path`` (see :meth:`digest`)."""
    return load_calibration(path).digest()
