"""Stochastic timing effects: contention, OS jitter, warm-up penalties.

These are the "external stimuli" the paper says make superscalar execution
impossible to model cycle-accurately (§III): memory-bandwidth contention
between cores on a socket, multiplicative OS jitter, rare preemption spikes,
and the MKL-style first-call-per-thread initialisation penalty (§V-B1).
"""

from __future__ import annotations

from typing import Set

import numpy as np

from .topology import Machine

__all__ = ["contention_factor", "JitterModel", "WarmupModel"]


def contention_factor(machine: Machine, kernel: str, active_workers: int) -> float:
    """Slow-down multiplier from memory-bandwidth contention.

    Grows from 1.0 (single active core) to ``1 + alpha * membound`` when
    every core is busy, with exponent ``beta`` shaping the onset.  A purely
    compute-bound kernel (``membound`` 0) is unaffected.
    """
    n = machine.n_cores
    if n <= 1 or active_workers <= 1:
        return 1.0
    share = min(active_workers - 1, n - 1) / (n - 1)
    return 1.0 + machine.contention_alpha * machine.kernel_membound(kernel) * share**machine.contention_beta


class JitterModel:
    """Multiplicative log-normal jitter plus rare additive preemption spikes."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def apply(self, duration: float, rng: np.random.Generator) -> float:
        m = self.machine
        if m.jitter_sigma > 0.0:
            duration *= float(rng.lognormal(0.0, m.jitter_sigma))
        if m.spike_prob > 0.0 and rng.random() < m.spike_prob:
            duration += float(rng.exponential(m.spike_mean))
        return duration


class WarmupModel:
    """First-task-per-worker initialisation penalty (MKL-style).

    The paper: "the first kernel on each thread will take significantly
    longer to execute than the following kernels".  The penalty is consumed
    exactly once per worker per run.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._warmed: Set[int] = set()

    def reset(self) -> None:
        self._warmed.clear()

    def penalty(self, worker: int) -> float:
        if worker in self._warmed or self.machine.warmup_penalty <= 0.0:
            self._warmed.add(worker)
            return 0.0
        self._warmed.add(worker)
        return self.machine.warmup_penalty
