"""LRU cache-residency model.

The paper identifies cache residency as the dominant source of kernel-time
variance: "each execution of the kernel will have different cache
residencies ... one execution may have most of the data in cache while
another execution has very little" (§V-B2).  This model tracks, per run,
which data tiles are resident in each core's private cache and each socket's
shared cache, with LRU replacement, and scores a task's *resident fraction* —
the byte-weighted share of its footprint found in cache at launch.

Hits in the private level count fully; hits that are only in the socket's
shared level count ``l3_weight`` (default 0.6), reflecting the latency gap.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.task import DataRef, TaskSpec
from .topology import Machine

__all__ = ["LRUCache", "CacheModel"]


def _distinct_refs(task: TaskSpec):
    """A task's distinct data refs in address order.

    Iterating a ``set`` of refs would depend on string hashing (and hence on
    ``PYTHONHASHSEED``), making LRU state — and therefore whole machine runs
    — differ between processes.  Address order makes runs reproducible.
    """
    seen = {}
    for acc in task.accesses:
        seen[acc.ref.addr] = acc.ref
    return [seen[addr] for addr in sorted(seen)]


class LRUCache:
    """Byte-capacity LRU set of data refs."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_bytes
        self._used = 0
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # addr -> size

    def contains(self, ref: DataRef) -> bool:
        return ref.addr in self._entries

    def touch(self, ref: DataRef) -> None:
        """Insert or refresh ``ref``, evicting LRU entries as needed."""
        size = min(ref.size, self.capacity)
        if ref.addr in self._entries:
            self._entries.move_to_end(ref.addr)
            return
        while self._used + size > self.capacity and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
        self._entries[ref.addr] = size
        self._used += size

    def invalidate(self, ref: DataRef) -> None:
        """Drop ``ref`` if present (coherence: another agent wrote it)."""
        size = self._entries.pop(ref.addr, None)
        if size is not None:
            self._used -= size

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)


class CacheModel:
    """Per-core private caches plus per-socket shared caches for one run."""

    L3_WEIGHT = 0.6

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._l2 = [LRUCache(machine.l2_bytes_per_core) for _ in range(machine.n_cores)]
        self._l3 = [
            LRUCache(machine.l3_bytes_per_socket) for _ in range(machine.n_sockets)
        ]

    def resident_fraction(self, task: TaskSpec, core: int) -> float:
        """Byte-weighted residency score of ``task``'s footprint on ``core``.

        1.0 = everything in the private cache, 0.0 = everything cold.
        """
        l2 = self._l2[core]
        l3 = self._l3[self.machine.socket_of(core)]
        total = 0
        score = 0.0
        for ref in _distinct_refs(task):
            total += ref.size
            if l2.contains(ref):
                score += ref.size
            elif l3.contains(ref):
                score += self.L3_WEIGHT * ref.size
        return score / total if total else 1.0

    def record_execution(self, task: TaskSpec, core: int) -> None:
        """Mark the task's footprint resident on ``core`` after it runs."""
        l2 = self._l2[core]
        l3 = self._l3[self.machine.socket_of(core)]
        for ref in _distinct_refs(task):
            l2.touch(ref)
            l3.touch(ref)
