"""Heterogeneous (CPU + GPU) machine extension (paper §VII).

"Both QUARK and StarPU support GPU tasks and the simulations do not support
those in the current implementation.  Both of these extensions are worth
pursuing."  This module pursues them: a :class:`HeterogeneousMachine` adds
accelerator devices to a CPU :class:`~repro.machine.topology.Machine`, and a
:class:`HeterogeneousBackend` produces ground-truth durations for both kinds
of worker:

* **CPU workers** behave exactly as in :class:`MachineBackend` (efficiency
  tables, cache residency, contention, jitter, warm-up);
* **GPU workers** run each kernel ``speedup[kernel]`` times faster than one
  CPU core, pay a fixed kernel-launch latency, and pay PCIe transfer time
  for every task input that is not already resident in that device's memory
  (an LRU model, like the CPU caches).  Transfers make data affinity matter:
  a scheduler that keeps a tile's consumers on one device avoids them.

Worker indexing convention: workers ``[0, n_cpu_workers)`` are CPU cores;
workers ``[n_cpu_workers, n_cpu_workers + n_gpus)`` are the devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..schedulers.base import TaskNode
from .cache import LRUCache, _distinct_refs
from .noise import JitterModel
from .backend import MachineBackend
from .topology import Machine

__all__ = ["GpuDevice", "HeterogeneousMachine", "HeterogeneousBackend"]

#: Default per-kernel GPU speed-ups relative to one CPU core: high for
#: regular, bandwidth-friendly kernels, low for panel factorizations (the
#: standard hybrid-DLA picture, cf. MAGMA).
DEFAULT_GPU_SPEEDUP: Dict[str, float] = {
    "DGEMM": 20.0,
    "DGEMM_NN": 20.0,
    "DSYRK": 16.0,
    "DTRSM": 12.0,
    "DTRSM_LLN": 12.0,
    "DTRSM_RUN": 12.0,
    "DTSMQR": 14.0,
    "DORMQR": 12.0,
    "DPOTRF": 2.0,
    "DGETRF_NOPIV": 2.0,
    "DGEQRT": 1.5,
    "DTSQRT": 1.5,
}


@dataclass(frozen=True)
class GpuDevice:
    """One accelerator device."""

    name: str = "gpu"
    #: per-kernel speed-up over a single CPU core (fallback 4x).
    speedup: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_GPU_SPEEDUP))
    #: kernel-launch latency per task (seconds).
    launch_latency: float = 15e-6
    #: host<->device transfer bandwidth (bytes/second).
    transfer_bandwidth: float = 8e9
    #: device memory capacity available for tiles (bytes).
    memory_bytes: int = 2 * 1024**3

    def kernel_speedup(self, kernel: str) -> float:
        return self.speedup.get(kernel, 4.0)


@dataclass(frozen=True)
class HeterogeneousMachine:
    """A CPU machine plus a set of accelerator devices."""

    cpu: Machine
    gpus: Tuple[GpuDevice, ...]
    #: CPU workers given to the runtime (the rest of the cores drive GPUs,
    #: as StarPU dedicates one core per CUDA worker).
    n_cpu_workers: int = 0

    def __post_init__(self) -> None:
        n_cpu = self.n_cpu_workers or (self.cpu.n_cores - len(self.gpus))
        if n_cpu <= 0:
            raise ValueError("no CPU workers left after dedicating GPU drivers")
        if n_cpu + len(self.gpus) > self.cpu.n_cores + len(self.gpus):
            raise ValueError("more CPU workers than cores")
        object.__setattr__(self, "n_cpu_workers", n_cpu)

    @property
    def n_workers(self) -> int:
        return self.n_cpu_workers + len(self.gpus)

    @property
    def worker_kinds(self) -> Tuple[str, ...]:
        """Kind label per worker index (``"cpu"`` or ``"gpu"``)."""
        return ("cpu",) * self.n_cpu_workers + ("gpu",) * len(self.gpus)

    def device_of(self, worker: int) -> Optional[GpuDevice]:
        """The GPU behind ``worker``, or ``None`` for a CPU worker."""
        idx = worker - self.n_cpu_workers
        if idx < 0:
            return None
        return self.gpus[idx]


class HeterogeneousBackend:
    """Ground-truth durations for a :class:`HeterogeneousMachine`."""

    def __init__(self, machine: HeterogeneousMachine) -> None:
        self.hmachine = machine
        self._cpu_backend = MachineBackend(machine.cpu)
        self._jitter = JitterModel(machine.cpu)
        self._gpu_mem: List[LRUCache] = []
        #: freshest copy of each ref: addr -> worker index, or -1 for host.
        self._owner: Dict[int, int] = {}
        self._rng: Optional[np.random.Generator] = None

    def reset(self, rng: np.random.Generator, n_workers: int) -> None:
        if n_workers != self.hmachine.n_workers:
            raise ValueError(
                f"scheduler has {n_workers} workers but the machine provides "
                f"{self.hmachine.n_workers} ({self.hmachine.n_cpu_workers} CPU "
                f"+ {len(self.hmachine.gpus)} GPU)"
            )
        self._rng = rng
        self._cpu_backend.reset(rng, self.hmachine.n_cpu_workers)
        self._gpu_mem = [LRUCache(g.memory_bytes) for g in self.hmachine.gpus]
        self._owner = {}

    def _is_gpu(self, worker: int) -> bool:
        return worker >= self.hmachine.n_cpu_workers

    def _finish_writes(self, node: TaskNode, worker: int) -> None:
        """Update ownership and invalidate stale device copies after a task."""
        for ref in node.spec.writes:
            self._owner[ref.addr] = worker if self._is_gpu(worker) else -1
            for g, mem in enumerate(self._gpu_mem):
                if g + self.hmachine.n_cpu_workers != worker:
                    mem.invalidate(ref)

    def duration(self, node: TaskNode, worker: int, now: float, active_workers: int) -> float:
        if self._rng is None:
            raise RuntimeError("HeterogeneousBackend.duration called before reset()")
        device = self.hmachine.device_of(worker)
        if device is None:
            d = self._cpu_duration(node, worker, now, active_workers)
        else:
            d = self._gpu_duration(node, worker, device)
        self._finish_writes(node, worker)
        return d

    def _cpu_duration(self, node: TaskNode, worker: int, now: float, active: int) -> float:
        # Device-to-host transfers for inputs whose fresh copy sits on a GPU.
        transfer = 0.0
        for ref in _distinct_refs(node.spec):
            owner = self._owner.get(ref.addr, -1)
            if owner >= self.hmachine.n_cpu_workers:
                device = self.hmachine.device_of(owner)
                transfer += ref.size / device.transfer_bandwidth
                self._owner[ref.addr] = -1  # host copy is fresh now
        return transfer + self._cpu_backend.duration(node, worker, now, active)

    def _gpu_duration(self, node: TaskNode, worker: int, device: GpuDevice) -> float:
        task = node.spec
        mem = self._gpu_mem[worker - self.hmachine.n_cpu_workers]
        # Host->device (or device->device via host) transfers for inputs
        # that are not already resident and fresh on this device.
        transfer_bytes = 0
        for ref in _distinct_refs(task):
            owner = self._owner.get(ref.addr, -1)
            fresh_here = mem.contains(ref) and owner in (-1, worker)
            if not fresh_here:
                transfer_bytes += ref.size
                if owner >= self.hmachine.n_cpu_workers and owner != worker:
                    transfer_bytes += ref.size  # extra hop through the host
        compute = self.hmachine.cpu.base_duration(task.kernel, task.flops)
        compute /= device.kernel_speedup(task.kernel)
        duration = (
            device.launch_latency
            + transfer_bytes / device.transfer_bandwidth
            + compute
        )
        duration = self._jitter.apply(duration, self._rng)
        for ref in _distinct_refs(task):
            mem.touch(ref)
        return duration
