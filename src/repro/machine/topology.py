"""Machine topology and kernel efficiency model.

This package is the stand-in for the paper's physical testbed — a 48-core
quad-socket AMD Opteron 6180 SE ("Magny-Cours") running Intel MKL.  A
:class:`Machine` describes socket/core structure, cache capacities, per-core
peak rate, and per-kernel efficiency factors.  Ground-truth ("real") runs are
executions against :class:`~repro.machine.backend.MachineBackend`, which
derives task durations from this description plus dynamic cache, contention,
jitter and warm-up effects.

The per-kernel **efficiency table** encodes the paper's observation that
kernels reach very different fractions of peak: vendor-tuned DGEMM is near
peak while "the DTSMQR operation ... has not been tuned and optimized to the
extent that DGEMM has been optimized, so it reaches a lower percentage of
peak performance" (§IV-B2).  The **memory-boundedness table** encodes each
kernel's sensitivity to cache misses and bandwidth contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["Machine", "MACHINE_PRESETS", "get_machine"]

#: Fraction of per-core peak each kernel class achieves with warm caches.
DEFAULT_EFFICIENCY: Dict[str, float] = {
    "DGEMM": 0.90,
    "DGEMM_NN": 0.90,
    "DSYRK": 0.82,
    "DTRSM": 0.78,
    "DTRSM_LLN": 0.76,
    "DTRSM_RUN": 0.76,
    "DPOTRF": 0.45,
    "DGETRF_NOPIV": 0.42,
    "DGEQRT": 0.35,
    "DORMQR": 0.70,
    "DTSQRT": 0.32,
    "DTSMQR": 0.50,
}

#: Sensitivity (0..1) of each kernel to cold caches / bandwidth contention.
DEFAULT_MEMBOUND: Dict[str, float] = {
    "DGEMM": 0.15,
    "DGEMM_NN": 0.15,
    "DSYRK": 0.20,
    "DTRSM": 0.25,
    "DTRSM_LLN": 0.25,
    "DTRSM_RUN": 0.25,
    "DPOTRF": 0.30,
    "DGETRF_NOPIV": 0.30,
    "DGEQRT": 0.35,
    "DORMQR": 0.22,
    "DTSQRT": 0.40,
    "DTSMQR": 0.30,
}


@dataclass(frozen=True)
class Machine:
    """A synthetic shared-memory multicore machine.

    Rates are per core; ``peak_gflops_per_core`` is
    ``frequency x flops/cycle`` for double precision.
    """

    name: str
    n_sockets: int
    cores_per_socket: int
    peak_gflops_per_core: float
    l2_bytes_per_core: int
    l3_bytes_per_socket: int
    #: cold-miss multiplier ceiling: a fully-cold, fully memory-bound kernel
    #: runs ``1 + cold_penalty`` times slower than warm.
    cold_penalty: float = 0.45
    #: bandwidth-contention ceiling: a fully memory-bound kernel with every
    #: other core on the socket active runs ``1 + contention_alpha`` slower.
    contention_alpha: float = 0.35
    contention_beta: float = 1.5
    #: multiplicative log-normal jitter sigma (OS noise, DVFS wobble).
    jitter_sigma: float = 0.03
    #: probability and mean (seconds) of an OS-preemption spike per task.
    spike_prob: float = 0.002
    spike_mean: float = 200e-6
    #: first-kernel-per-thread initialisation penalty (MKL-style), seconds.
    warmup_penalty: float = 400e-6
    #: fixed per-task launch latency (call overhead), seconds.
    launch_latency: float = 1.0e-6
    #: parallel efficiency of multi-threaded tasks: a width-``w`` task runs
    #: ``w * smp_task_efficiency`` times faster than the single-core kernel
    #: (fork/join overhead and intra-kernel synchronisation).
    smp_task_efficiency: float = 0.85
    efficiency: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_EFFICIENCY))
    membound: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MEMBOUND))

    def __post_init__(self) -> None:
        if self.n_sockets <= 0 or self.cores_per_socket <= 0:
            raise ValueError("machine must have positive socket/core counts")
        if self.peak_gflops_per_core <= 0:
            raise ValueError("peak rate must be positive")

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    @property
    def peak_gflops(self) -> float:
        return self.n_cores * self.peak_gflops_per_core

    def socket_of(self, core: int) -> int:
        if not (0 <= core < self.n_cores):
            raise ValueError(f"core {core} out of range [0, {self.n_cores})")
        return core // self.cores_per_socket

    def kernel_efficiency(self, kernel: str) -> float:
        return self.efficiency.get(kernel, 0.5)

    def kernel_membound(self, kernel: str) -> float:
        return self.membound.get(kernel, 0.3)

    def base_duration(self, kernel: str, flops: float) -> float:
        """Warm-cache, uncontended execution time of one kernel instance."""
        if flops <= 0:
            return self.launch_latency
        rate = self.peak_gflops_per_core * 1e9 * self.kernel_efficiency(kernel)
        return self.launch_latency + flops / rate

    def quiet(self) -> "Machine":
        """A noise-free copy (no jitter, spikes, or warm-up) for deterministic
        tests and analytical comparisons."""
        return replace(
            self,
            name=self.name + "-quiet",
            jitter_sigma=0.0,
            spike_prob=0.0,
            warmup_penalty=0.0,
        )


#: Machines used by the experiments.
MACHINE_PRESETS: Dict[str, Machine] = {
    # The paper's testbed: AMD Opteron 6180 SE, 4 sockets x 12 cores,
    # 2.5 GHz x 4 DP flops/cycle = 10 GFLOP/s per core, 480 GFLOP/s peak.
    "magny_cours_48": Machine(
        name="magny_cours_48",
        n_sockets=4,
        cores_per_socket=12,
        peak_gflops_per_core=10.0,
        l2_bytes_per_core=512 * 1024,
        l3_bytes_per_socket=10 * 1024 * 1024,
    ),
    # A small dual-socket box for tests and examples.
    "smp_8": Machine(
        name="smp_8",
        n_sockets=2,
        cores_per_socket=4,
        peak_gflops_per_core=16.0,
        l2_bytes_per_core=1024 * 1024,
        l3_bytes_per_socket=16 * 1024 * 1024,
    ),
    # A tiny deterministic machine: single socket, no noise sources.
    "uniform_4": Machine(
        name="uniform_4",
        n_sockets=1,
        cores_per_socket=4,
        peak_gflops_per_core=10.0,
        l2_bytes_per_core=1024 * 1024,
        l3_bytes_per_socket=8 * 1024 * 1024,
        jitter_sigma=0.0,
        spike_prob=0.0,
        warmup_penalty=0.0,
        cold_penalty=0.0,
        contention_alpha=0.0,
    ),
}


def get_machine(name: str) -> Machine:
    """Look up a machine preset by name."""
    try:
        return MACHINE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; presets: {sorted(MACHINE_PRESETS)}"
        ) from None
