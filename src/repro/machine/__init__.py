"""Synthetic machine substrate: topology, cache, noise, and calibration."""

from .backend import MachineBackend
from .cache import CacheModel, LRUCache
from .calibration import (
    calibrate,
    calibrate_heterogeneous,
    calibration_run,
    collect_samples,
    collect_samples_by_kind,
)
from .hetero import GpuDevice, HeterogeneousBackend, HeterogeneousMachine
from .noise import JitterModel, WarmupModel, contention_factor
from .topology import MACHINE_PRESETS, Machine, get_machine

__all__ = [
    "MachineBackend",
    "CacheModel",
    "LRUCache",
    "calibrate",
    "calibrate_heterogeneous",
    "calibration_run",
    "collect_samples",
    "collect_samples_by_kind",
    "GpuDevice",
    "HeterogeneousBackend",
    "HeterogeneousMachine",
    "JitterModel",
    "WarmupModel",
    "contention_factor",
    "MACHINE_PRESETS",
    "Machine",
    "get_machine",
]
