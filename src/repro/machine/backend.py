"""MachineBackend: ground-truth task durations from the machine model.

A *real run* in this reproduction is a scheduler execution whose task
durations come from this backend.  For each dispatched task it composes:

``base x cold-cache factor x contention factor x jitter + warm-up penalty``

where *base* is the warm, uncontended kernel time from the machine's
efficiency table, the cache factor reflects LRU residency of the task's
tiles on the executing core, contention reflects how many cores are busy,
and jitter/warm-up add the non-deterministic effects the paper names.  The
backend also *advances* the cache model, so task placement feeds back into
later durations — the coupling that makes real schedules non-trivial to
predict and the simulator worth building.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..schedulers.base import TaskNode
from .cache import CacheModel
from .noise import JitterModel, WarmupModel, contention_factor
from .topology import Machine, get_machine

__all__ = ["MachineBackend"]


class MachineBackend:
    """Duration source emulating a physical multicore machine.

    Workers map one-to-one onto machine cores starting at ``core_offset``
    (StarPU/OmpSs drivers reserve core 0 for the submission thread by
    passing ``core_offset=1``).
    """

    def __init__(self, machine: Machine | str, *, core_offset: int = 0) -> None:
        self.machine = get_machine(machine) if isinstance(machine, str) else machine
        if core_offset < 0:
            raise ValueError("core_offset must be non-negative")
        self.core_offset = core_offset
        self._cache: Optional[CacheModel] = None
        self._jitter = JitterModel(self.machine)
        self._warmup = WarmupModel(self.machine)
        self._rng: Optional[np.random.Generator] = None

    def reset(self, rng: np.random.Generator, n_workers: int) -> None:
        if n_workers + self.core_offset > self.machine.n_cores:
            raise ValueError(
                f"{n_workers} workers (+offset {self.core_offset}) exceed the "
                f"{self.machine.n_cores} cores of {self.machine.name}"
            )
        self._rng = rng
        self._cache = CacheModel(self.machine)
        self._warmup = WarmupModel(self.machine)

    def _core(self, worker: int) -> int:
        return worker + self.core_offset

    def duration(self, node: TaskNode, worker: int, now: float, active_workers: int) -> float:
        if self._rng is None or self._cache is None:
            raise RuntimeError("MachineBackend.duration called before reset()")
        m = self.machine
        core = self._core(worker)
        task = node.spec

        base = m.base_duration(task.kernel, task.flops)
        if task.width > 1:
            # Multi-threaded task: near-linear speed-up with fork/join loss.
            base /= task.width * m.smp_task_efficiency
        resident = self._cache.resident_fraction(task, core)
        cache_factor = 1.0 + m.cold_penalty * m.kernel_membound(task.kernel) * (1.0 - resident)
        cont = contention_factor(m, task.kernel, active_workers)

        duration = base * cache_factor * cont
        duration = self._jitter.apply(duration, self._rng)
        duration += self._warmup.penalty(worker)

        self._cache.record_execution(task, core)
        return duration
