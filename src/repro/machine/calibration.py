"""Calibration: harvest kernel timings from a real run and fit models.

The paper's timing methodology (§V-B1) rejects isolated cold/warm-cache
micro-benchmarks in favour of measuring kernels *inside an actual execution
of the algorithm* under the target scheduler, because real cache residency
"may be somewhere between warm and cold".  This module implements that
pipeline:

1. run a (typically small) problem on the machine backend under the chosen
   scheduler — :func:`calibration_run`;
2. harvest per-kernel duration samples from the trace, dropping each
   worker's first task (the MKL-style warm-up call the paper neutralises
   with an extra initialisation call) — :func:`collect_samples`;
3. fit the chosen distribution family per kernel — :func:`calibrate`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from ..core.task import Program
from ..kernels.timing import KernelModelSet
from ..schedulers.base import SchedulerBase
from ..trace.events import Trace
from .backend import MachineBackend
from .topology import Machine

__all__ = [
    "calibration_run",
    "collect_samples",
    "collect_samples_by_kind",
    "calibrate",
    "calibrate_heterogeneous",
]


def calibration_run(
    program: Program,
    scheduler: SchedulerBase,
    machine: Union[Machine, str, MachineBackend],
    *,
    seed: int = 0,
) -> Trace:
    """One real run of ``program`` for timing-harvest purposes."""
    backend = machine if isinstance(machine, MachineBackend) else MachineBackend(machine)
    return scheduler.run(program, backend, seed=seed, trace_meta={"purpose": "calibration"})


def collect_samples(
    trace: Trace,
    *,
    drop_first_per_worker: bool = True,
) -> Dict[str, List[float]]:
    """Per-kernel duration samples from a trace.

    With ``drop_first_per_worker`` each worker's chronologically first task
    is excluded — the paper's handling of the MKL per-thread initialisation
    outlier ("each of the threads is initialized with another call to the
    MKL library ... before the trace is collected").
    """
    skip = set()
    if drop_first_per_worker:
        for worker in range(trace.n_workers):
            events = trace.worker_events(worker)
            if events:
                skip.add(events[0].task_id)
    samples: Dict[str, List[float]] = {}
    for e in sorted(trace.events):
        if e.task_id in skip:
            continue
        samples.setdefault(e.kernel, []).append(e.duration)
    return samples


def collect_samples_by_kind(
    trace: Trace,
    worker_kinds,
    *,
    drop_first_per_worker: bool = True,
) -> Dict[str, Dict[str, List[float]]]:
    """Per-worker-kind, per-kernel duration samples (heterogeneous runs).

    Returns ``{kind: {kernel: [durations...]}}``.  Used to fit the per-kind
    model sets consumed by
    :class:`repro.core.simbackend.HeterogeneousSimulationBackend`.
    """
    skip = set()
    if drop_first_per_worker:
        for worker in range(trace.n_workers):
            events = trace.worker_events(worker)
            if events:
                skip.add(events[0].task_id)
    out: Dict[str, Dict[str, List[float]]] = {}
    for e in sorted(trace.events):
        if e.task_id in skip:
            continue
        kind = worker_kinds[e.worker]
        out.setdefault(kind, {}).setdefault(e.kernel, []).append(e.duration)
    return out


def calibrate_heterogeneous(
    program: Program,
    scheduler: SchedulerBase,
    backend,
    worker_kinds,
    *,
    family: str = "lognormal",
    seed: int = 0,
) -> Tuple[Dict[str, KernelModelSet], Trace]:
    """Calibration pipeline for CPU+GPU machines: per-kind model sets.

    A kind that never executed some kernel class during calibration falls
    back to that kernel's model from the other kind (better than failing —
    but prefer calibration problems large enough to exercise every kernel
    on every architecture).
    """
    trace = scheduler.run(program, backend, seed=seed, trace_meta={"purpose": "calibration"})
    by_kind = collect_samples_by_kind(trace, worker_kinds)
    if not by_kind:
        raise ValueError("calibration run produced no samples")
    all_kernels = {k for samples in by_kind.values() for k in samples}
    models: Dict[str, KernelModelSet] = {}
    for kind in set(worker_kinds):
        samples = dict(by_kind.get(kind, {}))
        for kernel in all_kernels:
            if kernel not in samples or not samples[kernel]:
                donors = [
                    s[kernel] for s in by_kind.values() if s.get(kernel)
                ]
                if not donors:
                    raise ValueError(f"kernel {kernel!r} never executed")
                samples[kernel] = donors[0]
        models[kind] = KernelModelSet.from_samples(samples, family=family)
    return models, trace


def calibrate(
    program: Program,
    scheduler: SchedulerBase,
    machine: Union[Machine, str, MachineBackend],
    *,
    family: str = "lognormal",
    seed: int = 0,
    drop_first_per_worker: bool = True,
    trim_warmup: bool = True,
) -> Tuple[KernelModelSet, Trace]:
    """Full calibration pipeline; returns the fitted models and the trace.

    ``family`` is a distribution family name or ``"best"`` (per-kernel AIC
    selection among normal/gamma/lognormal, the comparison of Figs. 3-4).
    """
    trace = calibration_run(program, scheduler, machine, seed=seed)
    samples = collect_samples(trace, drop_first_per_worker=drop_first_per_worker)
    if not samples:
        raise ValueError("calibration run produced no samples (empty program?)")
    models = KernelModelSet.from_samples(samples, family=family, trim_warmup=trim_warmup)
    return models, trace
