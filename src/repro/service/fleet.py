"""The fleet supervisor: N shard daemons behind one router (``repro fleet``).

PARSIR's one-runner-per-processor layout, applied to serving: each shard is
a full ``repro serve`` daemon in its own *process* (its own GIL, worker
pool, admission control, and :func:`~repro.runner.cache.partition_cache_dir`
cache partition), and the router in the supervisor process consistent-hashes
``cache_key`` across them.  Because shards are reached over the same
HTTP/JSON wire protocol clients already speak, nothing here cares that they
happen to be local children — pointing a :class:`ShardAddress` at another
host is the multi-host story and requires no protocol change.

Startup choreography::

    fleet.start()
      spawn shard i:  repro serve --port 0 --cache-dir <cache>/shard-0i
        │   stdout → "listening on 127.0.0.1:<port>"  (parsed, bounded wait)
        │   stderr → <log-dir>/shard-0i.log           (kept for post-mortems)
      build RouterService over the announced addresses
      bind the router socket, write the state file, print the fleet's own
      "listening on <host>:<port>" readiness line to stdout

The state file (``--state-file``) records the router address and every
shard's pid/port as JSON — the CI fleet lane uses it to kill a specific
shard and to health-poll without parsing logs.

Shutdown choreography (SIGTERM → exit 0): the router drains first (new work
refused with a retriable 503, in-flight forwards finish), then each live
shard receives SIGTERM and runs its own drain; the supervisor waits for
them all and exits 0 only if every shard that was still alive terminated
cleanly.  A shard that died *earlier* (crash, kill — the router has already
marked it down and rerouted its keys) is reported but does not dirty the
exit status: losing a shard is a degraded state the fleet is designed to
survive, not a supervisor failure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from ..obs.telemetry import ServiceTelemetry
from ..runner.cache import partition_cache_dir
from .router import ReproRouter, RouterService, ShardAddress

__all__ = ["FleetError", "ShardProcess", "Fleet", "run_fleet"]

_READY_PREFIX = "listening on "


class FleetError(RuntimeError):
    """Fleet startup failed (a shard died or never announced readiness)."""


@dataclass
class ShardProcess:
    """One spawned shard daemon and where it announced itself."""

    shard_id: str
    process: subprocess.Popen
    host: str
    port: int
    log_path: Optional[Path]

    @property
    def pid(self) -> int:
        return self.process.pid

    def address(self) -> ShardAddress:
        return ShardAddress(self.shard_id, self.host, self.port)


def _parse_ready_line(line: str) -> Optional[tuple]:
    """``listening on <host>:<port>`` → (host, port), else ``None``."""
    line = line.strip()
    if not line.startswith(_READY_PREFIX):
        return None
    host, _, port = line[len(_READY_PREFIX) :].rpartition(":")
    if not host or not port.isdigit():
        return None
    return host, int(port)


def _read_ready(stdout: IO[str], timeout_s: float) -> Optional[tuple]:
    """Read lines until a readiness line appears, bounded by ``timeout_s``.

    ``readline`` on a pipe has no timeout of its own, so the read runs on a
    helper thread and the caller only waits ``timeout_s`` for it; a shard
    that wedges before binding its socket fails startup instead of hanging
    the supervisor.
    """
    found: List[tuple] = []

    def scan() -> None:
        for line in stdout:
            parsed = _parse_ready_line(line)
            if parsed is not None:
                found.append(parsed)
                return

    thread = threading.Thread(target=scan, name="repro-fleet-ready", daemon=True)
    thread.start()
    thread.join(timeout_s)
    return found[0] if found else None


class Fleet:
    """Spawn shards, route over them, drain everything on SIGTERM."""

    def __init__(
        self,
        *,
        shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 8430,
        cache_dir: Union[str, Path, None] = None,
        shard_workers: int = 2,
        max_pending: int = 16,
        max_inflight: int = 32,
        retries: int = 2,
        revive_after_s: float = 5.0,
        default_timeout_s: Optional[float] = None,
        vnodes: int = 64,
        log_dir: Union[str, Path, None] = None,
        state_file: Union[str, Path, None] = None,
        ready_timeout_s: float = 30.0,
        stop_timeout_s: float = 30.0,
        log=None,
        log_json: Union[str, Path, None] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.n_shards = shards
        self.host = host
        self.port = port
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.shard_workers = shard_workers
        self.max_pending = max_pending
        self.max_inflight = max_inflight
        self.retries = retries
        self.revive_after_s = revive_after_s
        self.default_timeout_s = default_timeout_s
        self.vnodes = vnodes
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self.state_file = Path(state_file) if state_file is not None else None
        self.ready_timeout_s = ready_timeout_s
        self.stop_timeout_s = stop_timeout_s
        self._log = log
        self.log_json = Path(log_json) if log_json is not None else None
        self.shard_procs: List[ShardProcess] = []
        self.router: Optional[RouterService] = None
        self.front: Optional[ReproRouter] = None
        self._log_handles: List[IO[str]] = []

    def _say(self, msg: str) -> None:
        if self._log is not None:
            self._log(msg)

    # -- spawning ----------------------------------------------------------
    def _shard_command(self, shard_id: str) -> List[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--workers",
            str(self.shard_workers),
            "--max-pending",
            str(self.max_pending),
        ]
        if self.default_timeout_s is not None:
            cmd += ["--timeout", str(self.default_timeout_s)]
        if self.cache_dir is not None:
            cmd += ["--cache-dir", str(partition_cache_dir(self.cache_dir, int(shard_id)))]
        else:
            cmd += ["--no-cache"]
        cmd += ["--shard-id", shard_id]
        if self.log_json is not None:
            # Sibling files next to the router's access log: one JSON-lines
            # stream per process, no cross-process interleaving to untangle.
            suffix = self.log_json.suffix or ".jsonl"
            shard_log = self.log_json.with_name(
                f"{self.log_json.stem}-shard-{shard_id}{suffix}"
            )
            cmd += ["--log-json", str(shard_log)]
        return cmd

    def _spawn_shard(self, shard_id: str) -> ShardProcess:
        log_path = None
        if self.log_dir is not None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
            log_path = self.log_dir / f"shard-{shard_id}.log"
            stderr: Union[IO[str], int] = open(log_path, "w")
            self._log_handles.append(stderr)
        else:
            stderr = subprocess.DEVNULL
        env = dict(os.environ)
        # Children must import this very checkout even when `repro` is not
        # installed into the interpreter (tests, bare PYTHONPATH=src runs).
        src_dir = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            self._shard_command(shard_id),
            stdout=subprocess.PIPE,
            stderr=stderr,
            text=True,
            env=env,
        )
        ready = _read_ready(process.stdout, self.ready_timeout_s)
        if ready is None:
            process.kill()
            where = f"; see {log_path}" if log_path is not None else ""
            raise FleetError(
                f"shard {shard_id} (pid {process.pid}) never announced readiness "
                f"within {self.ready_timeout_s}s{where}"
            )
        host, port = ready
        return ShardProcess(shard_id, process, host, port, log_path)

    def start(self) -> "Fleet":
        """Spawn every shard, build the router, bind the front-end socket."""
        try:
            for i in range(self.n_shards):
                shard = self._spawn_shard(str(i))
                self.shard_procs.append(shard)
                self._say(
                    f"shard {shard.shard_id} ready on {shard.host}:{shard.port} "
                    f"(pid {shard.pid})"
                )
        except (FleetError, OSError):
            self.stop_shards()
            raise
        telemetry = ServiceTelemetry("router", access_log=self.log_json)
        self.router = RouterService(
            [s.address() for s in self.shard_procs],
            vnodes=self.vnodes,
            max_inflight=self.max_inflight,
            retries=self.retries,
            revive_after_s=self.revive_after_s,
            default_timeout_s=self.default_timeout_s,
            log=self._log,
            telemetry=telemetry,
        )
        self.front = ReproRouter(
            self.router, self.host, self.port, log=self._log, telemetry=telemetry
        )
        self.write_state()
        return self

    def write_state(self) -> Optional[Path]:
        """Publish the fleet topology (router address, shard pids/ports)."""
        if self.state_file is None or self.front is None:
            return None
        host, port = self.front.address
        doc = {
            "schema": "repro.fleet/v1",
            "router": {"host": host, "port": port, "pid": os.getpid()},
            "shards": [
                {"id": s.shard_id, "pid": s.pid, "host": s.host, "port": s.port,
                 "log": str(s.log_path) if s.log_path else None}
                for s in self.shard_procs
            ],
        }
        self.state_file.parent.mkdir(parents=True, exist_ok=True)
        self.state_file.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        return self.state_file

    # -- shutdown ----------------------------------------------------------
    def stop_shards(self) -> int:
        """SIGTERM every live shard, wait for the drains; non-zero = dirty.

        Returns the number of shards that were alive at drain time but did
        not exit cleanly (0 is the happy path).  Shards that already died
        earlier are logged and skipped — the router has long rerouted their
        keys, and their demise is a survived fault, not a shutdown failure.
        """
        dirty = 0
        live: List[ShardProcess] = []
        for shard in self.shard_procs:
            code = shard.process.poll()
            if code is not None:
                self._say(
                    f"shard {shard.shard_id} (pid {shard.pid}) already exited "
                    f"with {code} — keys were rerouted"
                )
                continue
            try:
                shard.process.send_signal(signal.SIGTERM)
            except OSError:
                continue
            live.append(shard)
        deadline = time.monotonic() + self.stop_timeout_s
        for shard in live:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                code = shard.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                self._say(f"shard {shard.shard_id} ignored SIGTERM; killing")
                shard.process.kill()
                shard.process.wait(timeout=10)
                dirty += 1
                continue
            if code != 0:
                self._say(f"shard {shard.shard_id} exited with {code} during drain")
                dirty += 1
            else:
                self._say(f"shard {shard.shard_id} drained and exited 0")
        for handle in self._log_handles:
            try:
                handle.close()
            except OSError:
                pass
        self._log_handles.clear()
        for shard in self.shard_procs:
            if shard.process.stdout is not None:
                shard.process.stdout.close()
        return dirty

    def run(self) -> int:
        """``repro fleet``: serve until a drain signal, then stop the shards.

        Returns the process exit status: 0 after a clean whole-fleet drain.
        """
        self.start()
        assert self.front is not None
        self.front.install_signal_handlers()
        host, port = self.front.address
        print(f"listening on {host}:{port}", flush=True)
        self._say(
            f"repro fleet: router on http://{host}:{port} over "
            f"{len(self.shard_procs)} shard(s) "
            f"{[f'{s.host}:{s.port}' for s in self.shard_procs]} "
            "— SIGTERM drains the whole fleet"
        )
        self.front.serve_forever()  # returns once drained + socket closed
        dirty = self.stop_shards()
        self._say(
            "repro fleet: drained and stopped"
            if dirty == 0
            else f"repro fleet: stopped, {dirty} shard(s) exited dirty"
        )
        return 0 if dirty == 0 else 1

    # -- test/embedding conveniences --------------------------------------
    def addresses(self) -> Dict[str, ShardAddress]:
        return {s.shard_id: s.address() for s in self.shard_procs}


def run_fleet(
    *,
    shards: int = 2,
    host: str = "127.0.0.1",
    port: int = 8430,
    cache_dir: Union[str, Path, None] = None,
    shard_workers: int = 2,
    max_pending: int = 16,
    max_inflight: int = 32,
    retries: int = 2,
    revive_after_s: float = 5.0,
    default_timeout_s: Optional[float] = None,
    vnodes: int = 64,
    log_dir: Union[str, Path, None] = None,
    state_file: Union[str, Path, None] = None,
    log=print,
    log_json: Union[str, Path, None] = None,
) -> int:
    """Body of ``repro fleet``: build, serve, drain; returns the exit code."""
    fleet = Fleet(
        shards=shards,
        host=host,
        port=port,
        cache_dir=cache_dir,
        shard_workers=shard_workers,
        max_pending=max_pending,
        max_inflight=max_inflight,
        retries=retries,
        revive_after_s=revive_after_s,
        default_timeout_s=default_timeout_s,
        vnodes=vnodes,
        log_dir=log_dir,
        state_file=state_file,
        log=log,
        log_json=log_json,
    )
    return fleet.run()
