"""The ``repro serve`` wire format.

Requests and responses are JSON documents tagged with
:data:`SERVICE_SCHEMA`; specs travel as their :meth:`RunSpec.to_dict`
rendering and are validated by :meth:`RunSpec.from_dict` at the server
boundary.  The format is deliberately transport-poor: any carrier that can
move a JSON object (the bundled HTTP front end, a unix socket, a test
calling the service object directly) speaks the same documents.

Request (``POST /v1/run``)::

    {"spec": {...RunSpec.to_dict()...},
     "timeline": false,          # record a probe + export timeline artifacts
     "timeout_s": 30.0}          # per-request deadline (optional)

Success response::

    {"schema": "repro.service/v1", "ok": true,
     "key": "<cache key>", "cached": false, "coalesced": false,
     "wall_s": 0.12, "queue_wait_s": 0.01,
     "trace": "<plain-text trace>", "metrics": {...RunMetrics.to_dict()...},
     "artifacts": ["..."] | null,
     "spans": [...]}              # traced requests only (X-Repro-Trace-Id)

Error response (the HTTP layer mirrors ``code`` onto a status)::

    {"schema": "repro.service/v1", "ok": false,
     "error": "overloaded" | "timeout" | "draining" | "bad_request" | "failed",
     "message": "...", "retry_after_s": 0.5 | null}

``overloaded`` and ``draining`` are *retriable*: the request was never
started and re-sending it after ``retry_after_s`` is always safe.
``timeout`` means the deadline passed while the run was still executing;
the run keeps going server-side and publishes to the cache, so a retry
typically hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..runner.spec import RunSpec

__all__ = [
    "SERVICE_SCHEMA",
    "ERROR_CODES",
    "HTTP_STATUS",
    "RunRequest",
    "error_document",
    "response_document",
]

#: Schema tag stamped into every service document (requests and responses).
SERVICE_SCHEMA = "repro.service/v1"

#: Error codes a response may carry; ``retriable`` drives client back-off.
#: ``unavailable`` is emitted by the fleet router when every shard that could
#: own a key is marked down — retriable, because shards revive and mark-down
#: is re-probed.
ERROR_CODES = {
    "bad_request": {"retriable": False},
    "overloaded": {"retriable": True},
    "draining": {"retriable": True},
    "timeout": {"retriable": True},
    "unavailable": {"retriable": True},
    "failed": {"retriable": False},
}

#: HTTP status the bundled server uses for each error code (429-style
#: backpressure, 503 while draining or no shard is reachable, 504 for an
#: expired deadline).
HTTP_STATUS = {
    "bad_request": 400,
    "overloaded": 429,
    "draining": 503,
    "timeout": 504,
    "unavailable": 503,
    "failed": 500,
}


@dataclass(frozen=True)
class RunRequest:
    """One parsed, validated ``/v1/run`` request."""

    spec: RunSpec
    timeline: bool = False
    timeout_s: Optional[float] = None

    @classmethod
    def from_document(cls, doc: Any) -> "RunRequest":
        """Parse a request document; raises ``ValueError`` on any defect."""
        if not isinstance(doc, dict):
            raise ValueError(f"request must be a JSON object, got {type(doc).__name__}")
        tag = doc.get("schema", SERVICE_SCHEMA)
        if tag != SERVICE_SCHEMA:
            raise ValueError(f"unknown request schema {tag!r} (expected {SERVICE_SCHEMA!r})")
        unknown = sorted(set(doc) - {"schema", "spec", "timeline", "timeout_s"})
        if unknown:
            raise ValueError(f"unknown request field(s) {unknown}")
        if "spec" not in doc:
            raise ValueError("request carries no 'spec'")
        try:
            spec = RunSpec.from_dict(doc["spec"])
        except (TypeError, KeyError, ValueError) as exc:
            raise ValueError(f"invalid spec: {exc}") from exc
        timeline = doc.get("timeline", False)
        if not isinstance(timeline, bool):
            raise ValueError("'timeline' must be a boolean")
        timeout_s = doc.get("timeout_s")
        if timeout_s is not None:
            if not isinstance(timeout_s, (int, float)) or isinstance(timeout_s, bool):
                raise ValueError("'timeout_s' must be a number")
            if timeout_s <= 0.0:
                raise ValueError("'timeout_s' must be positive")
            timeout_s = float(timeout_s)
        return cls(spec=spec, timeline=timeline, timeout_s=timeout_s)

    def to_document(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": SERVICE_SCHEMA, "spec": self.spec.to_dict()}
        if self.timeline:
            doc["timeline"] = True
        if self.timeout_s is not None:
            doc["timeout_s"] = self.timeout_s
        return doc


def response_document(served) -> Dict[str, Any]:
    """Success document for one :class:`~repro.service.core.ServedResult`.

    A traced request (one that carried an ``X-Repro-Trace-Id`` header
    against a telemetry-enabled daemon) additionally gets a ``"spans"``
    list of span documents; untraced responses omit the key entirely, so
    the wire format is unchanged for existing clients.
    """
    doc = {
        "schema": SERVICE_SCHEMA,
        "ok": True,
        "key": served.result.key,
        "cached": served.result.cached,
        "coalesced": served.coalesced,
        "wall_s": served.result.wall_s,
        "queue_wait_s": served.queue_wait_s,
        "trace": served.result.trace_dump(),
        "metrics": served.result.metrics.to_dict(),
        "artifacts": [str(p) for p in served.artifacts] if served.artifacts else None,
    }
    spans = getattr(served, "spans", ())
    if spans:
        doc["spans"] = [s.to_dict() for s in spans]
    return doc


def error_document(
    code: str, message: str, *, retry_after_s: Optional[float] = None
) -> Dict[str, Any]:
    """Error document; ``code`` must be one of :data:`ERROR_CODES`."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}; choose from {sorted(ERROR_CODES)}")
    return {
        "schema": SERVICE_SCHEMA,
        "ok": False,
        "error": code,
        "message": message,
        "retry_after_s": retry_after_s,
    }
