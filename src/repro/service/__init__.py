"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

Every other entry point in this repository launches a fresh process per
prediction; this package keeps one process resident and turns simulation
into a queryable service (the serving shape the ROADMAP asks for):

* :mod:`~repro.service.protocol` — the JSON wire format: request/response
  documents, error codes, and the schema tag;
* :mod:`~repro.service.core` — :class:`SimulationService`, the
  transport-agnostic heart: a bounded worker pool with single-flight
  coalescing of identical in-flight specs, shared-:class:`ResultCache`
  reuse, admission control (queue-depth limit → retriable rejection with a
  retry-after hint), per-request deadlines wired into the stall-watchdog
  machinery, and graceful draining;
* :mod:`~repro.service.server` — the stdlib ``http.server`` front end
  (``repro serve``), including the SIGTERM drain protocol;
* :mod:`~repro.service.client` — the stdlib ``http.client`` consumer
  (``repro client``) plus :func:`sweep_via_service` for fanning a sweep
  out over a running daemon.

No dependency beyond the standard library is introduced: transport is
``http.server`` / ``http.client``, payloads are JSON.
"""

from .client import ServiceClient, sweep_via_service  # noqa: F401
from .core import (  # noqa: F401
    ServedResult,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceStats,
    ServiceTimeout,
    SimulationService,
)
from .protocol import (  # noqa: F401
    ERROR_CODES,
    SERVICE_SCHEMA,
    RunRequest,
    error_document,
    response_document,
)
from .server import ReproServer, serve  # noqa: F401

__all__ = [
    "SERVICE_SCHEMA",
    "ERROR_CODES",
    "RunRequest",
    "error_document",
    "response_document",
    "SimulationService",
    "ServedResult",
    "ServiceStats",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceClosed",
    "ReproServer",
    "serve",
    "ServiceClient",
    "sweep_via_service",
]
