"""Simulation-as-a-service: daemon, client, sharded fleet, load generator.

Every other entry point in this repository launches a fresh process per
prediction; this package keeps processes resident and turns simulation into
a queryable, scalable service (the serving shape the ROADMAP asks for):

* :mod:`~repro.service.protocol` — the JSON wire format: request/response
  documents, error codes, and the schema tag;
* :mod:`~repro.service.core` — :class:`SimulationService`, the
  transport-agnostic heart: a bounded worker pool with single-flight
  coalescing of identical in-flight specs, shared-:class:`ResultCache`
  reuse, admission control (queue-depth limit → retriable rejection with a
  retry-after hint), per-request deadlines wired into the stall-watchdog
  machinery, and graceful draining;
* :mod:`~repro.service.server` — the stdlib ``http.server`` front end
  (``repro serve``), including the SIGTERM drain protocol and the shared
  :class:`HttpFront` lifecycle the router reuses;
* :mod:`~repro.service.client` — the stdlib ``http.client`` consumer
  (``repro client``) plus :func:`sweep_via_service` for fanning a sweep
  out over a running daemon;
* :mod:`~repro.service.ring` — :class:`HashRing`, the stable
  consistent-hash map from ``cache_key`` to shard;
* :mod:`~repro.service.router` — :class:`RouterService` /
  :class:`ReproRouter`, the fleet front end: key-affine forwarding,
  fleet-level admission control, shard mark-down with bounded retry to the
  rehash successor, batch fan-out, health/stats aggregation;
* :mod:`~repro.service.fleet` — the ``repro fleet`` supervisor: N shard
  daemons (each its own process over its own cache partition) behind one
  router, with whole-fleet SIGTERM drain;
* :mod:`~repro.service.loadgen` — the ``repro loadgen`` open/closed-loop
  load generator and its ``repro.loadgen/v2`` report.

Telemetry (from :mod:`repro.obs.telemetry`) threads through the whole
stack: every daemon serves Prometheus-text metrics on ``GET /metrics``
(the router aggregates its shards' pages under a ``shard`` label), an
``X-Repro-Trace-Id`` request header collects router/shard/run spans into
the response document, and ``--log-json`` writes structured JSON access
logs.  No dependency beyond the standard library is introduced: transport
is ``http.server`` / ``http.client``, payloads are JSON.
"""

from .client import (  # noqa: F401
    CLIENT_SWEEP_SCHEMA,
    ServiceClient,
    client_sweep_document,
    http_json_request,
    http_text_request,
    sweep_via_service,
    write_client_sweep,
)
from .core import (  # noqa: F401
    ServedResult,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceStats,
    ServiceTimeout,
    ServiceUnavailable,
    SimulationService,
)
from .fleet import Fleet, FleetError, ShardProcess, run_fleet  # noqa: F401
from .loadgen import LOADGEN_SCHEMA, load_request_log, run_loadgen  # noqa: F401
from .protocol import (  # noqa: F401
    ERROR_CODES,
    SERVICE_SCHEMA,
    RunRequest,
    error_document,
    response_document,
)
from .ring import HashRing, NoLiveShard  # noqa: F401
from .router import ReproRouter, RouterService, ShardAddress  # noqa: F401
from .server import HttpFront, ReproServer, serve  # noqa: F401

__all__ = [
    "SERVICE_SCHEMA",
    "LOADGEN_SCHEMA",
    "ERROR_CODES",
    "RunRequest",
    "error_document",
    "response_document",
    "SimulationService",
    "ServedResult",
    "ServiceStats",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceClosed",
    "ServiceUnavailable",
    "HttpFront",
    "ReproServer",
    "serve",
    "ServiceClient",
    "CLIENT_SWEEP_SCHEMA",
    "client_sweep_document",
    "http_json_request",
    "http_text_request",
    "sweep_via_service",
    "write_client_sweep",
    "HashRing",
    "NoLiveShard",
    "RouterService",
    "ReproRouter",
    "ShardAddress",
    "Fleet",
    "FleetError",
    "ShardProcess",
    "run_fleet",
    "load_request_log",
    "run_loadgen",
]
