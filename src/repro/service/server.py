"""The stdlib HTTP front end of the simulation service (``repro serve``).

A :class:`ReproServer` pairs one :class:`~repro.service.core.SimulationService`
with a ``http.server.ThreadingHTTPServer``.  Endpoints:

* ``GET /v1/health`` — liveness plus drain state (load balancers / scripts);
* ``GET /v1/stats``  — the service counters as JSON;
* ``POST /v1/run``   — one request document → one response document;
* ``POST /v1/batch`` — ``{"requests": [...]}`` → ``{"responses": [...]}``,
  each element independently a success or error document (one overloaded
  point does not fail its siblings).

Service errors map onto transport statuses via
:data:`~repro.service.protocol.HTTP_STATUS` — notably 429 with a
``Retry-After`` header for backpressure and 503 while draining, so generic
HTTP clients back off correctly without understanding the body.

Graceful shutdown (the SIGTERM protocol): the signal flips the service into
draining (new work is refused with a retriable 503), a helper thread waits
for in-flight requests to finish and then stops the accept loop; the
``block_on_close`` join guarantees every handler thread has flushed its
response before the process exits.  The handler itself must not block — it
runs inside ``serve_forever`` and calling ``shutdown()`` there deadlocks.

The socket/lifecycle machinery lives in :class:`HttpFront` and the JSON
handler plumbing in :class:`JsonHttpHandler`, shared with the fleet router
(:mod:`~repro.service.router`): both daemons speak the same wire protocol
and honour the same drain choreography, they only differ in what a request
*does* (execute locally vs. forward to a shard).
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..obs.telemetry import (
    METRICS_CONTENT_TYPE,
    ServiceTelemetry,
    TraceContext,
    route_label,
)
from .core import ServiceError, SimulationService
from .protocol import HTTP_STATUS, SERVICE_SCHEMA, error_document, response_document

__all__ = ["HttpFront", "JsonHttpHandler", "ReproServer", "serve"]

_MAX_BODY = 16 * 1024 * 1024  # a request is a spec document, not a payload


class JsonHttpHandler(BaseHTTPRequestHandler):
    """JSON-document plumbing shared by the serve and router handlers.

    ``do_GET``/``do_POST`` are thin instrumentation wrappers: they pull the
    request's :class:`TraceContext` out of the headers, dispatch to the
    subclass hooks ``handle_GET``/``handle_POST``, and record the request
    (counter + latency histogram + access-log line) against the server's
    :class:`ServiceTelemetry` — when one is attached; without telemetry the
    wrapper cost is a single ``is not None`` check per request.
    """

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    _status: Optional[int] = None
    trace_ctx: Optional[TraceContext] = None

    # -- plumbing ----------------------------------------------------------
    @property
    def app(self) -> Any:
        return self.server.app  # type: ignore[attr-defined]

    @property
    def telemetry(self) -> Optional[ServiceTelemetry]:
        return getattr(self.server, "telemetry", None)

    def log_message(self, fmt: str, *args) -> None:
        # http.server lines (request lines, handler tracebacks) go to the
        # structured access log when one is configured — no more blanket
        # suppression — and otherwise to the plain serve log, if any.
        tel = self.telemetry
        if tel is not None and tel.server_log(fmt % args, client=self.address_string()):
            return
        log = getattr(self.server, "log", None)  # type: ignore[attr-defined]
        if log is not None:
            log(f"{self.address_string()} {fmt % args}")

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        tel = self.telemetry
        if tel is None:
            getattr(self, f"handle_{method}")()
            return
        self._status = None
        self._log_extra: Dict[str, Any] = {}
        self.trace_ctx = TraceContext.from_headers(self.headers)
        t0 = time.perf_counter()
        try:
            getattr(self, f"handle_{method}")()
        finally:
            if self._status is not None:
                tel.record_http(
                    route=route_label(self.path.partition("?")[0]),
                    method=method,
                    status=self._status,
                    latency_s=time.perf_counter() - t0,
                    trace_id=self.trace_ctx.trace_id if self.trace_ctx else None,
                    client=self.address_string(),
                    extra=self._log_extra,
                )

    def handle_GET(self) -> None:
        self._send_error_doc("bad_request", f"unknown path {self.path!r}")

    def handle_POST(self) -> None:
        self._send_error_doc("bad_request", f"unknown path {self.path!r}")

    def _send_json(
        self, status: int, doc: Dict[str, Any], *, retry_after_s: Optional[float] = None
    ) -> None:
        body = json.dumps(doc, sort_keys=True, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", f"{max(0.0, retry_after_s):.3f}")
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        if isinstance(doc, dict):
            # Disposition for the access-log line, read off the response
            # document itself so serve and router handlers need no bespoke
            # bookkeeping.
            extra = self.__dict__.setdefault("_log_extra", {})
            if "cached" in doc:
                extra["cache_hit"] = bool(doc["cached"])
            if "coalesced" in doc:
                extra["coalesced"] = bool(doc["coalesced"])
            if doc.get("ok") is False and doc.get("error"):
                extra["error"] = doc["error"]

    def _send_text(
        self, status: int, text: str, *, content_type: str = "text/plain; charset=utf-8"
    ) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_error_doc(self, code: str, message: str, retry_after_s=None) -> None:
        self._send_json(
            HTTP_STATUS[code],
            error_document(code, message, retry_after_s=retry_after_s),
            retry_after_s=retry_after_s,
        )

    def _send_metrics(self, telemetry_owner: Any) -> None:
        """``GET /metrics``: the exposition page, or 404-ish without telemetry."""
        tel = getattr(telemetry_owner, "telemetry", None)
        if tel is None:
            self._send_error_doc(
                "bad_request", "telemetry is not enabled on this daemon"
            )
            return
        if hasattr(telemetry_owner, "metrics_text"):
            text = telemetry_owner.metrics_text()
        else:
            text = tel.registry.render()
        self._send_text(200, text, content_type=METRICS_CONTENT_TYPE)

    def _read_document(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ValueError("request carries no body")
        if length > _MAX_BODY:
            raise ValueError(f"request body of {length} bytes exceeds {_MAX_BODY}")
        return json.loads(self.rfile.read(length).decode())


class _Handler(JsonHttpHandler):
    @property
    def service(self) -> SimulationService:
        return self.app

    # -- GET ---------------------------------------------------------------
    def handle_GET(self) -> None:
        if self.path == "/v1/health":
            draining = self.service.stats().draining
            self._send_json(
                503 if draining else 200,
                {
                    "schema": SERVICE_SCHEMA,
                    "ok": not draining,
                    "status": "draining" if draining else "serving",
                },
            )
        elif self.path == "/v1/stats":
            self._send_json(
                200, {"schema": SERVICE_SCHEMA, "ok": True, **self.service.stats().to_dict()}
            )
        elif self.path == "/metrics":
            self._send_metrics(self.service)
        else:
            self._send_error_doc("bad_request", f"unknown path {self.path!r}")

    # -- POST --------------------------------------------------------------
    def _serve_one(self, doc: Any) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """One request document → (status, response document, retry-after)."""
        try:
            served = self.service.submit_document(doc, trace=self.trace_ctx)
        except ValueError as exc:
            return HTTP_STATUS["bad_request"], error_document("bad_request", str(exc)), None
        except ServiceError as exc:
            return (
                HTTP_STATUS[exc.code],
                error_document(exc.code, str(exc), retry_after_s=exc.retry_after_s),
                exc.retry_after_s,
            )
        return 200, response_document(served), None

    def handle_POST(self) -> None:
        try:
            doc = self._read_document()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_error_doc("bad_request", f"unreadable request: {exc}")
            return
        if self.path == "/v1/run":
            status, out, retry_after = self._serve_one(doc)
            self._send_json(status, out, retry_after_s=retry_after)
        elif self.path == "/v1/batch":
            requests = doc.get("requests") if isinstance(doc, dict) else None
            if not isinstance(requests, list):
                self._send_error_doc("bad_request", "batch body needs a 'requests' list")
                return
            responses = [self._serve_one(item)[1] for item in requests]
            self._send_json(
                200,
                {"schema": SERVICE_SCHEMA, "ok": True, "responses": responses},
            )
        else:
            self._send_error_doc("bad_request", f"unknown path {self.path!r}")


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = False  # join handler threads on close: responses flush
    block_on_close = True
    allow_reuse_address = True


class HttpFront:
    """One app bound to one listening socket, with the drain protocol.

    The app is anything exposing ``drain(timeout_s)`` and ``close()`` —
    a :class:`SimulationService` here, a
    :class:`~repro.service.router.RouterService` in the fleet front end.
    ``port=0`` binds an ephemeral port; read it back from :attr:`address`.
    :meth:`start` runs the accept loop on a background thread,
    :meth:`serve_forever` runs it in the caller (the CLI path).
    """

    handler_class: type = JsonHttpHandler
    thread_name = "repro-http-accept"

    def __init__(
        self,
        app: Any,
        host: str = "127.0.0.1",
        port: int = 8425,
        *,
        log=None,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        self.app = app
        self.telemetry = telemetry
        self._httpd = _HTTPServer((host, port), self.handler_class)
        self._httpd.app = app  # type: ignore[attr-defined]
        self._httpd.log = log  # type: ignore[attr-defined]
        self._httpd.telemetry = telemetry  # type: ignore[attr-defined]
        self._log = log
        self._thread: Optional[threading.Thread] = None
        self._shutdown_started = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    # -- run ---------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the accept loop until :meth:`shutdown` (or a drain signal)."""
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._httpd.server_close()  # joins handler threads
            self.app.close()
            if self.telemetry is not None:
                self.telemetry.close()

    def start(self) -> "HttpFront":
        """Run the accept loop on a daemon thread (test harness path)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=self.thread_name, daemon=True
        )
        self._thread.start()
        return self

    # -- drain / stop ------------------------------------------------------
    def shutdown(self, *, drain_timeout_s: Optional[float] = None) -> None:
        """Drain in-flight work, then stop the accept loop.

        Safe from any thread *including* a signal handler running inside
        ``serve_forever``: the blocking part runs on a helper thread.
        Idempotent — later calls are no-ops.
        """
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()

        def _drain_then_stop() -> None:
            if self._log is not None:
                self._log("draining: refusing new work, waiting for in-flight runs")
            self.app.drain(drain_timeout_s)
            self._httpd.shutdown()

        threading.Thread(target=_drain_then_stop, name="repro-serve-drain").start()

    def wait_closed(self, timeout_s: Optional[float] = None) -> bool:
        """Join the background accept thread (only meaningful after start())."""
        if self._thread is None:
            return True
        self._thread.join(timeout_s)
        return not self._thread.is_alive()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain.  Main thread only."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda _sig, _frm: self.shutdown())


class ReproServer(HttpFront):
    """One :class:`SimulationService` behind the HTTP front end."""

    handler_class = _Handler
    thread_name = "repro-serve-accept"

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 8425,
        *,
        log=None,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        super().__init__(service, host, port, log=log, telemetry=telemetry)
        self.service = service


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8425,
    workers: int = 2,
    max_pending: int = 16,
    cache=None,
    probe_dir=None,
    default_timeout_s: Optional[float] = None,
    log=print,
    log_json=None,
    shard_id: Optional[str] = None,
) -> None:
    """Build a service + server, wire the signals, and serve until drained.

    This is the body of ``repro serve``; it returns only after a drain
    signal has been honoured (in-flight runs finished, socket closed).
    Once the socket is bound a machine-parseable readiness line —
    ``listening on <host>:<port>`` — is printed to **stdout** (always, even
    with logging suppressed): with ``--port 0`` this is the only place the
    chosen ephemeral port is announced, and scripts/fleet supervisors parse
    it instead of polling a hardcoded port.

    The daemon always carries a :class:`ServiceTelemetry` (metrics on
    ``GET /metrics``, trace headers honoured); ``log_json`` additionally
    routes per-request access-log lines — and the ``http.server`` lines the
    stdlib would otherwise print — to a JSON-lines file.  ``shard_id``
    names the telemetry component (``shard-<id>`` under a fleet,
    ``serve`` standalone) so merged traces attribute spans correctly.
    """
    component = f"shard-{shard_id}" if shard_id else "serve"
    telemetry = ServiceTelemetry(component, access_log=log_json)
    service = SimulationService(
        workers=workers,
        max_pending=max_pending,
        cache=cache,
        probe_dir=probe_dir,
        default_timeout_s=default_timeout_s,
        telemetry=telemetry,
    )
    server = ReproServer(service, host, port, log=log, telemetry=telemetry)
    server.install_signal_handlers()
    bound_host, bound_port = server.address
    print(f"listening on {bound_host}:{bound_port}", flush=True)
    if log is not None:
        log(
            f"repro serve: listening on http://{bound_host}:{bound_port} "
            f"(workers={workers}, max_pending={max_pending}"
            + (f", cache={cache}" if cache is not None else "")
            + ") — SIGTERM drains gracefully"
        )
    server.serve_forever()
    if log is not None:
        log("repro serve: drained and stopped")
