"""Load generator for a live service or fleet (``repro loadgen``).

Replays a trace of request documents — a spec grid built on the command
line, or a recorded request log — against one HTTP endpoint (a ``repro
serve`` daemon or a ``repro fleet`` router; both speak the same protocol)
and measures what the *client* experiences: throughput, latency quantiles,
backpressure rate, and (against a router) how evenly the keyspace spread
across the shards.

Two driving disciplines, the classic pair:

* **closed loop** (``concurrency`` workers, back-to-back): each worker
  issues its next request the moment the previous one finishes — load
  self-limits to what the service can absorb, which measures *capacity*.
* **open loop** (``rate`` requests/second): arrivals follow a fixed
  schedule regardless of completions — the honest way to measure latency
  under a target load, since a slow service cannot slow the arrival of new
  work.  When the service falls behind, the schedule lag is reported
  (``max_schedule_lag_s``) rather than silently absorbed, so coordinated
  omission is visible in the report.

Each request is retried on *retriable* rejections (429/503/504) with the
server's own ``Retry-After`` hint, exactly like :class:`ServiceClient`;
every 429 observation is still counted, so the report separates "the
service pushed back and the client rode it out" (``observed_429``) from
"the request ultimately failed" (``failed``).  The JSON report is tagged
``repro.loadgen/v2`` (schema documented in ``docs/API.md``; v2 extends v1
with the server-side view: ``GET /metrics`` is scraped before and after
the run, histogram-derived percentiles land in ``server_histogram``, and
``skew_p99_s`` records how much of the client-observed tail the server
never saw — queueing, transport, and retry time).
"""

from __future__ import annotations

import itertools
import json
import math
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.perfetto import loads_trace_event, service_trace_event_document
from ..obs.telemetry import (
    TRACE_HEADER,
    Exposition,
    histogram_quantile,
    new_trace_id,
    parse_exposition,
)
from .client import CLIENT_SWEEP_SCHEMA, http_json_request, http_text_request
from .protocol import ERROR_CODES, SERVICE_SCHEMA, RunRequest

__all__ = ["LOADGEN_SCHEMA", "load_request_log", "percentile", "run_loadgen", "summarize"]

#: Schema tag of the loadgen report document.
LOADGEN_SCHEMA = "repro.loadgen/v2"


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of pre-sorted values."""
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def load_request_log(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a recorded request log: a JSON list of request documents.

    Accepts three shapes: a bare list of ``repro.service/v1`` request
    documents, ``{"requests": [...]}`` (the ``/v1/batch`` body), or a
    ``repro.client_sweep/v1`` responses file (``repro client
    --metrics-out``) whose per-response ``spec`` entries are replayed.
    Every document is validated before the run starts — a malformed trace
    fails fast, not ten seconds into the measurement.

    Client-sweep files can legitimately contain error documents with no
    usable ``spec`` (``sweep_via_service`` records failures in-slot, and
    hand-trimmed logs drop fields): those entries are skipped with a
    warning counting them, and only a file with *no* replayable entry is an
    error.
    """
    import warnings

    doc = json.loads(Path(path).read_text())
    if isinstance(doc, dict) and doc.get("schema") == CLIENT_SWEEP_SCHEMA:
        responses = doc.get("responses")
        if not isinstance(responses, list):
            raise ValueError(f"{path}: client_sweep file without a responses list")
        raw = []
        dropped = 0
        for r in responses:
            spec = r.get("spec") if isinstance(r, dict) else None
            if isinstance(spec, dict):
                raw.append({"schema": SERVICE_SCHEMA, "spec": spec})
            else:
                dropped += 1
        if dropped:
            if not raw:
                raise ValueError(
                    f"{path}: none of the {dropped} client_sweep responses "
                    "carries a replayable spec"
                )
            warnings.warn(
                f"{path}: skipped {dropped} of {len(responses)} client_sweep "
                "responses without a replayable spec (error documents?)",
                stacklevel=2,
            )
    elif isinstance(doc, dict) and isinstance(doc.get("requests"), list):
        raw = doc["requests"]
    elif isinstance(doc, list):
        raw = doc
    else:
        raise ValueError(
            f"{path}: expected a list of request documents, a batch body, "
            "or a repro.client_sweep/v1 file"
        )
    if not raw:
        raise ValueError(f"{path}: the request log is empty")
    return [RunRequest.from_document(item).to_document() for item in raw]


class _Recorder:
    """Thread-safe accumulation of per-request outcomes."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: List[float] = []
        self.statuses: Counter = Counter()
        self.observed_429 = 0
        self.retries = 0
        self.transport_errors = 0
        self.max_schedule_lag_s = 0.0

    def record(
        self,
        latency_s: float,
        outcome: str,
        *,
        n_429: int,
        retries: int,
        transport_errors: int,
        schedule_lag_s: float = 0.0,
    ) -> None:
        with self.lock:
            self.latencies.append(latency_s)
            self.statuses[outcome] += 1
            self.observed_429 += n_429
            self.retries += retries
            self.transport_errors += transport_errors
            self.max_schedule_lag_s = max(self.max_schedule_lag_s, schedule_lag_s)


def _issue_one(
    host: str,
    port: int,
    doc: Dict[str, Any],
    *,
    timeout_s: Optional[float],
    max_retries: int,
    backoff_s: float,
    sleep: Callable[[float], None],
) -> Tuple[float, str, int, int, int]:
    """One logical request with retriable back-off.

    Returns ``(latency_s, outcome, n_429, retries, transport_errors)`` where
    ``outcome`` is ``"ok"`` or the final error code.  Transport failures are
    retried like 503s: against a fleet they mean a shard died mid-failover
    or the router is restarting, both of which heal.
    """
    sock_timeout = 10.0 + (timeout_s if timeout_s else 0.0) + 5.0
    t0 = time.perf_counter()
    n_429 = retries = transport_errors = 0
    attempt = 0
    while True:
        outcome = "failed"
        retry_after: Optional[float] = None
        retriable = False
        try:
            status, out = http_json_request(
                host, port, "POST", "/v1/run", doc, timeout_s=sock_timeout
            )
            if status < 400 and out.get("ok", False):
                return time.perf_counter() - t0, "ok", n_429, retries, transport_errors
            outcome = out.get("error", "failed")
            if status == 429:
                n_429 += 1
            retriable = bool(ERROR_CODES.get(outcome, {}).get("retriable", False))
            retry_after = out.get("retry_after_s")
        except OSError:
            transport_errors += 1
            outcome = "transport"
            retriable = True
        if not retriable or attempt >= max_retries:
            return time.perf_counter() - t0, outcome, n_429, retries, transport_errors
        pause = retry_after if retry_after is not None else min(2.0, backoff_s * (2**attempt))
        sleep(max(0.0, float(pause)))
        retries += 1
        attempt += 1


def _per_shard_delta(before: Any, after: Any) -> Optional[Dict[str, Any]]:
    """Router-side routed-count delta per shard → balance report, or None."""
    if not (isinstance(before, dict) and isinstance(after, dict)):
        return None
    b, a = before.get("per_shard"), after.get("per_shard")
    if not (isinstance(b, dict) and isinstance(a, dict)):
        return None  # a plain serve daemon: no shard breakdown to report
    deltas = {
        sid: int(a[sid].get("routed", 0)) - int(b.get(sid, {}).get("routed", 0))
        for sid in a
    }
    total = sum(deltas.values())
    return {
        sid: {
            "requests": n,
            "fraction": round(n / total, 4) if total else 0.0,
        }
        for sid, n in sorted(deltas.items())
    }


def run_loadgen(
    host: str,
    port: int,
    docs: Sequence[Dict[str, Any]],
    *,
    loop: str = "open",
    duration_s: float = 10.0,
    rate: Optional[float] = None,
    concurrency: Optional[int] = None,
    timeout_s: Optional[float] = None,
    max_retries: int = 5,
    backoff_s: float = 0.05,
    label: str = "",
    sleep: Callable[[float], None] = time.sleep,
    progress: Optional[Callable[[str], None]] = None,
    trace_out: Union[str, Path, None] = None,
) -> Dict[str, Any]:
    """Drive the endpoint for ``duration_s``; return the report document.

    ``docs`` is the request trace, cycled round-robin.  ``loop="open"``
    needs ``rate`` (requests/second; ``concurrency`` then sizes the issuing
    pool, default enough to cover rate × a 2 s stall).  ``loop="closed"``
    needs ``concurrency`` (default 4) and ignores ``rate``.

    ``GET /metrics`` is scraped before and after the measured window (best
    effort — a pre-telemetry daemon just reports ``server_histogram:
    null``); the delta between the two snapshots yields the server-side
    latency percentiles and the ``repro_requests_total`` delta the CI lane
    cross-checks against the client-side count.  ``trace_out`` additionally
    issues one *traced* request — before the first scrape, so it never
    perturbs the deltas — and writes its spans as a validated Perfetto
    trace-event file.
    """
    from concurrent.futures import ThreadPoolExecutor, wait

    if not docs:
        raise ValueError("loadgen needs at least one request document")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if loop not in ("open", "closed"):
        raise ValueError(f"unknown loop discipline {loop!r}; choose open/closed")
    if loop == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop load needs a positive rate")
    if concurrency is not None and concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    if loop == "open":
        workers = concurrency if concurrency is not None else min(128, max(8, int(rate * 2)))
    else:
        workers = concurrency if concurrency is not None else 4

    recorder = _Recorder()
    request_trace = (
        _issue_traced(host, port, docs[0], trace_out, timeout_s)
        if trace_out is not None
        else None
    )
    metrics_before = _scrape_metrics(host, port)
    _, stats_before = _try_stats(host, port)
    trace = itertools.cycle(docs)
    t_start = time.perf_counter()
    t_end = t_start + duration_s

    if loop == "open":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = []
            i = 0
            while True:
                scheduled = t_start + i / rate
                now = time.perf_counter()
                if scheduled >= t_end:
                    break
                if scheduled > now:
                    sleep(scheduled - now)
                lag = max(0.0, time.perf_counter() - scheduled)
                futures.append(
                    pool.submit(_issue_scheduled, host, port, next(trace), lag, recorder,
                                timeout_s, max_retries, backoff_s, sleep)
                )
                i += 1
                if progress is not None and i % max(1, int(rate)) == 0:
                    progress(f"loadgen: {i} issued, {len(recorder.latencies)} done")
            wait(futures)
    else:

        def closed_worker() -> None:
            while time.perf_counter() < t_end:
                with recorder.lock:
                    doc = next(trace)
                result = _issue_one(
                    host, port, doc, timeout_s=timeout_s,
                    max_retries=max_retries, backoff_s=backoff_s, sleep=sleep,
                )
                recorder.record(
                    result[0],
                    result[1],
                    n_429=result[2],
                    retries=result[3],
                    transport_errors=result[4],
                )

        threads = [
            threading.Thread(target=closed_worker, name=f"repro-loadgen-{w}")
            for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    wall_s = time.perf_counter() - t_start
    _, stats_after = _try_stats(host, port)
    # The server bumps its request counter *after* the response bytes go
    # out, so the last responses we received may not be counted yet when we
    # scrape.  Poll briefly until the delta catches up with the attempts we
    # know we issued (requests + retries − transport errors); an overshoot
    # is left for the caller's invariant checks to flag.
    expected_delta = len(recorder.latencies) + recorder.retries - recorder.transport_errors
    deadline = time.monotonic() + 5.0
    while True:
        metrics_after = _scrape_metrics(host, port)
        server_histogram, server_requests_delta = _server_view(metrics_before, metrics_after)
        if metrics_before is None or metrics_after is None:
            break
        if server_requests_delta is None or server_requests_delta >= expected_delta:
            break
        if time.monotonic() >= deadline:
            break
        sleep(0.02)

    latencies = sorted(recorder.latencies)
    n = len(latencies)
    n_ok = recorder.statuses.get("ok", 0)
    n_failed = n - n_ok
    report: Dict[str, Any] = {
        "schema": LOADGEN_SCHEMA,
        "label": label,
        "target": f"{host}:{port}",
        "loop": loop,
        "rate_target": rate,
        "concurrency": workers,
        "duration_s": round(wall_s, 3),
        "trace_size": len(docs),
        "requests": n,
        "ok": n_ok,
        "failed": n_failed,
        "error_rate": round(n_failed / n, 6) if n else None,
        "status_counts": dict(sorted(recorder.statuses.items())),
        "observed_429": recorder.observed_429,
        "rate_429": round(recorder.observed_429 / n, 6) if n else None,
        "retries": recorder.retries,
        "transport_errors": recorder.transport_errors,
        "achieved_rps": round(n / wall_s, 3) if wall_s > 0 else None,
        "max_schedule_lag_s": round(recorder.max_schedule_lag_s, 6),
        "latency_s": None
        if not latencies
        else {
            "mean": round(sum(latencies) / n, 6),
            "p50": round(percentile(latencies, 0.50), 6),
            "p95": round(percentile(latencies, 0.95), 6),
            "p99": round(percentile(latencies, 0.99), 6),
            "max": round(latencies[-1], 6),
        },
        "per_shard": _per_shard_delta(stats_before, stats_after),
        # The router's own keyspace-balance diagnostic (marked-down shards
        # excluded), so a degraded run records the distribution it measured.
        "ring_balance": stats_after.get("ring")
        if isinstance(stats_after, dict)
        else None,
        "server_histogram": server_histogram,
        "server_requests_delta": server_requests_delta,
        "request_trace": request_trace,
    }
    lat = report["latency_s"]
    report["skew_p99_s"] = (
        round(lat["p99"] - server_histogram["p99"], 6)
        if lat and server_histogram and server_histogram.get("p99") is not None
        else None
    )
    return report


def _issue_scheduled(
    host: str,
    port: int,
    doc: Dict[str, Any],
    schedule_lag_s: float,
    recorder: _Recorder,
    timeout_s: Optional[float],
    max_retries: int,
    backoff_s: float,
    sleep: Callable[[float], None],
) -> None:
    result = _issue_one(
        host, port, doc, timeout_s=timeout_s,
        max_retries=max_retries, backoff_s=backoff_s, sleep=sleep,
    )
    recorder.record(
        result[0], result[1], n_429=result[2], retries=result[3],
        transport_errors=result[4], schedule_lag_s=schedule_lag_s,
    )


def _try_stats(host: str, port: int) -> Tuple[int, Optional[Dict[str, Any]]]:
    """Best-effort ``/v1/stats`` snapshot (None when unreachable)."""
    try:
        return http_json_request(host, port, "GET", "/v1/stats", timeout_s=10.0)
    except Exception:
        return 0, None


def _scrape_metrics(host: str, port: int) -> Optional[Exposition]:
    """Best-effort strict-parsed ``GET /metrics`` snapshot (None on any miss)."""
    try:
        status, text = http_text_request(host, port, "GET", "/metrics", timeout_s=10.0)
        if status != 200:
            return None
        return parse_exposition(text)
    except Exception:
        return None


# Server-side view of the measured window: only the target's own /v1/run
# series (``without shard`` drops the per-shard copies a router re-labels
# into its page — counting those too would double every request).
_RUN_FILTER = {"labels": {"route": "/v1/run"}, "without": ("shard",)}


def _server_view(
    before: Optional[Exposition], after: Optional[Exposition]
) -> Tuple[Optional[Dict[str, Any]], Optional[int]]:
    """Histogram + request-counter deltas between two ``/metrics`` scrapes.

    Returns ``(server_histogram, server_requests_delta)``.  Cumulative
    Prometheus series subtract cleanly, so the delta is exactly the
    requests the server completed during the measured window; a missing
    *before* scrape degrades to since-process-start totals rather than
    nothing (the counters start at zero with the daemon).
    """
    if after is None:
        return None, None
    hist_after = after.histogram("repro_request_latency_seconds", **_RUN_FILTER)
    if hist_after is None:
        return None, None
    hist_before = (
        before.histogram("repro_request_latency_seconds", **_RUN_FILTER)
        if before is not None
        else None
    )
    buckets = {
        le: cum - (hist_before["buckets"].get(le, 0.0) if hist_before else 0.0)
        for le, cum in hist_after["buckets"].items()
    }
    count = int(buckets.get(math.inf, 0.0))
    histogram = {
        "count": count,
        "sum_s": round(
            hist_after["sum"] - (hist_before["sum"] if hist_before else 0.0), 6
        ),
    }
    for name, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
        quantile = histogram_quantile(buckets, q) if count > 0 else None
        histogram[name] = round(quantile, 6) if quantile is not None else None
    requests_after = after.total("repro_requests_total", **_RUN_FILTER)
    requests_before = (
        before.total("repro_requests_total", **_RUN_FILTER) if before is not None else 0.0
    )
    return histogram, int(requests_after - requests_before)


def _issue_traced(
    host: str,
    port: int,
    doc: Dict[str, Any],
    out_path: Union[str, Path],
    timeout_s: Optional[float],
) -> Dict[str, Any]:
    """One traced request → a validated Perfetto trace-event file.

    Issued *before* the pre-run metrics scrape so the extra request sits in
    the "before" snapshot and cancels out of every delta.  Failures degrade
    into an ``{"ok": false, "reason": ...}`` stanza — a load run against a
    pre-telemetry daemon still measures, it just cannot trace.
    """
    trace_id = new_trace_id()
    sock_timeout = 10.0 + (timeout_s if timeout_s else 0.0) + 5.0
    try:
        status, out = http_json_request(
            host, port, "POST", "/v1/run", doc,
            timeout_s=sock_timeout, headers={TRACE_HEADER: trace_id},
        )
    except OSError as exc:
        return {"ok": False, "trace_id": trace_id, "reason": f"transport: {exc}"}
    if status >= 400 or not isinstance(out, dict) or not out.get("ok", False):
        return {"ok": False, "trace_id": trace_id, "reason": f"request failed ({status})"}
    spans = out.get("spans")
    if not spans:
        return {
            "ok": False,
            "trace_id": trace_id,
            "reason": "response carries no spans (telemetry disabled on the target?)",
        }
    trace_doc = service_trace_event_document(spans)
    text = json.dumps(trace_doc, sort_keys=True)
    loads_trace_event(text)  # the file must round-trip its own validator
    path = Path(out_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    return {"ok": True, "trace_id": trace_id, "path": str(path), "spans": len(spans)}


def summarize(report: Dict[str, Any]) -> str:
    """Human one-screen rendering of a loadgen report."""
    lines = [
        f"loadgen [{report['loop']}] against {report['target']}"
        + (f" rate={report['rate_target']}/s" if report.get("rate_target") else "")
        + f" concurrency={report['concurrency']} duration={report['duration_s']}s",
        f"  requests {report['requests']}  ok {report['ok']}  "
        f"failed {report['failed']}  achieved {report['achieved_rps']}/s",
        f"  backpressure: {report['observed_429']} x 429 "
        f"({report['rate_429']}), {report['retries']} retries, "
        f"{report['transport_errors']} transport errors",
    ]
    lat = report.get("latency_s")
    if lat:
        lines.append(
            f"  latency p50 {lat['p50'] * 1000:.1f}ms  p95 {lat['p95'] * 1000:.1f}ms  "
            f"p99 {lat['p99'] * 1000:.1f}ms  max {lat['max'] * 1000:.1f}ms"
        )
    server = report.get("server_histogram")
    if server:
        parts = [
            f"{name} {server[name] * 1000:.1f}ms"
            for name in ("p50", "p90", "p99")
            if server.get(name) is not None
        ]
        skew = report.get("skew_p99_s")
        lines.append(
            f"  server ({server['count']} reqs): " + "  ".join(parts)
            + (f"  client-skew p99 {skew * 1000:+.1f}ms" if skew is not None else "")
        )
    shards = report.get("per_shard")
    if shards:
        split = "  ".join(
            f"shard {sid}: {v['requests']} ({v['fraction'] * 100:.1f}%)"
            for sid, v in shards.items()
        )
        lines.append(f"  balance: {split}")
    trace = report.get("request_trace")
    if trace:
        lines.append(
            f"  trace {trace['trace_id'][:12]}…: "
            + (f"{trace['spans']} spans → {trace['path']}"
               if trace.get("ok")
               else f"not captured ({trace.get('reason')})")
        )
    return "\n".join(lines)
