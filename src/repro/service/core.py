"""The transport-agnostic simulation service.

:class:`SimulationService` is the heart of ``repro serve``, deliberately
separated from HTTP so tests can drive every concurrency edge (coalescing,
backpressure, deadlines, draining) deterministically with an injected
``run_fn`` and plain threads.

Request lifecycle::

    submit(RunRequest)
      │ closed/draining?  ──► ServiceClosed        (retriable: elsewhere)
      │ identical spec already in flight?
      │    yes ──► join that flight (coalesced=True, no new work queued)
      │    no  ──► pending full? ──► ServiceOverloaded(retry_after_s)
      │            else create flight, hand it to the bounded worker pool
      ▼
    wait for the flight (bounded by the request deadline)
      │ deadline passed ──► ServiceTimeout — the run keeps going and still
      │                     publishes to the cache, so retries tend to hit
      ▼
    ServedResult(result, coalesced, queue_wait_s, artifacts)

Single-flight keys on ``(spec.cache_key(), timeline)``: two requests for the
same content-addressed spec share one execution, and the shared
:class:`~repro.runner.cache.ResultCache` extends that de-duplication across
service restarts and across concurrent sweep processes.  A ``timeline``
request never coalesces onto a plain one (it must execute under a probe),
and vice versa.

Per-request deadlines reuse the existing watchdog machinery rather than
inventing a second timeout system: a threaded-runtime spec with no explicit
``stall_timeout`` inherits the request deadline as its stall budget (the
stall fields are normalised out of the cache key, so this never splits
cache entries).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..obs.telemetry import ServiceTelemetry, Span, TraceContext, new_span_id
from ..runner.cache import ResultCache
from ..runner.runner import RunResult, run_cached
from .protocol import RunRequest

__all__ = [
    "ServedResult",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceClosed",
    "ServiceUnavailable",
    "ServiceStats",
    "SimulationService",
]


class ServiceError(Exception):
    """Base of every service-level failure; maps onto a protocol error code."""

    code = "failed"
    retriable = False

    def __init__(self, message: str, *, retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceOverloaded(ServiceError):
    """Admission control rejected the request: the pending queue is full.

    Nothing was started — re-sending after ``retry_after_s`` is always safe.
    """

    code = "overloaded"
    retriable = True


class ServiceTimeout(ServiceError):
    """The request deadline passed while its flight was still executing.

    The flight is *not* cancelled: it finishes server-side and publishes to
    the shared cache, so an identical retry typically hits.
    """

    code = "timeout"
    retriable = True


class ServiceClosed(ServiceError):
    """The service is draining (or closed) and admits no new work."""

    code = "draining"
    retriable = True


class ServiceUnavailable(ServiceError):
    """No shard that could serve the request is reachable (fleet router).

    Retriable: mark-down is temporary — downed shards are re-probed and the
    ring reroutes around them, so a later attempt typically lands.
    """

    code = "unavailable"
    retriable = True


@dataclass(frozen=True)
class ServedResult:
    """One request's outcome: the run result plus serving-side accounting.

    ``spans`` is non-empty only for traced requests against a telemetry-
    enabled service: the admission/wait/run/cache-lookup span records bound
    to the request's trace id, ready for the response document.
    """

    result: RunResult
    coalesced: bool
    queue_wait_s: float
    artifacts: Tuple[Path, ...] = ()
    spans: Tuple[Span, ...] = ()


@dataclass
class ServiceStats:
    """Monotonic counters plus a point-in-time load snapshot."""

    requests: int = 0
    executed: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    rejected_overload: int = 0
    rejected_closed: int = 0
    timeouts: int = 0
    failures: int = 0
    # snapshot fields, refreshed by SimulationService.stats()
    in_flight: int = 0
    max_pending: int = 0
    workers: int = 0
    draining: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


class _Flight:
    """One in-flight execution that any number of requests may join.

    ``traced`` is set when the *creating* request carried a trace context;
    the executor then records its spans into ``spans`` (unbound — each
    joining requester binds copies to its own trace id).  Only the executor
    thread writes ``spans``, and readers wait on ``done`` first.
    """

    __slots__ = ("done", "result", "artifacts", "error", "started_at", "spans", "traced")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[RunResult] = None
        self.artifacts: Tuple[Path, ...] = ()
        self.error: Optional[BaseException] = None
        self.started_at = time.perf_counter()
        self.spans: list = []
        self.traced = False


#: An injectable execution function: request → result (+ artifact paths).
RunFn = Callable[[RunRequest], Union[RunResult, Tuple[RunResult, Any]]]


class SimulationService:
    """Bounded, coalescing, cache-backed executor of :class:`RunRequest`\\ s.

    ``workers`` sizes the thread pool actually executing runs;
    ``max_pending`` bounds how many *distinct* flights may be admitted but
    unfinished (joining an existing flight is always free — coalesced
    requests add no load).  ``cache`` (a :class:`ResultCache`, a directory,
    or ``None``) is shared across every flight; ``probe_dir`` enables
    ``timeline=True`` requests to export their artifact set there.

    ``run_fn`` overrides the execution function for tests; it receives the
    (deadline-adjusted) request and returns a :class:`RunResult`, optionally
    paired with a sequence of artifact paths.

    ``telemetry`` (a :class:`~repro.obs.telemetry.ServiceTelemetry`) turns
    on metrics and span recording; ``None`` keeps the PR4 probe discipline —
    every telemetry hook in the request path is one ``is not None`` check.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        max_pending: int = 16,
        cache: Union[ResultCache, str, Path, None] = None,
        probe_dir: Union[str, Path, None] = None,
        default_timeout_s: Optional[float] = None,
        run_fn: Optional[RunFn] = None,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.workers = workers
        self.max_pending = max_pending
        self.cache = cache
        self.probe_dir = Path(probe_dir) if probe_dir is not None else None
        self.default_timeout_s = default_timeout_s
        self._run_fn: RunFn = run_fn if run_fn is not None else self._default_run
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._flights: Dict[Tuple[str, bool], _Flight] = {}
        self._draining = False
        self._closed = False
        self._stats = ServiceStats()
        self._recent_wall: deque = deque(maxlen=32)
        self._telemetry = telemetry
        # Executor-thread span sink: _execute points it at the flight's span
        # list so _default_run can record the cache-lookup span without the
        # request plumbing knowing about probes.
        self._span_sink = threading.local()

    @property
    def telemetry(self) -> Optional[ServiceTelemetry]:
        return self._telemetry

    # -- execution ---------------------------------------------------------
    def _default_run(self, request: RunRequest) -> Tuple[RunResult, Tuple[Path, ...]]:
        sink = getattr(self._span_sink, "sink", None)
        if sink is not None and self.cache is not None and not request.timeline:
            # Traced request: time the cache probe explicitly.  run_cached
            # repeats the get(); a content-addressed read-mostly cache makes
            # the double lookup cheap, and only traced requests pay it.
            t_wall, t0 = time.time(), time.perf_counter()
            hit = self.cache.get(request.spec.cache_key())
            sink.append(
                Span(
                    name="shard.cache_lookup",
                    component=self._telemetry.component,
                    start_s=t_wall,
                    duration_s=time.perf_counter() - t0,
                    span_id=new_span_id(),
                    parent_id=getattr(self._span_sink, "parent", None),
                    attrs={"hit": hit is not None},
                )
            )
        if request.timeline and self.probe_dir is not None:
            from ..obs.probe import RecordingProbe
            from ..obs.timeline import export_timeline

            probe = RecordingProbe()
            result = run_cached(request.spec, self.cache, probe=probe)
            arts = export_timeline(
                str(self.probe_dir),
                result.load_trace(),
                probe,
                metrics=result.metrics,
                prefix=result.key[:16],
            )
            return result, tuple(arts.paths())
        return run_cached(request.spec, self.cache), ()

    def _with_deadline(self, request: RunRequest) -> Tuple[RunRequest, Optional[float]]:
        """Resolve the effective deadline and push it into the spec's watchdog.

        A threaded spec with no explicit stall budget inherits the request
        deadline, so a wedged replay trips
        :class:`~repro.core.watchdog.RuntimeStallError` server-side instead
        of holding a pool slot until the client gives up.  Stall fields are
        normalised out of ``cache_key``, so the flight key is unchanged.
        """
        timeout_s = (
            request.timeout_s if request.timeout_s is not None else self.default_timeout_s
        )
        spec = request.spec
        if (
            timeout_s is not None
            and spec.runtime == "threaded"
            and spec.stall_timeout is None
        ):
            request = replace(request, spec=replace(spec, stall_timeout=timeout_s))
        return request, timeout_s

    def _execute(
        self, flight: _Flight, request: RunRequest, key: Tuple[str, bool]
    ) -> None:
        t0 = time.perf_counter()
        tel = self._telemetry
        traced = tel is not None and flight.traced
        run_span_id: Optional[str] = None
        if traced:
            run_span_id = new_span_id()
            t_wall = time.time()
            self._span_sink.sink = flight.spans
            self._span_sink.parent = run_span_id
        try:
            out = self._run_fn(request)
            if isinstance(out, tuple):
                result, artifacts = out
            else:
                result, artifacts = out, ()
            result.metrics.stamp(
                "service",
                exec_wall_s=time.perf_counter() - t0,
                queue_wait_s=t0 - flight.started_at,
            )
            flight.result = result
            flight.artifacts = tuple(Path(p) for p in artifacts)
        except BaseException as exc:  # propagated to every waiter
            flight.error = exc
        finally:
            if traced:
                self._span_sink.sink = None
                attrs: Dict[str, Any] = {
                    "key": key[0][:16],
                    "timeline": key[1],
                    "queue_wait_s": round(max(0.0, t0 - flight.started_at), 6),
                }
                if flight.error is not None:
                    attrs["error"] = type(flight.error).__name__
                else:
                    attrs["cache_hit"] = bool(
                        flight.result is not None and flight.result.cached
                    )
                    if flight.artifacts:
                        # Links the traced request to the probe artifacts its
                        # run exported (timeline=true requests).
                        attrs["artifacts"] = [str(p) for p in flight.artifacts]
                flight.spans.append(
                    Span(
                        name="shard.run",
                        component=tel.component,
                        start_s=t_wall,
                        duration_s=time.perf_counter() - t0,
                        span_id=run_span_id,
                        attrs=attrs,
                    )
                )
            with self._lock:
                self._flights.pop(key, None)
                if flight.error is None:
                    self._stats.executed += 1
                    if flight.result is not None and flight.result.cached:
                        self._stats.cache_hits += 1
                    self._recent_wall.append(time.perf_counter() - flight.started_at)
                else:
                    self._stats.failures += 1
            if tel is not None:
                if flight.error is None:
                    tel.runs.inc(outcome="ok")
                    if flight.result is not None and flight.result.cached:
                        tel.cache_hits.inc()
                    tel.run_seconds.observe(time.perf_counter() - flight.started_at)
                else:
                    tel.runs.inc(outcome="error")
            flight.done.set()

    # -- admission ---------------------------------------------------------
    def _retry_after(self) -> float:
        """A retry hint: how long until a pool slot plausibly frees up."""
        wall = (
            sum(self._recent_wall) / len(self._recent_wall) if self._recent_wall else 0.25
        )
        backlog = max(1, len(self._flights) - self.workers + 1)
        return max(0.05, wall * backlog / max(1, self.workers))

    def submit(
        self, request: RunRequest, trace: Optional[TraceContext] = None
    ) -> ServedResult:
        """Serve one request, blocking until its flight completes.

        ``trace`` (requires telemetry) makes the request *traced*: span
        records for admission, the flight wait, the cache lookup, and the
        run itself come back on the :class:`ServedResult`, bound to the
        context's trace id.

        Raises :class:`ServiceClosed` while draining,
        :class:`ServiceOverloaded` when ``max_pending`` distinct flights are
        already admitted, :class:`ServiceTimeout` when the effective deadline
        passes first, and :class:`ServiceError` when the run itself fails.
        """
        tel = self._telemetry
        if tel is None:
            trace = None
        request, timeout_s = self._with_deadline(request)
        key = (request.spec.cache_key(), request.timeline)
        spans: Optional[list] = [] if trace is not None else None
        t_wall = time.time() if spans is not None else 0.0
        t_submit = time.perf_counter()
        with self._lock:
            self._stats.requests += 1
            if self._draining or self._closed:
                self._stats.rejected_closed += 1
                if tel is not None:
                    tel.rejected.inc(reason="draining")
                raise ServiceClosed(
                    "service is draining and admits no new work",
                    retry_after_s=self._retry_after(),
                )
            flight = self._flights.get(key)
            coalesced = flight is not None
            if coalesced:
                self._stats.coalesced += 1
                if tel is not None:
                    tel.coalesced.inc()
            else:
                if len(self._flights) >= self.max_pending:
                    self._stats.rejected_overload += 1
                    if tel is not None:
                        tel.rejected.inc(reason="overloaded")
                    raise ServiceOverloaded(
                        f"{len(self._flights)} flights pending "
                        f"(limit {self.max_pending}); retry later",
                        retry_after_s=self._retry_after(),
                    )
                flight = _Flight()
                if spans is not None:
                    flight.traced = True
                self._flights[key] = flight
                self._pool.submit(self._execute, flight, request, key)
        if spans is not None:
            spans.append(
                Span(
                    name="shard.admission",
                    component=tel.component,
                    start_s=t_wall,
                    duration_s=time.perf_counter() - t_submit,
                    span_id=new_span_id(),
                    attrs={"coalesced": coalesced},
                )
            )
            t_wait_wall, t_wait = time.time(), time.perf_counter()
        completed = flight.done.wait(timeout_s)
        if spans is not None:
            # The single-flight join: how long this requester waited on the
            # (possibly shared) execution.
            spans.append(
                Span(
                    name="shard.wait",
                    component=tel.component,
                    start_s=t_wait_wall,
                    duration_s=time.perf_counter() - t_wait,
                    span_id=new_span_id(),
                    attrs={"joined_flight": coalesced, "completed": completed},
                )
            )
        if not completed:
            with self._lock:
                self._stats.timeouts += 1
            if tel is not None:
                tel.rejected.inc(reason="timeout")
            raise ServiceTimeout(
                f"deadline of {timeout_s}s passed; the run continues server-side "
                "and will publish to the cache",
                retry_after_s=timeout_s,
            )
        if flight.error is not None:
            if isinstance(flight.error, ServiceError):
                raise flight.error
            raise ServiceError(
                f"run failed: {type(flight.error).__name__}: {flight.error}"
            ) from flight.error
        assert flight.result is not None
        queue_wait_s = (
            time.perf_counter() - t_submit
            if coalesced
            else max(0.0, flight.started_at - t_submit)
        )
        if tel is not None:
            tel.queue_wait.observe(queue_wait_s)
        out_spans: Tuple[Span, ...] = ()
        if spans is not None:
            spans.extend(flight.spans)
            out_spans = tuple(
                s.bound(trace.trace_id, trace.parent_span) for s in spans
            )
        return ServedResult(
            result=flight.result,
            coalesced=coalesced,
            queue_wait_s=queue_wait_s,
            artifacts=flight.artifacts,
            spans=out_spans,
        )

    def submit_document(
        self, doc: Any, trace: Optional[TraceContext] = None
    ) -> ServedResult:
        """Parse-and-serve convenience; ``ValueError`` on a malformed doc."""
        return self.submit(RunRequest.from_document(doc), trace=trace)

    # -- lifecycle ---------------------------------------------------------
    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admitting work; wait for in-flight requests to finish.

        Idempotent.  Returns ``True`` once every flight has completed
        (``False`` on a timeout — flights keep running regardless).
        """
        with self._lock:
            self._draining = True
            pending = list(self._flights.values())
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        for flight in pending:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            if not flight.done.wait(remaining):
                return False
        return True

    def close(self, timeout_s: Optional[float] = None) -> bool:
        """Drain, then shut the worker pool down.  Idempotent."""
        drained = self.drain(timeout_s)
        with self._lock:
            if self._closed:
                return drained
            self._closed = True
        self._pool.shutdown(wait=drained)
        return drained

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -----------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> ServiceStats:
        """A consistent copy of the counters with the load snapshot filled."""
        with self._lock:
            snap = ServiceStats(**self._stats.to_dict())
            snap.in_flight = len(self._flights)
            snap.max_pending = self.max_pending
            snap.workers = self.workers
            snap.draining = self._draining or self._closed
            return snap
