"""Consistent hashing: the key→shard map of the ``repro fleet`` router.

A :class:`HashRing` places ``vnodes`` virtual points per shard on a 64-bit
ring (BLAKE2b of ``"<shard>#<replica>"`` — a *stable* hash, deliberately not
Python's randomized ``hash()``) and routes a key to the first point at or
clockwise after the key's own hash.  Two properties fall out of this
construction and are what the fleet relies on:

* **Determinism.**  The ring is a pure function of its membership: any two
  processes that agree on the shard ids agree on every routing decision, so
  the router can be restarted (or rebuilt on another host) without remapping
  anything.
* **Minimal disruption.**  Excluding a shard (mark-down, or removing it
  outright) only remaps keys that shard owned — every other key's walk never
  encounters the excluded points.  Adding a shard symmetrically steals only
  ~1/N of the keyspace.  ``route(key, exclude={dead})`` is therefore exactly
  the "rehashed successor" a router needs for failover retry: identical to
  the normal answer unless the dead shard owned the key.

Virtual nodes keep the partition sizes balanced: with ``vnodes=64`` the
per-shard share of the keyspace concentrates near 1/N (a handful of percent
of skew) instead of the wild variance of one point per shard.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple, Union

__all__ = ["HashRing", "NoLiveShard"]


class NoLiveShard(LookupError):
    """Every shard on the ring is excluded (or the ring is empty)."""


def _point(label: str) -> int:
    """Stable 64-bit ring position of a label."""
    return int.from_bytes(hashlib.blake2b(label.encode(), digest_size=8).digest(), "big")


class HashRing:
    """A stable consistent-hash ring with virtual nodes.

    Shard ids are opaque strings; keys are arbitrary strings (the fleet uses
    ``RunSpec.cache_key()``).  Membership edits rebuild the point list — they
    are rare control-plane events; :meth:`route` is the hot path and is a
    binary search plus a short clockwise walk.
    """

    def __init__(self, shards: Iterable[str] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._shards: Set[str] = set()
        self._points: List[Tuple[int, str]] = []
        for shard in shards:
            self.add(shard)

    # -- membership --------------------------------------------------------
    def add(self, shard: str) -> None:
        if not shard:
            raise ValueError("shard id must be a non-empty string")
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} is already on the ring")
        self._shards.add(shard)
        self._points.extend((_point(f"{shard}#{i}"), shard) for i in range(self.vnodes))
        self._points.sort()

    def remove(self, shard: str) -> None:
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} is not on the ring")
        self._shards.remove(shard)
        self._points = [p for p in self._points if p[1] != shard]

    @property
    def shards(self) -> FrozenSet[str]:
        return frozenset(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    # -- routing -----------------------------------------------------------
    def route(
        self, key: str, *, exclude: Union[Set[str], FrozenSet[str], Sequence[str]] = ()
    ) -> str:
        """The shard owning ``key``, skipping any ``exclude``\\ d shards.

        With an empty ``exclude`` this is the key's home shard; with the home
        shard excluded it is the rehash successor — the shard that inherits
        the key under mark-down.  Raises :class:`NoLiveShard` when no
        eligible shard remains.
        """
        excluded = set(exclude)
        if not self._shards - excluded:
            raise NoLiveShard(f"no live shard for key {key!r}")
        points = self._points
        idx = bisect_right(points, (_point(key), ""))
        for offset in range(len(points)):
            shard = points[(idx + offset) % len(points)][1]
            if shard not in excluded:
                return shard
        raise NoLiveShard(f"no live shard for key {key!r}")  # pragma: no cover

    def spread(
        self,
        keys: Iterable[str],
        *,
        exclude: Union[Set[str], FrozenSet[str], Sequence[str]] = (),
    ) -> dict:
        """Shard → key-count histogram (balance diagnostics, tests).

        ``exclude`` mirrors :meth:`route`: excluded shards are dropped from
        the histogram and their keys counted against the rehash successors,
        so degraded-fleet diagnostics report the distribution the marked-down
        ring actually serves — identical to ``spread`` of a ring rebuilt
        without the excluded shards.
        """
        excluded = set(exclude)
        counts: dict = {shard: 0 for shard in self._shards - excluded}
        if not counts:
            raise NoLiveShard("no live shard to spread keys over")
        for key in keys:
            counts[self.route(key, exclude=excluded)] += 1
        return counts
