"""The fleet front end: consistent-hash routing over N shard daemons.

:class:`RouterService` owns a :class:`~repro.service.ring.HashRing` over the
shard ids and forwards the ``repro.service/v1`` documents it receives to the
shard that owns each request's ``cache_key`` — so identical specs always
land on the same shard and the shard's single-flight coalescing keeps
working fleet-wide.  :class:`ReproRouter` is the same stdlib HTTP front end
``repro serve`` uses, pointed at a router instead of a local service; a
router is therefore indistinguishable from a big ``repro serve`` daemon to
any existing client.

Responsibilities beyond plain forwarding:

* **Fleet admission control.**  The router tracks its own in-flight
  forwards per shard and rejects with 429 + ``Retry-After`` *before*
  opening an upstream connection once a shard has ``max_inflight`` requests
  outstanding.  The hint propagates from the shards themselves: every 429 a
  shard returns updates that shard's last hint, and a router-side rejection
  quotes the largest live hint (the hottest shard) so clients back off far
  enough for the whole fleet, not just one process.
* **Mark-down + bounded retry.**  A transport failure (refused, reset,
  closed mid-request) marks the shard down and re-routes the request to the
  ring's rehash successor — at most ``retries`` extra hops.  Runs are
  content-addressed and cache publication is atomic, so replaying a
  possibly-half-executed request on another shard is always safe.  Downed
  shards re-enter routing after ``revive_after_s``: the next forward is the
  probe, and a failure simply re-marks them.
* **Fan-out endpoints.**  ``/v1/batch`` splits by owning shard, forwards
  the per-shard sub-batches concurrently, and reassembles responses in
  request order; ``/v1/health`` and ``/v1/stats`` aggregate every shard
  plus the router's own counters.
* **Drain choreography.**  ``drain()`` refuses new work (retriable 503)
  and waits for in-flight forwards; the fleet supervisor then terminates
  the shards, so a SIGTERM to the fleet empties the whole pipeline before
  any process exits.

A shard timeout (socket deadline passed while the shard computes) is *not*
mark-down: the shard is alive, the run is still executing and will publish
to its cache, so the client gets the same retriable ``timeout`` document a
single daemon would produce.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.telemetry import (
    ServiceTelemetry,
    Span,
    TraceContext,
    merge_expositions,
    new_span_id,
    parse_exposition,
)
from .client import http_json_request, http_text_request
from .protocol import HTTP_STATUS, SERVICE_SCHEMA, RunRequest, error_document
from .ring import HashRing, NoLiveShard
from .server import HttpFront, JsonHttpHandler

__all__ = ["ShardAddress", "RouterService", "ReproRouter"]

#: Counters summed across shard stats documents into the fleet totals.
_SUMMED_SHARD_COUNTERS = (
    "requests",
    "executed",
    "coalesced",
    "cache_hits",
    "rejected_overload",
    "rejected_closed",
    "timeouts",
    "failures",
    "in_flight",
)


@dataclass(frozen=True)
class ShardAddress:
    """Where one shard daemon listens."""

    shard_id: str
    host: str
    port: int


class _Shard:
    """Router-side view of one shard: address, health, and load accounting."""

    __slots__ = (
        "address",
        "down_since",
        "inflight",
        "routed",
        "transport_errors",
        "last_retry_hint",
    )

    def __init__(self, address: ShardAddress) -> None:
        self.address = address
        self.down_since: Optional[float] = None
        self.inflight = 0
        self.routed = 0
        self.transport_errors = 0
        self.last_retry_hint: Optional[float] = None


@dataclass
class RouterStats:
    """Monotonic router-side counters (the shards keep their own)."""

    requests: int = 0
    routed: int = 0
    retried: int = 0
    rejected_inflight: int = 0
    rejected_draining: int = 0
    unavailable: int = 0
    marked_down: int = 0
    revived: int = 0
    batches: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        doc = dict(self.__dict__)
        doc.pop("extra")
        return doc


class RouterService:
    """Consistent-hash request router over a set of shard daemons.

    ``shards`` fixes the ring membership for the router's lifetime (mark
    down/revive changes *eligibility*, never the ring positions, so a
    revived shard gets exactly its old keys back).  The object is
    transport-agnostic like :class:`SimulationService`: the HTTP layer calls
    :meth:`handle_run` / :meth:`handle_batch` / the document getters, and
    tests can drive it directly against in-process shard servers.
    """

    def __init__(
        self,
        shards: Sequence[ShardAddress],
        *,
        vnodes: int = 64,
        max_inflight: int = 32,
        retries: int = 2,
        revive_after_s: float = 5.0,
        connect_timeout_s: float = 10.0,
        default_timeout_s: Optional[float] = None,
        log=None,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in {ids}")
        self._shards: Dict[str, _Shard] = {s.shard_id: _Shard(s) for s in shards}
        self._ring = HashRing(ids, vnodes=vnodes)
        self.max_inflight = max_inflight
        self.retries = retries
        self.revive_after_s = revive_after_s
        self.connect_timeout_s = connect_timeout_s
        self.default_timeout_s = default_timeout_s
        self._log = log
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._open = 0  # in-flight upstream forwards (drain barrier)
        self._draining = False
        self._closed = False
        self._stats = RouterStats()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(shards)), thread_name_prefix="repro-router"
        )
        self._telemetry = telemetry
        if telemetry is not None:
            reg = telemetry.registry
            self._m_forwards = reg.counter(
                "repro_router_forwards_total",
                "Upstream forwards by shard and outcome",
                labelnames=("shard", "outcome"),
            )
            self._m_retries = reg.counter(
                "repro_router_retries_total", "Requests re-routed after a transport failure"
            )
            self._m_marked_down = reg.counter(
                "repro_router_marked_down_total",
                "Mark-down transitions per shard",
                labelnames=("shard",),
            )
            self._m_shard_up = reg.gauge(
                "repro_router_shard_up",
                "1 while the shard is routable, 0 while marked down",
                labelnames=("shard",),
            )
            self._m_scrape_errors = reg.counter(
                "repro_router_scrape_errors_total",
                "Shard /metrics scrapes that failed or did not parse",
                labelnames=("shard",),
            )
            for sid in self._shards:
                self._m_shard_up.set(1.0, shard=sid)

    @property
    def telemetry(self) -> Optional[ServiceTelemetry]:
        return self._telemetry

    # -- introspection -----------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._shards))

    def shard_for(self, key: str) -> str:
        """The key's home shard, ignoring health (pure ring lookup)."""
        return self._ring.route(key)

    # -- mark-down ---------------------------------------------------------
    def _excluded(self, now: float) -> set:
        """Shards currently ineligible: down and inside the revive window.

        A shard *past* the window is eligible again — the next forward to it
        is the revival probe, and an :class:`OSError` there just re-marks it.
        """
        return {
            sid
            for sid, shard in self._shards.items()
            if shard.down_since is not None and now - shard.down_since < self.revive_after_s
        }

    def _mark_down(self, sid: str, why: BaseException) -> None:
        with self._lock:
            shard = self._shards[sid]
            shard.transport_errors += 1
            transition = shard.down_since is None
            if transition:
                self._stats.marked_down += 1
            shard.down_since = time.monotonic()
        if self._telemetry is not None:
            self._m_shard_up.set(0.0, shard=sid)
            if transition:
                self._m_marked_down.inc(shard=sid)
        if self._log is not None:
            self._log(f"shard {sid} marked down: {type(why).__name__}: {why}")

    def _mark_up(self, sid: str) -> None:
        with self._lock:
            shard = self._shards[sid]
            revived = shard.down_since is not None
            if revived:
                shard.down_since = None
                self._stats.revived += 1
                if self._log is not None:
                    self._log(f"shard {sid} revived")
        if revived and self._telemetry is not None:
            self._m_shard_up.set(1.0, shard=sid)

    def _hottest_hint(self) -> float:
        hints = [
            s.last_retry_hint for s in self._shards.values() if s.last_retry_hint is not None
        ]
        return max(hints) if hints else 0.25

    # -- forwarding --------------------------------------------------------
    def _post(
        self,
        sid: str,
        path: str,
        body: Dict[str, Any],
        timeout_s: Optional[float],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One upstream POST; socket deadline padded past the run deadline."""
        shard = self._shards[sid]
        sock_timeout = (
            self.connect_timeout_s + timeout_s + 5.0 if timeout_s is not None else None
        )
        return http_json_request(
            shard.address.host,
            shard.address.port,
            "POST",
            path,
            body,
            timeout_s=sock_timeout,
            headers=headers,
        )

    def handle_run(
        self, doc: Any, trace: Optional[TraceContext] = None
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """Route one ``/v1/run`` document: (status, document, retry-after).

        A traced request (``trace`` set, telemetry attached) gets router
        spans — one ``router.route`` admission span plus one
        ``router.forward`` span per upstream attempt — appended to the
        response document's ``"spans"`` list after whatever spans the shard
        already returned.  The trace context is re-parented onto each
        forward span before the upstream hop, so shard spans nest under the
        forward that produced them in the merged trace.
        """
        tel = self._telemetry
        if tel is None:
            trace = None
        spans: Optional[List[Span]] = [] if trace is not None else None
        t_entry = time.time()
        route_span_pending = spans is not None

        def _finish(
            status: int, out: Any, retry_after: Optional[float]
        ) -> Tuple[int, Dict[str, Any], Optional[float]]:
            if spans and isinstance(out, dict):
                out = dict(out)
                out["spans"] = list(out.get("spans", ())) + [
                    s.bound(trace.trace_id, trace.parent_span).to_dict() for s in spans
                ]
            return status, out, retry_after

        try:
            request = RunRequest.from_document(doc)
        except ValueError as exc:
            return _finish(
                HTTP_STATUS["bad_request"], error_document("bad_request", str(exc)), None
            )
        key = request.spec.cache_key()
        timeout_s = (
            request.timeout_s if request.timeout_s is not None else self.default_timeout_s
        )
        with self._lock:
            self._stats.requests += 1
        tried: set = set()
        attempts = 0
        while True:
            now = time.monotonic()
            with self._lock:
                if self._draining or self._closed:
                    self._stats.rejected_draining += 1
                    hint = self._hottest_hint()
                    return _finish(
                        HTTP_STATUS["draining"],
                        error_document(
                            "draining",
                            "fleet is draining and admits no new work",
                            retry_after_s=hint,
                        ),
                        hint,
                    )
                try:
                    sid = self._ring.route(key, exclude=tried | self._excluded(now))
                except NoLiveShard:
                    self._stats.unavailable += 1
                    hint = max(self.revive_after_s, self._hottest_hint())
                    return _finish(
                        HTTP_STATUS["unavailable"],
                        error_document(
                            "unavailable",
                            f"no live shard for key {key[:16]}… "
                            f"({len(tried)} marked down this request)",
                            retry_after_s=hint,
                        ),
                        hint,
                    )
                shard = self._shards[sid]
                if shard.inflight >= self.max_inflight:
                    self._stats.rejected_inflight += 1
                    hint = self._hottest_hint()
                    return _finish(
                        HTTP_STATUS["overloaded"],
                        error_document(
                            "overloaded",
                            f"shard {sid} has {shard.inflight} forwards in flight "
                            f"(router limit {self.max_inflight}); retry later",
                            retry_after_s=hint,
                        ),
                        hint,
                    )
                shard.inflight += 1
                self._open += 1
            if route_span_pending:
                # Entry → first admitted forward: ring lookup + admission.
                spans.append(
                    Span(
                        name="router.route",
                        component=tel.component,
                        start_s=t_entry,
                        duration_s=time.time() - t_entry,
                        span_id=new_span_id(),
                        attrs={"shard": sid, "excluded": len(tried)},
                    )
                )
                route_span_pending = False
            fwd_span_id = new_span_id() if spans is not None else None
            headers = trace.child(fwd_span_id).headers() if spans is not None else None
            t_fwd = time.time()
            try:
                status, out = self._post(sid, "/v1/run", doc, timeout_s, headers=headers)
            except TimeoutError:
                # The shard is alive but slow: same retriable contract as a
                # single daemon's deadline expiry — no mark-down, no retry
                # (the run continues shard-side and will publish).
                if tel is not None:
                    self._m_forwards.inc(shard=sid, outcome="timeout")
                if spans is not None:
                    spans.append(
                        Span(
                            name="router.forward",
                            component=tel.component,
                            start_s=t_fwd,
                            duration_s=time.time() - t_fwd,
                            span_id=fwd_span_id,
                            attrs={"shard": sid, "attempt": attempts, "outcome": "timeout"},
                        )
                    )
                return _finish(
                    HTTP_STATUS["timeout"],
                    error_document(
                        "timeout",
                        f"shard {sid} exceeded the {timeout_s}s deadline; "
                        "the run continues shard-side and will publish to its cache",
                        retry_after_s=timeout_s,
                    ),
                    timeout_s,
                )
            except OSError as exc:
                if tel is not None:
                    self._m_forwards.inc(shard=sid, outcome="transport_error")
                if spans is not None:
                    spans.append(
                        Span(
                            name="router.forward",
                            component=tel.component,
                            start_s=t_fwd,
                            duration_s=time.time() - t_fwd,
                            span_id=fwd_span_id,
                            attrs={
                                "shard": sid,
                                "attempt": attempts,
                                "outcome": "transport_error",
                            },
                        )
                    )
                self._mark_down(sid, exc)
                tried.add(sid)
                attempts += 1
                if attempts > self.retries:
                    with self._lock:
                        self._stats.unavailable += 1
                    hint = self.revive_after_s
                    return _finish(
                        HTTP_STATUS["unavailable"],
                        error_document(
                            "unavailable",
                            f"{attempts} shard(s) failed for this key "
                            f"(last: shard {sid}: {exc}); retry later",
                            retry_after_s=hint,
                        ),
                        hint,
                    )
                with self._lock:
                    self._stats.retried += 1
                if tel is not None:
                    self._m_retries.inc()
                continue
            finally:
                with self._lock:
                    shard.inflight -= 1
                    self._open -= 1
                    self._idle.notify_all()
            if tel is not None:
                self._m_forwards.inc(
                    shard=sid, outcome="ok" if status == 200 else f"http_{status}"
                )
            if spans is not None:
                spans.append(
                    Span(
                        name="router.forward",
                        component=tel.component,
                        start_s=t_fwd,
                        duration_s=time.time() - t_fwd,
                        span_id=fwd_span_id,
                        attrs={"shard": sid, "attempt": attempts, "status": status},
                    )
                )
            self._mark_up(sid)
            retry_after = out.get("retry_after_s") if isinstance(out, dict) else None
            with self._lock:
                shard.routed += 1
                self._stats.routed += 1
                if status == HTTP_STATUS["overloaded"] and retry_after is not None:
                    shard.last_retry_hint = float(retry_after)
            return _finish(status, out, retry_after)

    # -- batch fan-out -----------------------------------------------------
    def handle_batch(
        self, doc: Any, trace: Optional[TraceContext] = None
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """Split a batch by owning shard, forward concurrently, reassemble.

        Batches are not traced: ``trace`` is accepted for handler symmetry
        but span recording is per-``/v1/run``-request only.
        """
        requests = doc.get("requests") if isinstance(doc, dict) else None
        if not isinstance(requests, list):
            return (
                HTTP_STATUS["bad_request"],
                error_document("bad_request", "batch body needs a 'requests' list"),
                None,
            )
        with self._lock:
            self._stats.batches += 1
            if self._draining or self._closed:
                self._stats.rejected_draining += 1
                hint = self._hottest_hint()
                return (
                    HTTP_STATUS["draining"],
                    error_document(
                        "draining",
                        "fleet is draining and admits no new work",
                        retry_after_s=hint,
                    ),
                    hint,
                )
        responses: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        pending: List[Tuple[int, str, Any]] = []  # (index, key, raw document)
        for i, item in enumerate(requests):
            try:
                pending.append((i, RunRequest.from_document(item).spec.cache_key(), item))
            except ValueError as exc:
                responses[i] = error_document("bad_request", str(exc))

        rounds = 0
        while pending and rounds <= self.retries:
            now = time.monotonic()
            groups: Dict[str, List[Tuple[int, str, Any]]] = {}
            leftover: List[Tuple[int, str, Any]] = []
            with self._lock:
                excluded = self._excluded(now)
            for entry in pending:
                try:
                    groups.setdefault(
                        self._ring.route(entry[1], exclude=excluded), []
                    ).append(entry)
                except NoLiveShard:
                    leftover.append(entry)
            with self._lock:
                for sid in groups:
                    self._shards[sid].inflight += 1
                    self._open += 1
            futures = {
                self._pool.submit(
                    self._post,
                    sid,
                    "/v1/batch",
                    {"schema": SERVICE_SCHEMA, "requests": [e[2] for e in entries]},
                    self.default_timeout_s,
                ): (sid, entries)
                for sid, entries in groups.items()
            }
            retry_next: List[Tuple[int, str, Any]] = leftover
            for future, (sid, entries) in futures.items():
                try:
                    _, out = future.result()
                    shard_responses = out.get("responses", []) if isinstance(out, dict) else []
                    for entry, resp in zip(entries, shard_responses):
                        responses[entry[0]] = resp
                    for entry in entries[len(shard_responses) :]:
                        retry_next.append(entry)  # truncated reply: retry those
                    self._mark_up(sid)
                    with self._lock:
                        self._shards[sid].routed += len(entries)
                        self._stats.routed += len(entries)
                except (TimeoutError, OSError) as exc:
                    if not isinstance(exc, TimeoutError):
                        self._mark_down(sid, exc)
                    retry_next.extend(entries)
                finally:
                    with self._lock:
                        self._shards[sid].inflight -= 1
                        self._open -= 1
                        self._idle.notify_all()
            if retry_next and rounds < self.retries:
                with self._lock:
                    self._stats.retried += len(retry_next)
            pending = retry_next
            rounds += 1
        for i, key, _item in pending:
            with self._lock:
                self._stats.unavailable += 1
            responses[i] = error_document(
                "unavailable",
                f"no live shard reached for key {key[:16]}… after {rounds} round(s)",
                retry_after_s=self.revive_after_s,
            )
        return 200, {"schema": SERVICE_SCHEMA, "ok": True, "responses": responses}, None

    # -- aggregation -------------------------------------------------------
    def _get(self, sid: str, path: str) -> Tuple[int, Dict[str, Any]]:
        shard = self._shards[sid]
        return http_json_request(
            shard.address.host,
            shard.address.port,
            "GET",
            path,
            timeout_s=self.connect_timeout_s,
        )

    def _get_text(self, sid: str, path: str) -> Tuple[int, str]:
        shard = self._shards[sid]
        return http_text_request(
            shard.address.host,
            shard.address.port,
            "GET",
            path,
            timeout_s=self.connect_timeout_s,
        )

    def metrics_text(self) -> str:
        """One exposition page for the whole fleet.

        Scrapes every shard's ``/metrics`` concurrently, re-validates each
        page under the strict parser, stamps a ``shard="<id>"`` label onto
        every shard series, and merges them with the router's own registry
        (whose series stay unlabelled — scrape consumers separate the two
        by the presence of the ``shard`` label).  A shard whose scrape
        fails or does not parse is *skipped* — counted in
        ``repro_router_scrape_errors_total`` but never marked down, because
        a metrics defect is not a routing defect.
        """
        tel = self._telemetry
        if tel is None:
            raise RuntimeError("router has no telemetry attached")
        futures = {
            sid: self._pool.submit(self._get_text, sid, "/metrics") for sid in self._shards
        }
        parts = []
        for sid in sorted(futures):
            try:
                status, text = futures[sid].result()
                if status != 200:
                    raise ValueError(f"shard {sid} /metrics returned HTTP {status}")
                parts.append((parse_exposition(text), {"shard": sid}))
            except Exception as exc:  # scrape must degrade, never 500 the page
                self._m_scrape_errors.inc(shard=sid)
                if self._log is not None:
                    self._log(f"shard {sid} /metrics scrape failed: {exc}")
        # Render the router's own registry last so this scrape's own
        # failures are already reflected on the page it returns.
        parts.insert(0, (parse_exposition(tel.registry.render()), {}))
        return merge_expositions(parts)

    def _poll_shards(self, path: str) -> Dict[str, Any]:
        """GET ``path`` from every shard concurrently: sid → doc | OSError."""
        futures = {sid: self._pool.submit(self._get, sid, path) for sid in self._shards}
        polled: Dict[str, Any] = {}
        for sid, future in futures.items():
            try:
                polled[sid] = future.result()[1]
                self._mark_up(sid)
            except Exception as exc:  # a poll must degrade, never raise
                polled[sid] = exc
                if isinstance(exc, OSError) and not isinstance(exc, TimeoutError):
                    self._mark_down(sid, exc)
        return polled

    def health_document(self) -> Tuple[int, Dict[str, Any]]:
        """Aggregate fleet health: serving / degraded / draining."""
        polled = self._poll_shards("/v1/health")
        shards_doc: Dict[str, Any] = {}
        up = 0
        for sid in sorted(polled):
            doc = polled[sid]
            if isinstance(doc, dict):
                shards_doc[sid] = {"ok": doc.get("ok", False), "status": doc.get("status")}
                up += 1 if doc.get("ok", False) else 0
            else:
                shards_doc[sid] = {"ok": False, "status": f"unreachable: {doc}"}
        draining = self._draining or self._closed
        ok = not draining and up > 0
        status = "draining" if draining else ("serving" if up == len(polled) else "degraded")
        return (
            200 if ok else 503,
            {
                "schema": SERVICE_SCHEMA,
                "ok": ok,
                "status": status,
                "role": "router",
                "shards_up": up,
                "shards_total": len(polled),
                "shards": shards_doc,
            },
        )

    def stats_document(self) -> Dict[str, Any]:
        """Fleet-wide counters: summed shard totals + per-shard breakdown."""
        polled = self._poll_shards("/v1/stats")
        totals = {name: 0 for name in _SUMMED_SHARD_COUNTERS}
        per_shard: Dict[str, Any] = {}
        up = 0
        with self._lock:
            router = self._stats.to_dict()
            excluded = self._excluded(time.monotonic())
            snapshot = {
                sid: {
                    "host": shard.address.host,
                    "port": shard.address.port,
                    "up": shard.down_since is None,
                    "inflight": shard.inflight,
                    "routed": shard.routed,
                    "transport_errors": shard.transport_errors,
                    "last_retry_after_s": shard.last_retry_hint,
                }
                for sid, shard in self._shards.items()
            }
            router["draining"] = self._draining or self._closed
        for sid in sorted(polled):
            doc = polled[sid]
            entry = snapshot[sid]
            if isinstance(doc, dict):
                up += 1
                entry["service"] = {
                    k: v for k, v in doc.items() if k not in ("schema", "ok")
                }
                for name in _SUMMED_SHARD_COUNTERS:
                    value = doc.get(name)
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        totals[name] += value
            else:
                entry["up"] = False
                entry["service"] = None
                entry["error"] = str(doc)
            per_shard[sid] = entry
        # Keyspace balance of the ring *as currently served*: marked-down
        # shards are excluded, so their slices count against the rehash
        # successors actually absorbing the traffic.
        try:
            balance = self._ring.spread(
                (f"balance-{i}" for i in range(512)), exclude=excluded
            )
        except NoLiveShard:
            balance = {}
        return {
            "schema": SERVICE_SCHEMA,
            "ok": True,
            "role": "router",
            "shards_total": len(per_shard),
            "shards_up": up,
            "router": router,
            "totals": totals,
            "per_shard": per_shard,
            "ring": {
                "vnodes": self._ring.vnodes,
                "excluded": sorted(excluded),
                "balance": balance,
            },
        }

    # -- lifecycle ---------------------------------------------------------
    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Refuse new work; wait for in-flight forwards.  Idempotent."""
        with self._idle:
            self._draining = True
            deadline = None if timeout_s is None else time.monotonic() + timeout_s
            while self._open > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def close(self, timeout_s: Optional[float] = None) -> bool:
        drained = self.drain(timeout_s)
        with self._lock:
            if self._closed:
                return drained
            self._closed = True
        self._pool.shutdown(wait=drained)
        return drained

    def __enter__(self) -> "RouterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _RouterHandler(JsonHttpHandler):
    server_version = "repro-router/1"

    @property
    def router(self) -> RouterService:
        return self.app

    def handle_GET(self) -> None:
        if self.path == "/v1/health":
            status, doc = self.router.health_document()
            self._send_json(status, doc)
        elif self.path == "/v1/stats":
            self._send_json(200, self.router.stats_document())
        elif self.path == "/metrics":
            self._send_metrics(self.router)
        else:
            self._send_error_doc("bad_request", f"unknown path {self.path!r}")

    def handle_POST(self) -> None:
        try:
            doc = self._read_document()
        except ValueError as exc:  # JSONDecodeError subclasses ValueError
            self._send_error_doc("bad_request", f"unreadable request: {exc}")
            return
        if self.path == "/v1/run":
            status, out, retry_after = self.router.handle_run(doc, trace=self.trace_ctx)
        elif self.path == "/v1/batch":
            status, out, retry_after = self.router.handle_batch(doc, trace=self.trace_ctx)
        else:
            self._send_error_doc("bad_request", f"unknown path {self.path!r}")
            return
        self._send_json(status, out, retry_after_s=retry_after)


class ReproRouter(HttpFront):
    """One :class:`RouterService` behind the shared HTTP front end."""

    handler_class = _RouterHandler
    thread_name = "repro-router-accept"

    def __init__(
        self,
        router: RouterService,
        host: str = "127.0.0.1",
        port: int = 8430,
        *,
        log=None,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        super().__init__(router, host, port, log=log, telemetry=telemetry)
        self.router = router
