"""The stdlib consumer of a running ``repro serve`` daemon.

:class:`ServiceClient` speaks the :mod:`~repro.service.protocol` documents
over ``http.client`` — no dependency beyond the standard library — and
converts error documents back into the same exception types the in-process
:class:`~repro.service.core.SimulationService` raises, so calling code is
indifferent to whether the service is local or remote.

Retriable rejections (429 backpressure, 503 draining, 504 deadline) are
retried with the server's own ``retry_after_s`` hint (falling back to
capped exponential back-off), which makes :func:`sweep_via_service` safe to
point at an intentionally small daemon: excess load degrades into waiting,
not failures.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.telemetry import TRACE_HEADER, new_trace_id
from ..runner.spec import RunSpec
from .core import (
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from .protocol import SERVICE_SCHEMA, RunRequest

__all__ = [
    "CLIENT_SWEEP_SCHEMA",
    "ServiceClient",
    "client_sweep_document",
    "http_json_request",
    "http_text_request",
    "sweep_via_service",
    "write_client_sweep",
]

#: Schema tag of the ``repro client --metrics-out`` responses file, which
#: :func:`repro.service.loadgen.load_request_log` replays.
CLIENT_SWEEP_SCHEMA = "repro.client_sweep/v1"

_ERROR_TYPES = {
    "overloaded": ServiceOverloaded,
    "draining": ServiceClosed,
    "timeout": ServiceTimeout,
    "unavailable": ServiceUnavailable,
}


def http_json_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    *,
    timeout_s: Optional[float] = None,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, Any]]:
    """One JSON round trip over a fresh connection: ``(status, document)``.

    The shared transport primitive of :class:`ServiceClient`, the fleet
    router's shard forwarding, and the load generator.  Raises ``OSError``
    on transport failure (connect refused, reset, socket timeout) and
    :class:`ServiceError` when the peer answers with something that is not
    JSON; interpreting the document is the caller's business.  ``headers``
    merge over the defaults — trace propagation travels here, never in the
    (strictly validated) body.
    """
    conn = HTTPConnection(host, port, timeout=timeout_s)
    try:
        payload = None
        send_headers: Dict[str, str] = {}
        if body is not None:
            payload = json.dumps(body, sort_keys=True, default=str).encode()
            send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        conn.request(method, path, body=payload, headers=send_headers)
        resp = conn.getresponse()
        raw = resp.read()
        try:
            doc = json.loads(raw.decode()) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"non-JSON response (HTTP {resp.status}): {raw[:200]!r}"
            ) from exc
        return resp.status, doc
    finally:
        conn.close()


def http_text_request(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    timeout_s: Optional[float] = None,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, str]:
    """One plain-text round trip: ``(status, body text)``.

    The transport for ``GET /metrics`` (Prometheus exposition is text, not
    JSON) — the router's fleet-wide scrape and the load generator's
    before/after snapshots both go through here.  Raises ``OSError`` on
    transport failure; undecodable bytes are replaced, never raised.
    """
    conn = HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request(method, path, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8", "replace")
    finally:
        conn.close()


def _error_from_document(doc: Dict[str, Any]) -> ServiceError:
    code = doc.get("error", "failed")
    exc_type = _ERROR_TYPES.get(code, ServiceError)
    exc = exc_type(
        str(doc.get("message", "service error")),
        retry_after_s=doc.get("retry_after_s"),
    )
    exc.code = code
    return exc


class ServiceClient:
    """A thin, retrying JSON client for one ``repro serve`` endpoint.

    ``max_retries`` bounds how many times a *retriable* rejection is
    retried (non-retriable errors raise immediately); ``backoff_s`` seeds
    the exponential fallback used when the server sends no hint.  A fresh
    connection is opened per request, so one client instance may be shared
    freely across threads.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8425,
        *,
        max_retries: int = 5,
        backoff_s: float = 0.1,
        connect_timeout_s: float = 10.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.host = host
        self.port = port
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.connect_timeout_s = connect_timeout_s
        self._sleep = sleep

    # -- transport ---------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        # The socket must outlive the server-side run: pad the request
        # deadline so the service's own timeout error arrives as a document
        # rather than as a dropped connection.
        sock_timeout = self.connect_timeout_s + (timeout_s if timeout_s else 0.0) + 5.0
        return http_json_request(
            self.host, self.port, method, path, body, timeout_s=sock_timeout,
            headers=headers,
        )

    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """One endpoint call with retriable-error back-off."""
        attempt = 0
        while True:
            status, doc = self._request(
                method, path, body, timeout_s=timeout_s, headers=headers
            )
            if status < 400 and doc.get("ok", False):
                return doc
            error = _error_from_document(doc)
            if not error.retriable or attempt >= self.max_retries:
                raise error
            pause = error.retry_after_s
            if pause is None:
                pause = min(2.0, self.backoff_s * (2**attempt))
            self._sleep(max(0.0, float(pause)))
            attempt += 1

    # -- endpoints ---------------------------------------------------------
    def run(
        self,
        spec: Union[RunSpec, Dict[str, Any]],
        *,
        timeline: bool = False,
        timeout_s: Optional[float] = None,
        trace: Union[bool, str, None] = False,
    ) -> Dict[str, Any]:
        """Serve one spec; returns the success document (trace + metrics).

        ``trace=True`` stamps a fresh ``X-Repro-Trace-Id`` on the request
        (``trace="<id>"`` reuses a caller-chosen id); against a
        telemetry-enabled daemon the response document then carries a
        ``"spans"`` list covering router routing, shard admission, and run
        execution, all sharing that trace id.
        """
        if isinstance(spec, dict):
            spec = RunSpec.from_dict(spec)
        request = RunRequest(spec=spec, timeline=timeline, timeout_s=timeout_s)
        headers = None
        if trace:
            trace_id = trace if isinstance(trace, str) else new_trace_id()
            headers = {TRACE_HEADER: trace_id}
        return self._call(
            "POST", "/v1/run", request.to_document(), timeout_s=timeout_s,
            headers=headers,
        )

    def batch(self, requests: Sequence[RunRequest]) -> List[Dict[str, Any]]:
        """One ``/v1/batch`` round-trip; per-item success/error documents."""
        doc = self._call(
            "POST",
            "/v1/batch",
            {
                "schema": SERVICE_SCHEMA,
                "requests": [r.to_document() for r in requests],
            },
        )
        return list(doc.get("responses", []))

    def health(self) -> Dict[str, Any]:
        """Raw health document — no retries, draining is a valid answer."""
        return self._request("GET", "/v1/health")[1]

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/v1/stats")


def sweep_via_service(
    specs: Sequence[RunSpec],
    client: ServiceClient,
    *,
    jobs: int = 4,
    timeline: bool = False,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, Any]]:
    """Fan a sweep out over a running daemon instead of a local pool.

    Returns one response document per spec, in spec order.  ``jobs`` client
    threads issue requests concurrently; the daemon's single-flight layer
    de-duplicates identical specs and its admission control turns excess
    concurrency into back-off (which :class:`ServiceClient` honours), so
    ``jobs`` may comfortably exceed the server's worker count.  A
    non-retriable failure for one spec surfaces as an error document in its
    slot rather than aborting the sweep.
    """
    from concurrent.futures import ThreadPoolExecutor

    if jobs < 1:
        raise ValueError("jobs must be at least 1")

    def one(indexed: Tuple[int, RunSpec]) -> Dict[str, Any]:
        i, spec = indexed
        try:
            doc = client.run(spec, timeline=timeline, timeout_s=timeout_s)
        except ServiceError as exc:
            doc = {
                "schema": SERVICE_SCHEMA,
                "ok": False,
                "error": exc.code,
                "message": str(exc),
                "retry_after_s": exc.retry_after_s,
            }
        if progress is not None:
            tag = "ok  " if doc.get("ok") else "fail"
            progress(f"[{i + 1}/{len(specs)}] {tag} {spec.program.algorithm} "
                     f"nt={spec.program.nt} seed={spec.seed}")
        return doc

    with ThreadPoolExecutor(max_workers=min(jobs, max(1, len(specs)))) as pool:
        return list(pool.map(one, enumerate(specs)))


def client_sweep_document(
    specs: Sequence[RunSpec], docs: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """The ``repro.client_sweep/v1`` document for a finished client sweep."""
    if len(specs) != len(docs):
        raise ValueError(
            f"{len(specs)} specs but {len(docs)} response documents — "
            "a client sweep pairs them one-to-one"
        )
    return {
        "schema": CLIENT_SWEEP_SCHEMA,
        "responses": [
            {"spec": spec.to_dict(), **doc} for spec, doc in zip(specs, docs)
        ],
    }


def write_client_sweep(
    path: Union[str, "Path"], specs: Sequence[RunSpec], docs: Sequence[Dict[str, Any]]
) -> "Path":
    """Write a client-sweep responses file that is guaranteed to replay.

    Serialisation is *strict*: no ``default=`` fallback, so a spec or
    response carrying a non-JSON-native value (a numpy scalar seed, a Path)
    raises here — at write time, with a clear message — instead of silently
    stringifying into a file whose specs fail ``RunRequest.from_document``
    validation when ``repro loadgen`` replays it.
    """
    from pathlib import Path

    doc = client_sweep_document(specs, docs)
    try:
        text = json.dumps(doc, sort_keys=True, indent=2)
    except TypeError as exc:
        raise TypeError(
            f"client sweep document is not strictly JSON-serialisable ({exc}); "
            "refusing to write a replay log that would fail validation"
        ) from exc
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + "\n")
    return out
