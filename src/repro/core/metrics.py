"""Run-level observability counters (the ``RunMetrics`` layer).

Every engine or threaded-runtime execution can carry one :class:`RunMetrics`
object that the hot paths increment as they go: event-heap traffic inside
the discrete-event :class:`~repro.schedulers.engine.Engine`, Task Execution
Queue traffic inside the threaded runtime, dispatch/window stalls, and the
host wall-clock cost of the run.  The counters are the artifact the sweep
runner exports as JSON next to each trace — cheap enough to stay on in
production runs, structured enough to diff across commits in CI.

Wall-clock time is deliberately kept *out* of the trace: traces must be a
pure function of ``(program, scheduler, backend, seed)`` so that cached and
freshly-computed runs are byte-identical, while metrics describe the one
concrete execution that produced them.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Union

__all__ = ["RunMetrics", "METRICS_SCHEMA"]

#: Schema tag stamped into every exported metrics document.
METRICS_SCHEMA = "repro.run_metrics/v1"


@dataclass
class RunMetrics:
    """Counters describing one run of the engine or threaded runtime.

    Engine counters
    ---------------
    ``events_processed``
        Events popped and handled by the main loop (inserts + finishes).
    ``heap_pushes`` / ``heap_pops`` / ``peak_heap_depth``
        Traffic and high-water mark of the event heap.
    ``dispatch_stalls``
        Dispatch sweeps that ended with ready tasks still queued but no
        eligible worker able to take them (master busy, gang not free, or
        policy returned nothing for the offered workers).
    ``window_stalls``
        Insertion attempts refused because the task window was full
        (QUARK-style throttling at work).
    ``tasks_executed``
        Tasks assigned to workers (equals the trace length at the end).
    ``peak_ready_depth``
        High-water mark of the ready queue (tasks released but not yet
        claimed by a worker) — the cross-check for the observability
        layer's ready-depth time series.

    TEQ counters (threaded runtime)
    -------------------------------
    ``teq_inserts`` / ``teq_pops`` / ``peak_teq_depth``
        Traffic and high-water mark of the Task Execution Queue.
    ``teq_notify_drops``
        TEQ wake-ups swallowed by an injected notify fault (zero outside
        fault-injection runs).

    Robustness counters (threaded runtime)
    --------------------------------------
    ``stall_recoveries``
        Stall episodes the watchdog healed with a forced TEQ notification
        under the ``on_stall="recover"`` policy.  A fatal stall instead
        stores its diagnostic document under ``extra["stall"]``.

    Run summary
    -----------
    ``n_tasks``, ``n_workers``, ``makespan`` (virtual seconds) and
    ``wall_time_s`` (host seconds spent producing the trace).
    """

    events_processed: int = 0
    insert_events: int = 0
    finish_events: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    peak_heap_depth: int = 0
    dispatch_stalls: int = 0
    window_stalls: int = 0
    tasks_executed: int = 0
    peak_ready_depth: int = 0
    teq_inserts: int = 0
    teq_pops: int = 0
    peak_teq_depth: int = 0
    teq_notify_drops: int = 0
    stall_recoveries: int = 0
    n_tasks: int = 0
    n_workers: int = 0
    makespan: float = 0.0
    wall_time_s: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def stamp(self, section: str, **fields: Any) -> "RunMetrics":
        """Merge ``fields`` into ``extra[section]``; returns ``self``.

        Layers above the runtimes annotate the run they observed — the
        runner stamps spec provenance, the serving layer stamps queue wait
        and coalescing facts — without clobbering what another layer wrote
        under the same section.  Values must be JSON-ready: the document is
        exported verbatim.
        """
        current = self.extra.get(section)
        if current is None:
            current = {}
            self.extra[section] = current
        elif not isinstance(current, dict):
            raise ValueError(
                f"extra[{section!r}] holds a non-mapping value {current!r}; "
                "stamp() only extends mapping sections"
            )
        current.update(fields)
        return self

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"schema": METRICS_SCHEMA}
        out.update(asdict(self))
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunMetrics":
        """Parse a document produced by :meth:`to_dict`.

        The document must carry the :data:`METRICS_SCHEMA` tag; a missing
        or foreign tag raises ``ValueError`` naming the offending tag, so
        that e.g. a sweep document or a stall diagnostic fed to this parser
        fails loudly instead of silently yielding all-zero metrics.

        Unknown non-schema keys (a document written by a newer version of
        this package, say) are *kept*, not dropped: they are collected under
        ``extra["unknown_fields"]`` and reported once via ``warnings.warn``,
        so forward-compat documents survive a parse/serialise round trip
        with their data intact.
        """
        tag = data.get("schema")
        if tag != METRICS_SCHEMA:
            raise ValueError(
                f"not a RunMetrics document: schema tag {tag!r} "
                f"(expected {METRICS_SCHEMA!r})"
            )
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in data.items() if k in known}
        # Never alias the caller's dict into the instance.
        kwargs["extra"] = dict(kwargs.get("extra") or {})
        unknown = {k: v for k, v in data.items() if k not in known and k != "schema"}
        if unknown:
            warnings.warn(
                f"RunMetrics document carries {len(unknown)} unknown field(s) "
                f"{sorted(unknown)}; kept under extra['unknown_fields']",
                stacklevel=2,
            )
            merged = dict(kwargs["extra"].get("unknown_fields") or {})
            merged.update(unknown)
            kwargs["extra"]["unknown_fields"] = merged
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def read_json(cls, path: Union[str, Path]) -> "RunMetrics":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def summary(self) -> str:
        """One-line human rendering for sweep reports and logs.

        Engine counters always appear; TEQ traffic and watchdog recoveries
        (threaded-runtime territory) are appended only when nonzero, so
        engine-run summaries stay unchanged.
        """
        line = (
            f"{self.tasks_executed} tasks, {self.events_processed} events, "
            f"heap peak {self.peak_heap_depth}, "
            f"stalls {self.dispatch_stalls}d/{self.window_stalls}w"
        )
        if self.teq_inserts or self.teq_pops or self.peak_teq_depth:
            line += (
                f", teq {self.teq_inserts}i/{self.teq_pops}p "
                f"peak {self.peak_teq_depth}"
            )
        if self.stall_recoveries:
            line += f", recovered {self.stall_recoveries} stalls"
        line += f", makespan {self.makespan:.6f}s, wall {self.wall_time_s * 1e3:.1f}ms"
        return line
