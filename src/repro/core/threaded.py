"""Threaded superscalar runtime: the paper's simulator, with real threads.

This module is the mechanical twin of the implementation described in paper
Section V.  A master thread inserts tasks serially (hazard analysis, window
throttling) and ``n_workers`` OS threads execute task bodies.  Two modes:

``execute``
    Task bodies run the real NumPy tile kernels against a
    :class:`~repro.algorithms.tiled_matrix.TileStore` and the trace records
    wall-clock times.  Because NumPy's BLAS releases the GIL, this is a true
    parallel execution — the "real run" of the speed-up experiment.

``simulate``
    Task bodies perform the paper's simulated-kernel protocol (§V-D):

    1. read the shared :class:`~repro.core.clock.SimClock` — the kernel's
       virtual start time;
    2. draw the duration from the kernel's fitted timing model; compute the
       virtual end time;
    3. insert ``(task, end)`` into the :class:`TaskExecutionQueue` and add
       the event to the simulated trace;
    4. **wait until the task is at the front of the queue** (and the race
       guard admits it), so control returns to the scheduler in simulated
       completion order;
    5. advance the clock to the end time, pop, and return — only now does
       the runtime release the task's dependents ("from the scheduler's
       perspective, the task is still executing until the function
       returns").

**Race guards** (§V-E).  When a front task returns, the runtime may release
a dependent whose simulated start would *precede* the next queued task's
end; if that next task returns first, the dependent reads an
already-advanced clock and lands too late in the trace.  Guards:

* ``"quiesce"`` — the QUARK-extension approach: the front task may only
  return when no released task is still on its way into the queue
  (``limbo == 0``) and no idle worker has queued work it could start now;
* ``"sleep"`` / ``"yield"`` — the portable approach: sleep a fraction of a
  second (or yield the OS scheduler) after reaching the front, giving the
  runtime time to finish its bookkeeping, then re-check;
* ``"none"`` — no guard: reproduces the race (used by the Fig. 5
  experiment, usually together with ``dispatch_delay``).

**Robustness layer.**  Every run is overseen by a stall watchdog (see
:mod:`repro.core.watchdog`): a daemon thread that samples the run's
progress counter against a real-time budget and, on expiry, captures a
structured diagnostic (per-worker state, TEQ contents, the ``limbo`` /
``idle`` / ``n_ready`` counters), stores it under
``RunMetrics.extra["stall"]``, and either raises
:class:`~repro.core.watchdog.RuntimeStallError` or — under
``on_stall="recover"`` — force-notifies the TEQ with bounded backoff
first.  Faults (lost notifies, dispatch/wait delays, worker death) can be
injected deterministically through a :class:`~repro.core.faults.FaultPlan`
to rehearse exactly the failures the watchdog exists to catch.  Worker
threads that crash no longer hang the run: the first exception aborts all
threads and re-raises from :meth:`ThreadedRuntime.run`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.numeric import run_task
from ..algorithms.tiled_matrix import TileStore
from ..kernels.timing import KernelModelSet
from ..obs.probe import active_probe
from ..schedulers.policies import PriorityQueue
from ..schedulers.taskdep import HazardTracker
from ..trace.events import Trace
from .clock import SimClock
from .faults import FaultPlan, FaultState
from .metrics import RunMetrics
from .task import Program, TaskSpec
from .teq import TaskExecutionQueue
from .watchdog import STALL_DIAGNOSTIC_SCHEMA, RuntimeStallError, StallPolicy

__all__ = [
    "ThreadedRuntime",
    "RACE_GUARDS",
    "DEFAULT_STALL_POLICY",
    "FaultPlan",
    "StallPolicy",
    "RuntimeStallError",
]

RACE_GUARDS = ("quiesce", "sleep", "yield", "none")

#: Watchdog applied when the caller does not choose one (pass ``stall=None``
#: to run unsupervised, reproducing the pre-watchdog behaviour).
DEFAULT_STALL_POLICY = StallPolicy()


class _RunAborted(Exception):
    """Internal: the watchdog (or a crashing peer) aborted this run."""


class _LegacySamplerAdapter:
    """Per-call draws for model sets that only expose ``duration``."""

    __slots__ = ("_models", "_rng")

    batched = False

    def __init__(self, models, rng) -> None:
        self._models = models
        self._rng = rng

    def draw(self, kernel: str) -> float:
        return self._models.duration(kernel, self._rng)


class _Node:
    __slots__ = ("spec", "n_deps", "successors", "done", "ready_clock")

    def __init__(self, spec: TaskSpec) -> None:
        self.spec = spec
        self.n_deps = 0
        self.successors: List["_Node"] = []
        self.done = False
        self.ready_clock = 0.0

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def kernel(self) -> str:
        return self.spec.kernel

    @property
    def task_id(self) -> int:
        return self.spec.task_id


class ThreadedRuntime:
    """QUARK-style threaded runtime with ``execute`` and ``simulate`` modes."""

    def __init__(
        self,
        n_workers: int,
        *,
        mode: str = "simulate",
        guard: str = "quiesce",
        sleep_time: float = 200e-6,
        window: int = 4096,
        dispatch_delay: float = 0.0,
        delay_kernels: Optional[Tuple[str, ...]] = None,
        faults: Optional[FaultPlan] = None,
        stall: Optional[StallPolicy] = DEFAULT_STALL_POLICY,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if mode not in ("execute", "simulate"):
            raise ValueError(f"unknown mode {mode!r}")
        if guard not in RACE_GUARDS:
            raise ValueError(f"unknown race guard {guard!r}; choose from {RACE_GUARDS}")
        if window < 1:
            raise ValueError("window must be at least 1")
        if stall is not None and not isinstance(stall, StallPolicy):
            raise TypeError("stall must be a StallPolicy or None")
        if faults is not None and (dispatch_delay > 0.0 or delay_kernels is not None):
            raise ValueError(
                "give dispatch delays through faults= or through the "
                "dispatch_delay/delay_kernels shorthand, not both"
            )
        if faults is None and (dispatch_delay > 0.0 or delay_kernels is not None):
            # Legacy shorthand for the Fig. 5 race-window injection.
            faults = FaultPlan(
                dispatch_delay=dispatch_delay,
                delay_kernels=tuple(delay_kernels) if delay_kernels else None,
            )
        self.n_workers = n_workers
        self.mode = mode
        self.guard = guard
        self.sleep_time = sleep_time
        self.window = window
        #: the fault-injection plan for this runtime (None = no faults); the
        #: legacy ``dispatch_delay`` / ``delay_kernels`` attributes mirror it.
        self.faults = faults
        self.stall = stall
        self.dispatch_delay = faults.dispatch_delay if faults is not None else 0.0
        self.delay_kernels = faults.delay_kernels if faults is not None else None

    # -- public entry -------------------------------------------------------
    def run(
        self,
        program: Program,
        *,
        models: Optional[KernelModelSet] = None,
        store: Optional[TileStore] = None,
        seed: int = 0,
        metrics: Optional[RunMetrics] = None,
        probe=None,
    ) -> Trace:
        """Execute or simulate ``program``; returns the trace.

        ``simulate`` mode requires ``models``; ``execute`` mode requires
        ``store`` holding the input tiles (``program.meta['nb']`` gives the
        tile order).  ``metrics``, when given, collects TEQ traffic and the
        run's wall-clock/makespan summary; on a fatal stall it additionally
        receives the diagnostic under ``extra["stall"]`` before
        :class:`RuntimeStallError` propagates.  ``probe`` (see
        :mod:`repro.obs.probe`) receives the runtime-internal event stream —
        lifecycle transitions, TEQ traffic, window stalls, watchdog
        recoveries; probes observe only and never change the trace.
        """
        if self.mode == "simulate" and models is None:
            raise ValueError("simulate mode requires kernel timing models")
        if self.mode == "execute" and store is None:
            raise ValueError("execute mode requires a TileStore")
        if any(spec.width > 1 for spec in program):
            raise NotImplementedError(
                "multi-threaded tasks are supported by the event-driven "
                "engine only (schedulers.engine), not the threaded runtime"
            )

        trace = Trace(
            self.n_workers,
            meta={
                "scheduler": "threaded-quark",
                "mode": self.mode,
                "guard": self.guard,
                "program": program.name,
                "seed": seed,
            },
        )
        wall_start = time.perf_counter()
        state = _RunState(
            self, program, trace, models, store, seed, metrics=metrics, probe=probe
        )
        try:
            state.run()
        finally:
            # Even a stalled run reports what it managed (the partial trace
            # and the TEQ traffic are exactly what the diagnostic refers to).
            if metrics is not None:
                metrics.n_tasks = len(program)
                metrics.n_workers = self.n_workers
                metrics.tasks_executed = len(trace)
                metrics.makespan = trace.makespan
                metrics.wall_time_s = time.perf_counter() - wall_start
        return trace


class _RunState:
    """All shared state of one threaded run, behind one monitor lock."""

    def __init__(
        self,
        rt: ThreadedRuntime,
        program: Program,
        trace: Trace,
        models: Optional[KernelModelSet],
        store: Optional[TileStore],
        seed: int,
        metrics: Optional[RunMetrics] = None,
        probe=None,
    ) -> None:
        self.rt = rt
        self.program = program
        self.trace = trace
        self.models = models
        self.store = store
        self.nb = int(program.meta.get("nb", 0))
        self.rng = np.random.default_rng(seed)
        # Draws happen under rng_lock, so the shared sampler needs no
        # synchronisation of its own; batching only shortens the critical
        # section (same draw sequence, see KernelModelSet.make_sampler).
        # Duck-typed model sets that only expose ``duration`` (fault-injection
        # test doubles) get a per-call adapter.
        if models is None:
            self.sampler = None
        elif hasattr(models, "make_sampler"):
            self.sampler = models.make_sampler(self.rng)
        else:
            self.sampler = _LegacySamplerAdapter(models, self.rng)
        self.rng_lock = threading.Lock()
        self.trace_lock = threading.Lock()

        # Normalised once: hook sites below pay one ``is not None`` check.
        self.probe = active_probe(probe)

        self.nodes = [_Node(spec) for spec in program]
        # Only the dependence structure is consumed here (as in the engine).
        self.tracker = HazardTracker(record_edges=False, probe=self.probe)

        # Monitor protecting ready queue, counters, and dependence state.
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.ready = PriorityQueue()
        self.n_ready = 0
        self.idle = 0  # workers blocked waiting for work
        self.limbo = 0  # claimed tasks not yet registered in the TEQ
        self.done_count = 0
        self.in_flight = 0
        self.shutdown = False

        # -- robustness state ------------------------------------------------
        self.metrics = metrics
        self.faults = FaultState(rt.faults) if rt.faults is not None else None
        #: monotone heartbeat the watchdog samples; bumped on every claim,
        #: TEQ insert/pop, ready release, and completion.  Increments may
        #: race and collapse, but any single bump still changes the value,
        #: which is all change-detection needs.
        self.progress = 0
        self.aborted = False
        self.stall_diagnostic: Optional[Dict[str, Any]] = None
        self.worker_errors: List[Tuple[int, BaseException]] = []
        #: per-worker view for the stall diagnostic; each entry is replaced
        #: wholesale so readers never observe a half-written record.
        self.worker_state: List[Dict[str, Any]] = [
            {"state": "new", "task_id": None, "kernel": None}
            for _ in range(rt.n_workers)
        ]

        self.clock = SimClock()
        self.teq = TaskExecutionQueue(
            metrics=metrics,
            notify_fault=self.faults.drop_notify if self.faults is not None else None,
            probe=self.probe,
            now_fn=self.clock.now,
        )
        self.t0_real = 0.0

    # -- progress / diagnostics ---------------------------------------------
    def _progressed(self) -> None:
        self.progress += 1

    def _mark_worker(self, worker: int, state: str, node: Optional[_Node] = None) -> None:
        self.worker_state[worker] = {
            "state": state,
            "task_id": node.task_id if node is not None else None,
            "kernel": node.kernel if node is not None else None,
        }

    def _escape(self) -> bool:
        return self.aborted

    def force_wake(self) -> None:
        """Watchdog recovery: wake every TEQ waiter and monitor sleeper."""
        self.teq.notify(force=True)
        with self.cond:
            self.cond.notify_all()

    def abort(self) -> None:
        """Unblock every thread so the run can fail fast with a diagnosis."""
        with self.cond:
            self.aborted = True
            self.shutdown = True
            self.cond.notify_all()
        self.teq.notify(force=True)

    def diagnose(self, policy: StallPolicy, recover_attempts: int) -> Dict[str, Any]:
        """Structured snapshot of why the run is stuck (JSON-ready)."""
        with self.lock:
            counters = {
                "n_tasks": len(self.nodes),
                "done": self.done_count,
                "in_flight": self.in_flight,
                "n_ready": self.n_ready,
                "idle": self.idle,
                "limbo": self.limbo,
                "shutdown": self.shutdown,
            }
            workers = [
                dict(record, worker=w) for w, record in enumerate(self.worker_state)
            ]
        return {
            "schema": STALL_DIAGNOSTIC_SCHEMA,
            "guard": self.rt.guard,
            "mode": self.rt.mode,
            "program": self.program.name,
            "elapsed_s": time.perf_counter() - self.t0_real,
            "policy": policy.to_dict(),
            "recover_attempts_made": recover_attempts,
            "counters": counters,
            "teq": [
                {"task_id": tid, "end_time": end} for tid, end in self.teq.snapshot()
            ],
            "workers": workers,
            "faults": self.faults.plan.to_dict() if self.faults is not None else None,
        }

    # -- guard predicate (quiesce) --------------------------------------------
    def _quiesce_ok(self) -> bool:
        """May the TEQ-front task return?  See module docstring.

        Reads counters without the monitor lock: the TEQ re-evaluates on
        every ``notify`` and all transitions notify, so stale reads only
        cause an extra wait/wakeup, never a missed condition.
        """
        if self.limbo > 0:
            return False
        return self.n_ready == 0 or self.idle == 0

    def _notify_teq(self) -> None:
        self.teq.notify()

    # -- dependence bookkeeping ----------------------------------------------
    def _insert_task(self, node: _Node) -> None:
        """Master-side hazard analysis of one task (holds the monitor)."""
        self.tracker.add_task(node.spec)
        preds = self.tracker.predecessors_view(node.task_id)
        outstanding = 0
        for pid in preds:
            pred = self.nodes[pid]
            if not pred.done:
                pred.successors.append(node)
                outstanding += 1
        node.n_deps = outstanding
        self.in_flight += 1
        if self.probe is not None:
            self.probe.task_inserted(self.clock.now(), node.task_id, outstanding)
        if outstanding == 0:
            self._enqueue_ready(node)

    def _enqueue_ready(self, node: _Node) -> None:
        node.ready_clock = self.clock.now()
        self.ready.push(node)
        self.n_ready += 1
        if self.metrics is not None and self.n_ready > self.metrics.peak_ready_depth:
            self.metrics.peak_ready_depth = self.n_ready
        if self.probe is not None:
            self.probe.task_ready(node.ready_clock, node.task_id)
        self._progressed()
        self.cond.notify_all()
        self._notify_teq()

    def _complete(self, node: _Node) -> None:
        """Release dependents after the task function has returned."""
        with self.cond:
            node.done = True
            self.done_count += 1
            self.in_flight -= 1
            self._progressed()
            for succ in node.successors:
                succ.n_deps -= 1
                if succ.n_deps == 0:
                    self._enqueue_ready(succ)
            if self.done_count == len(self.nodes):
                self.shutdown = True
            self.cond.notify_all()
        self._notify_teq()

    # -- task bodies ------------------------------------------------------------
    def _body_execute(self, node: _Node, worker: int) -> None:
        start = time.perf_counter() - self.t0_real
        if self.probe is not None:
            self.probe.task_dispatched(start, node.task_id, worker, start, 1)
        run_task(node.spec, self.store, self.nb)
        end = time.perf_counter() - self.t0_real
        with self.trace_lock:
            self.trace.record(
                worker, node.task_id, node.kernel, start, end, node.spec.label
            )
        if self.probe is not None:
            self.probe.task_finished(end, node.task_id, worker, 1)

    def _body_simulate(self, node: _Node, worker: int) -> None:
        # 1. virtual start time: the current simulation clock.
        start = self.clock.now()
        # 2. duration from the kernel's fitted model.
        with self.rng_lock:
            duration = self.sampler.draw(node.kernel)
        end = start + duration
        if self.probe is not None:
            self.probe.task_dispatched(start, node.task_id, worker, start, 1)
        # 3. register in the Task Execution Queue and the simulated trace.
        self.teq.insert(node.task_id, end)
        self._progressed()
        with self.cond:
            self.limbo -= 1  # now visible to the scheduler via the TEQ
            self.cond.notify_all()
        self._notify_teq()
        with self.trace_lock:
            self.trace.record(worker, node.task_id, node.kernel, start, end, node.spec.label)
        if self.faults is not None:
            pause = self.faults.wait_delay(node.kernel)
            if pause > 0.0:
                time.sleep(pause)  # §V-D step 3→4 window injection
        # 4./5. wait for our turn, advance the clock, pop, return.
        self._mark_worker(worker, "waiting_front", node)
        self._wait_for_front(node, end)
        if self.probe is not None:
            self.probe.task_finished(end, node.task_id, worker, 1)

    def _wait_for_front(self, node: _Node, end: float) -> None:
        """Steps 4-5 of the §V-D protocol under the configured race guard.

        The front check and the pop are one atomic TEQ operation
        (:meth:`TaskExecutionQueue.wait_pop_front`): between a bare wait
        and a later pop, a racing task with an earlier completion time can
        be inserted and steal the front, which used to crash the popping
        worker (and then hang the run).  The clock advance runs under the
        TEQ lock just before the pop, preserving the paper's "advance,
        then pop" ordering.
        """
        tid = node.task_id

        def advance() -> None:
            self.clock.advance_to(end)

        guard = self.rt.guard
        if guard == "quiesce":
            popped = self.teq.wait_pop_front(
                tid, predicate=self._quiesce_ok, escape=self._escape, before_pop=advance
            )
        elif guard in ("sleep", "yield"):
            # Portable guard: reach the front, pause to let the runtime
            # finish bookkeeping, then pop only if still at the front —
            # otherwise a racing task overtook us and we go back to waiting.
            while True:
                self.teq.wait_until_front(tid, escape=self._escape)
                if self.aborted:
                    raise _RunAborted()
                if guard == "sleep":
                    time.sleep(self.rt.sleep_time)
                else:
                    time.sleep(0)  # sched_yield equivalent
                popped = self.teq.wait_pop_front(
                    tid, timeout=0.0, escape=self._escape, before_pop=advance
                )
                if popped is not None or self.aborted:
                    break
                # Overtaken: a racing insert displaced us from the front
                # between the wake-up and the guarded pop; wait again.
                if self.probe is not None:
                    self.probe.teq_bounce(self.clock.now(), tid)
        else:
            # guard == "none": return as soon as we reach the front.
            popped = self.teq.wait_pop_front(tid, escape=self._escape, before_pop=advance)
        if popped is None or self.aborted:
            raise _RunAborted()
        self._progressed()

    # -- threads -------------------------------------------------------------
    def _worker_loop(self, worker: int) -> None:
        body = self._body_execute if self.rt.mode == "execute" else self._body_simulate
        try:
            while True:
                with self.cond:
                    if self.aborted:
                        break
                    self.idle += 1
                    self._mark_worker(worker, "idle")
                    self._notify_teq()
                    while self.n_ready == 0 and not self.shutdown:
                        self.cond.wait()
                    if self.aborted or (self.n_ready == 0 and self.shutdown):
                        self.idle -= 1
                        self._notify_teq()
                        break
                    node = self.ready.pop()
                    self.n_ready -= 1
                    self.idle -= 1
                    if self.rt.mode == "simulate":
                        self.limbo += 1
                    self._progressed()
                    self._mark_worker(worker, "claimed", node)
                    self._notify_teq()
                if self.faults is not None and self.faults.should_die(worker):
                    # Injected worker death: the thread exits still holding
                    # its claimed task, which therefore never completes.
                    self._mark_worker(worker, "dead", node)
                    return
                if self.faults is not None:
                    delay = self.faults.dispatch_delay(node.kernel)
                    if delay > 0.0:
                        time.sleep(delay)  # race-window injection
                self._mark_worker(worker, "running", node)
                body(node, worker)
                self._complete(node)
            self._mark_worker(worker, "exited")
        except _RunAborted:
            self._mark_worker(worker, "aborted")
        except BaseException as exc:  # propagate instead of hanging the run
            with self.cond:
                self.worker_errors.append((worker, exc))
            self._mark_worker(worker, "crashed")
            self.abort()

    def _master_loop(self) -> None:
        for node in self.nodes:
            with self.cond:
                stalled = self.in_flight >= self.rt.window and not self.shutdown
                if stalled:
                    if self.metrics is not None:
                        self.metrics.window_stalls += 1
                    if self.probe is not None:
                        self.probe.window_stall(self.clock.now(), True)
                while self.in_flight >= self.rt.window and not self.shutdown:
                    self.cond.wait()
                if stalled and self.probe is not None:
                    self.probe.window_stall(self.clock.now(), False)
                if self.aborted:
                    return
                self._insert_task(node)

    def run(self) -> None:
        if not self.nodes:
            return
        self.t0_real = time.perf_counter()
        watchdog = _Watchdog(self, self.rt.stall) if self.rt.stall is not None else None
        workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(w,),
                daemon=True,
                name=f"repro-worker-{w}",
            )
            for w in range(self.rt.n_workers)
        ]
        if watchdog is not None:
            watchdog.start()
        try:
            for t in workers:
                t.start()
            self._master_loop()
            for t in workers:
                t.join()
        finally:
            if watchdog is not None:
                watchdog.stop()
                watchdog.join()
        if self.worker_errors:
            worker, exc = self.worker_errors[0]
            raise RuntimeError(
                f"worker {worker} crashed with {type(exc).__name__}: {exc}"
            ) from exc
        if self.stall_diagnostic is not None:
            if self.metrics is not None:
                self.metrics.extra["stall"] = self.stall_diagnostic
            counters = self.stall_diagnostic["counters"]
            raise RuntimeStallError(
                f"threaded run stalled: no progress within "
                f"{self.rt.stall.timeout_s:.3g}s, "
                f"{counters['done']}/{counters['n_tasks']} tasks done under "
                f"guard {self.rt.guard!r} "
                f"(on_stall={self.rt.stall.on_stall!r}, "
                f"{self.stall_diagnostic['recover_attempts_made']} recovery "
                f"attempts); see RunMetrics.extra['stall']",
                diagnostic=self.stall_diagnostic,
            )
        if self.done_count != len(self.nodes):
            raise RuntimeError(
                f"threaded run finished with {self.done_count}/{len(self.nodes)} tasks"
            )


class _Watchdog(threading.Thread):
    """Daemon thread that turns silent deadlocks into diagnosed failures.

    Samples :attr:`_RunState.progress` against the policy's real-time
    budget.  On expiry it either force-notifies the TEQ (``"recover"``,
    with doubling backoff, crediting ``RunMetrics.stall_recoveries`` when
    progress resumes) or captures a diagnostic and aborts the run.
    """

    def __init__(self, state: _RunState, policy: StallPolicy) -> None:
        super().__init__(name="repro-stall-watchdog", daemon=True)
        self.state = state
        self.policy = policy
        # N.B. not named ``_stop``: that would shadow threading.Thread's
        # internal ``_stop()`` method and break ``join()``.
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        state, policy = self.state, self.policy
        last = state.progress
        deadline = time.monotonic() + policy.timeout_s
        attempts = 0
        backoff = policy.recover_backoff_s
        while True:
            wait_s = max(
                0.005,
                min(policy.poll_s, policy.timeout_s / 4.0, deadline - time.monotonic()),
            )
            if self._halt.wait(wait_s):
                return
            now = time.monotonic()
            current = state.progress
            if current != last:
                if attempts > 0:
                    if state.metrics is not None:
                        state.metrics.stall_recoveries += 1
                    if state.probe is not None:
                        state.probe.stall_episode(state.clock.now(), attempts)
                last = current
                deadline = now + policy.timeout_s
                attempts = 0
                backoff = policy.recover_backoff_s
                continue
            if now < deadline or state.aborted:
                continue
            if policy.on_stall == "recover" and attempts < policy.recover_attempts:
                attempts += 1
                state.force_wake()
                deadline = now + backoff
                backoff *= 2.0
                continue
            state.stall_diagnostic = state.diagnose(policy, attempts)
            state.abort()
            return
