"""Threaded superscalar runtime: the paper's simulator, with real threads.

This module is the mechanical twin of the implementation described in paper
Section V.  A master thread inserts tasks serially (hazard analysis, window
throttling) and ``n_workers`` OS threads execute task bodies.  Two modes:

``execute``
    Task bodies run the real NumPy tile kernels against a
    :class:`~repro.algorithms.tiled_matrix.TileStore` and the trace records
    wall-clock times.  Because NumPy's BLAS releases the GIL, this is a true
    parallel execution — the "real run" of the speed-up experiment.

``simulate``
    Task bodies perform the paper's simulated-kernel protocol (§V-D):

    1. read the shared :class:`~repro.core.clock.SimClock` — the kernel's
       virtual start time;
    2. draw the duration from the kernel's fitted timing model; compute the
       virtual end time;
    3. insert ``(task, end)`` into the :class:`TaskExecutionQueue` and add
       the event to the simulated trace;
    4. **wait until the task is at the front of the queue** (and the race
       guard admits it), so control returns to the scheduler in simulated
       completion order;
    5. advance the clock to the end time, pop, and return — only now does
       the runtime release the task's dependents ("from the scheduler's
       perspective, the task is still executing until the function
       returns").

**Race guards** (§V-E).  When a front task returns, the runtime may release
a dependent whose simulated start would *precede* the next queued task's
end; if that next task returns first, the dependent reads an
already-advanced clock and lands too late in the trace.  Guards:

* ``"quiesce"`` — the QUARK-extension approach: the front task may only
  return when no released task is still on its way into the queue
  (``limbo == 0``) and no idle worker has queued work it could start now;
* ``"sleep"`` / ``"yield"`` — the portable approach: sleep a fraction of a
  second (or yield the OS scheduler) after reaching the front, giving the
  runtime time to finish its bookkeeping, then re-check;
* ``"none"`` — no guard: reproduces the race (used by the Fig. 5
  experiment, usually together with ``dispatch_delay``).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.numeric import run_task
from ..algorithms.tiled_matrix import TileStore
from ..kernels.timing import KernelModelSet
from ..schedulers.policies import PriorityQueue
from ..schedulers.taskdep import HazardTracker
from ..trace.events import Trace
from .clock import SimClock
from .metrics import RunMetrics
from .task import Program, TaskSpec
from .teq import TaskExecutionQueue

__all__ = ["ThreadedRuntime", "RACE_GUARDS"]

RACE_GUARDS = ("quiesce", "sleep", "yield", "none")


class _Node:
    __slots__ = ("spec", "n_deps", "successors", "done", "ready_clock")

    def __init__(self, spec: TaskSpec) -> None:
        self.spec = spec
        self.n_deps = 0
        self.successors: List["_Node"] = []
        self.done = False
        self.ready_clock = 0.0

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def kernel(self) -> str:
        return self.spec.kernel

    @property
    def task_id(self) -> int:
        return self.spec.task_id


class ThreadedRuntime:
    """QUARK-style threaded runtime with ``execute`` and ``simulate`` modes."""

    def __init__(
        self,
        n_workers: int,
        *,
        mode: str = "simulate",
        guard: str = "quiesce",
        sleep_time: float = 200e-6,
        window: int = 4096,
        dispatch_delay: float = 0.0,
        delay_kernels: Optional[Tuple[str, ...]] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if mode not in ("execute", "simulate"):
            raise ValueError(f"unknown mode {mode!r}")
        if guard not in RACE_GUARDS:
            raise ValueError(f"unknown race guard {guard!r}; choose from {RACE_GUARDS}")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.n_workers = n_workers
        self.mode = mode
        self.guard = guard
        self.sleep_time = sleep_time
        self.window = window
        #: artificial real-time delay between a worker claiming a task and
        #: the task body starting — widens the §V-E race window for tests.
        #: ``delay_kernels`` restricts the injection to specific kernel
        #: classes so a test can target one dispatch (e.g. Fig. 5's task C).
        self.dispatch_delay = dispatch_delay
        self.delay_kernels = delay_kernels

    # -- public entry -------------------------------------------------------
    def run(
        self,
        program: Program,
        *,
        models: Optional[KernelModelSet] = None,
        store: Optional[TileStore] = None,
        seed: int = 0,
        metrics: Optional[RunMetrics] = None,
    ) -> Trace:
        """Execute or simulate ``program``; returns the trace.

        ``simulate`` mode requires ``models``; ``execute`` mode requires
        ``store`` holding the input tiles (``program.meta['nb']`` gives the
        tile order).  ``metrics``, when given, collects TEQ traffic and the
        run's wall-clock/makespan summary.
        """
        if self.mode == "simulate" and models is None:
            raise ValueError("simulate mode requires kernel timing models")
        if self.mode == "execute" and store is None:
            raise ValueError("execute mode requires a TileStore")
        if any(spec.width > 1 for spec in program):
            raise NotImplementedError(
                "multi-threaded tasks are supported by the event-driven "
                "engine only (schedulers.engine), not the threaded runtime"
            )

        trace = Trace(
            self.n_workers,
            meta={
                "scheduler": "threaded-quark",
                "mode": self.mode,
                "guard": self.guard,
                "program": program.name,
                "seed": seed,
            },
        )
        wall_start = time.perf_counter()
        state = _RunState(self, program, trace, models, store, seed, metrics=metrics)
        state.run()
        if metrics is not None:
            metrics.n_tasks = len(program)
            metrics.n_workers = self.n_workers
            metrics.tasks_executed = len(trace)
            metrics.makespan = trace.makespan
            metrics.wall_time_s = time.perf_counter() - wall_start
        return trace


class _RunState:
    """All shared state of one threaded run, behind one monitor lock."""

    def __init__(
        self,
        rt: ThreadedRuntime,
        program: Program,
        trace: Trace,
        models: Optional[KernelModelSet],
        store: Optional[TileStore],
        seed: int,
        metrics: Optional[RunMetrics] = None,
    ) -> None:
        self.rt = rt
        self.program = program
        self.trace = trace
        self.models = models
        self.store = store
        self.nb = int(program.meta.get("nb", 0))
        self.rng = np.random.default_rng(seed)
        self.rng_lock = threading.Lock()
        self.trace_lock = threading.Lock()

        self.nodes = [_Node(spec) for spec in program]
        self.tracker = HazardTracker()

        # Monitor protecting ready queue, counters, and dependence state.
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.ready = PriorityQueue()
        self.n_ready = 0
        self.idle = 0  # workers blocked waiting for work
        self.limbo = 0  # claimed tasks not yet registered in the TEQ
        self.done_count = 0
        self.in_flight = 0
        self.shutdown = False

        self.clock = SimClock()
        self.teq = TaskExecutionQueue(metrics=metrics)
        self.t0_real = 0.0

    # -- guard predicate (quiesce) --------------------------------------------
    def _quiesce_ok(self) -> bool:
        """May the TEQ-front task return?  See module docstring.

        Reads counters without the monitor lock: the TEQ re-evaluates on
        every ``notify`` and all transitions notify, so stale reads only
        cause an extra wait/wakeup, never a missed condition.
        """
        if self.limbo > 0:
            return False
        return self.n_ready == 0 or self.idle == 0

    def _notify_teq(self) -> None:
        self.teq.notify()

    # -- dependence bookkeeping ----------------------------------------------
    def _insert_task(self, node: _Node) -> None:
        """Master-side hazard analysis of one task (holds the monitor)."""
        self.tracker.add_task(node.spec)
        preds = self.tracker.predecessors(node.task_id)
        outstanding = 0
        for pid in preds:
            pred = self.nodes[pid]
            if not pred.done:
                pred.successors.append(node)
                outstanding += 1
        node.n_deps = outstanding
        self.in_flight += 1
        if outstanding == 0:
            self._enqueue_ready(node)

    def _enqueue_ready(self, node: _Node) -> None:
        node.ready_clock = self.clock.now()
        self.ready.push(node)
        self.n_ready += 1
        self.cond.notify_all()
        self._notify_teq()

    def _complete(self, node: _Node) -> None:
        """Release dependents after the task function has returned."""
        with self.cond:
            node.done = True
            self.done_count += 1
            self.in_flight -= 1
            for succ in node.successors:
                succ.n_deps -= 1
                if succ.n_deps == 0:
                    self._enqueue_ready(succ)
            if self.done_count == len(self.nodes):
                self.shutdown = True
            self.cond.notify_all()
        self._notify_teq()

    # -- task bodies ------------------------------------------------------------
    def _body_execute(self, node: _Node, worker: int) -> None:
        start = time.perf_counter() - self.t0_real
        run_task(node.spec, self.store, self.nb)
        end = time.perf_counter() - self.t0_real
        with self.trace_lock:
            self.trace.record(
                worker, node.task_id, node.kernel, start, end, node.spec.label
            )

    def _body_simulate(self, node: _Node, worker: int) -> None:
        # 1. virtual start time: the current simulation clock.
        start = self.clock.now()
        # 2. duration from the kernel's fitted model.
        with self.rng_lock:
            duration = self.models.duration(node.kernel, self.rng)
        end = start + duration
        # 3. register in the Task Execution Queue and the simulated trace.
        self.teq.insert(node.task_id, end)
        with self.cond:
            self.limbo -= 1  # now visible to the scheduler via the TEQ
            self.cond.notify_all()
        self._notify_teq()
        with self.trace_lock:
            self.trace.record(worker, node.task_id, node.kernel, start, end, node.spec.label)
        # 4. wait for our turn to "complete".
        self._wait_for_front(node)
        # 5. advance the clock and return to the scheduler.
        self.clock.advance_to(end)
        self.teq.pop_front(node.task_id)

    def _wait_for_front(self, node: _Node) -> None:
        guard = self.rt.guard
        if guard == "quiesce":
            self.teq.wait_until_front(node.task_id, predicate=self._quiesce_ok)
            return
        if guard in ("sleep", "yield"):
            # Portable guard: reach the front, pause to let the runtime
            # finish bookkeeping, confirm we are still at the front.
            while True:
                self.teq.wait_until_front(node.task_id)
                if guard == "sleep":
                    time.sleep(self.rt.sleep_time)
                else:
                    time.sleep(0)  # sched_yield equivalent
                if self.teq.front() == node.task_id:
                    return
            # unreachable
        # guard == "none": return as soon as we reach the front.
        self.teq.wait_until_front(node.task_id)

    # -- threads -------------------------------------------------------------
    def _worker_loop(self, worker: int) -> None:
        body = self._body_execute if self.rt.mode == "execute" else self._body_simulate
        while True:
            with self.cond:
                self.idle += 1
                self._notify_teq()
                while self.n_ready == 0 and not self.shutdown:
                    self.cond.wait()
                if self.n_ready == 0 and self.shutdown:
                    self.idle -= 1
                    self._notify_teq()
                    return
                node = self.ready.pop()
                self.n_ready -= 1
                self.idle -= 1
                if self.rt.mode == "simulate":
                    self.limbo += 1
                self._notify_teq()
            if self.rt.dispatch_delay > 0.0 and (
                self.rt.delay_kernels is None or node.kernel in self.rt.delay_kernels
            ):
                time.sleep(self.rt.dispatch_delay)  # race-window injection
            body(node, worker)
            self._complete(node)

    def _master_loop(self) -> None:
        for node in self.nodes:
            with self.cond:
                while self.in_flight >= self.rt.window and not self.shutdown:
                    self.cond.wait()
                self._insert_task(node)

    def run(self) -> None:
        if not self.nodes:
            return
        self.t0_real = time.perf_counter()
        workers = [
            threading.Thread(target=self._worker_loop, args=(w,), daemon=True)
            for w in range(self.rt.n_workers)
        ]
        for t in workers:
            t.start()
        self._master_loop()
        for t in workers:
            t.join()
        if self.done_count != len(self.nodes):
            raise RuntimeError(
                f"threaded run finished with {self.done_count}/{len(self.nodes)} tasks"
            )
