"""Task and data model for superscalar task streams.

The unit of work handed to a superscalar scheduler is a :class:`TaskSpec`: a
named kernel plus a tuple of :class:`Access` records, each tying a
:class:`DataRef` (a tile or other memory region) to an :class:`AccessMode`.
Tasks are submitted *serially*; schedulers derive all parallelism from the
read/write annotations by analysing Read-after-Write, Write-after-Read, and
Write-after-Write hazards exactly as the paper's Section IV-A describes.

A :class:`Program` is an ordered serial task stream together with the registry
of data it touches and bookkeeping metadata (algorithm name, problem size,
total flop count).  Algorithm generators in :mod:`repro.algorithms` produce
``Program`` objects; schedulers, the machine model, and the simulator all
consume them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "AccessMode",
    "DataRef",
    "Access",
    "TaskSpec",
    "DataRegistry",
    "Program",
    "READ",
    "WRITE",
    "RW",
]


class AccessMode(Enum):
    """How a task uses one of its data parameters.

    ``READ``/``WRITE``/``RW`` participate in hazard analysis; ``VALUE`` marks
    by-value parameters (scalars such as a tile size) that create no
    dependences, mirroring QUARK's ``VALUE`` flag.
    """

    READ = "r"
    WRITE = "w"
    RW = "rw"
    VALUE = "v"

    def __init__(self, code: str) -> None:
        # Plain attributes, not properties: hazard analysis consults these
        # once per access per task, and a property call builds a tuple each
        # time.  ``rw_flags`` bundles both for single-lookup unpacking.
        self.reads: bool = code in ("r", "rw")
        self.writes: bool = code in ("w", "rw")
        self.rw_flags: Tuple[bool, bool] = (self.reads, self.writes)


#: Convenience aliases so task generators read like the paper's pseudocode
#: (``geqrt(A[k][k].rw, T[k][k].w)``).
READ = AccessMode.READ
WRITE = AccessMode.WRITE
RW = AccessMode.RW


@dataclass(frozen=True, slots=True)
class DataRef:
    """A handle to a region of (virtual) memory, typically one matrix tile.

    ``addr`` is a synthetic, unique base address assigned by the
    :class:`DataRegistry`; schedulers key their hazard tables on it the same
    way the real runtimes key on pointer values.  ``key`` is a structured,
    human-meaningful identity such as ``("A", 2, 3)`` used to map the ref back
    onto a NumPy tile during numeric execution.
    """

    name: str
    addr: int
    size: int
    key: Tuple[Any, ...] = ()

    # Python 3.10 restores slot state with setattr, which a frozen dataclass
    # rejects; 3.11+ generates equivalent hooks itself.
    def __getstate__(self):
        return tuple(getattr(self, f) for f in self.__slots__)

    def __setstate__(self, state) -> None:
        for f, v in zip(self.__slots__, state):
            object.__setattr__(self, f, v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataRef({self.name}@0x{self.addr:x},{self.size}B)"

    def read(self) -> "Access":
        return Access(self, AccessMode.READ)

    def write(self) -> "Access":
        return Access(self, AccessMode.WRITE)

    def rw(self) -> "Access":
        return Access(self, AccessMode.RW)


@dataclass(frozen=True, slots=True)
class Access:
    """One data parameter of a task: a :class:`DataRef` plus its usage mode."""

    ref: DataRef
    mode: AccessMode

    def __getstate__(self):
        return (self.ref, self.mode)

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "ref", state[0])
        object.__setattr__(self, "mode", state[1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.ref.name}^{self.mode.value}"


@dataclass(slots=True)
class TaskSpec:
    """One task in a serial superscalar task stream.

    Attributes
    ----------
    task_id:
        Position in the serial stream (assigned by :class:`Program`).
    kernel:
        Kernel class name, e.g. ``"DGEMM"`` or ``"DTSMQR"``.  Timing models
        and numeric implementations are looked up by this name.
    accesses:
        The data parameters with their read/write annotations.
    flops:
        Floating-point operation count of the kernel instance; used for
        GFLOP/s reporting and critical-path weighting.
    priority:
        Larger runs earlier among simultaneously-ready tasks under
        priority-aware queue disciplines (QUARK ``TASK_PRIORITY``).
    params:
        By-value parameters forwarded to the numeric kernel (e.g. tile
        coordinates).  They never create dependences.
    label:
        Optional human-readable tag used in traces and DAG exports.
    width:
        Number of cores the task occupies (multi-threaded tasks — the
        QUARK feature listed as the paper's §VII future work).  The engine
        reserves ``width`` workers for the task's whole duration.
    """

    kernel: str
    accesses: Tuple[Access, ...]
    flops: float = 0.0
    priority: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    width: int = 1
    task_id: int = -1

    def __post_init__(self) -> None:
        self.accesses = tuple(self.accesses)
        for acc in self.accesses:
            if not isinstance(acc, Access):
                raise TypeError(f"accesses must be Access instances, got {acc!r}")
        if self.flops < 0:
            raise ValueError("flops must be non-negative")
        if self.width < 1:
            raise ValueError("width must be at least 1")

    @property
    def reads(self) -> Tuple[DataRef, ...]:
        """Refs this task reads (``READ`` or ``RW``)."""
        return tuple(a.ref for a in self.accesses if a.mode.reads)

    @property
    def writes(self) -> Tuple[DataRef, ...]:
        """Refs this task writes (``WRITE`` or ``RW``)."""
        return tuple(a.ref for a in self.accesses if a.mode.writes)

    @property
    def footprint_bytes(self) -> int:
        """Total bytes touched, counting each distinct ref once."""
        return sum(ref.size for ref in {a.ref for a in self.accesses})

    def describe(self) -> str:
        """Render the task the way Fig. 2 of the paper lists them."""
        args = ", ".join(f"{a.ref.name}^{a.mode.value}" for a in self.accesses)
        return f"{self.kernel.lower()}({args})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskSpec(#{self.task_id} {self.describe()})"


class DataRegistry:
    """Allocates :class:`DataRef` handles with unique synthetic addresses.

    Addresses are handed out from a monotonically increasing bump allocator so
    distinct refs never alias, mimicking distinct heap allocations in the real
    runtimes.  Registering the same ``key`` twice returns the original ref,
    which is what lets independent loop nests in an algorithm generator refer
    to the same tile.
    """

    def __init__(self, base_addr: int = 0x10_0000) -> None:
        self._next_addr = base_addr
        self._by_key: Dict[Tuple[Any, ...], DataRef] = {}

    def alloc(self, name: str, size: int, key: Optional[Tuple[Any, ...]] = None) -> DataRef:
        """Return the ref for ``key``, allocating it on first use."""
        if size <= 0:
            raise ValueError("size must be positive")
        key = key if key is not None else (name,)
        existing = self._by_key.get(key)
        if existing is not None:
            if existing.size != size:
                raise ValueError(
                    f"ref {key!r} re-registered with size {size} != {existing.size}"
                )
            return existing
        ref = DataRef(name=name, addr=self._next_addr, size=size, key=key)
        # Pad to a cache line so synthetic addresses never share lines.
        self._next_addr += (size + 63) & ~63
        self._by_key[key] = ref
        return ref

    def get(self, key: Tuple[Any, ...]) -> DataRef:
        return self._by_key[key]

    def __contains__(self, key: Tuple[Any, ...]) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[DataRef]:
        return iter(self._by_key.values())

    @property
    def total_bytes(self) -> int:
        return sum(ref.size for ref in self)


class Program:
    """An ordered, serial superscalar task stream plus its data registry.

    The insertion order is semantically significant: hazard analysis of the
    serial order defines the DAG.  ``Program`` is append-only; iterating it
    yields tasks in submission order.
    """

    def __init__(
        self,
        name: str,
        registry: Optional[DataRegistry] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.registry = registry if registry is not None else DataRegistry()
        self.meta: Dict[str, Any] = dict(meta or {})
        self._tasks: List[TaskSpec] = []

    def add(self, task: TaskSpec) -> TaskSpec:
        """Append ``task`` to the stream, assigning its serial ``task_id``."""
        if task.task_id != -1:
            raise ValueError(f"task already belongs to a program: {task!r}")
        task.task_id = len(self._tasks)
        self._tasks.append(task)
        return task

    def add_task(
        self,
        kernel: str,
        accesses: Iterable[Access],
        *,
        flops: float = 0.0,
        priority: int = 0,
        label: str = "",
        **params: Any,
    ) -> TaskSpec:
        """Convenience builder: create, append, and return a task."""
        spec = TaskSpec(
            kernel=kernel,
            accesses=tuple(accesses),
            flops=flops,
            priority=priority,
            label=label,
            params=params,
        )
        return self.add(spec)

    @property
    def tasks(self) -> Sequence[TaskSpec]:
        return tuple(self._tasks)

    @property
    def total_flops(self) -> float:
        return sum(t.flops for t in self._tasks)

    def kernel_counts(self) -> Dict[str, int]:
        """Histogram of kernel names, e.g. ``{"DGEMM": 120, ...}``."""
        counts: Dict[str, int] = {}
        for t in self._tasks:
            counts[t.kernel] = counts.get(t.kernel, 0) + 1
        return counts

    def kernels(self) -> Tuple[str, ...]:
        """Distinct kernel names in first-appearance order."""
        seen: Dict[str, None] = {}
        for t in self._tasks:
            seen.setdefault(t.kernel, None)
        return tuple(seen)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[TaskSpec]:
        return iter(self._tasks)

    def __getitem__(self, idx: int) -> TaskSpec:
        return self._tasks[idx]

    def describe(self, limit: Optional[int] = None) -> str:
        """Multi-line rendering in the style of the paper's Fig. 2 listing."""
        rows = []
        stream = self._tasks if limit is None else self._tasks[:limit]
        for t in stream:
            rows.append(f"F{t.task_id} {t.describe()}")
        if limit is not None and len(self._tasks) > limit:
            rows.append(f"... ({len(self._tasks) - limit} more)")
        return "\n".join(rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program({self.name!r}, {len(self)} tasks, {len(self.registry)} refs)"


def renumber(tasks: Iterable[TaskSpec]) -> List[TaskSpec]:
    """Return ``tasks`` with fresh consecutive ids (for program slicing)."""
    out: List[TaskSpec] = []
    counter = itertools.count()
    for t in tasks:
        clone = TaskSpec(
            kernel=t.kernel,
            accesses=t.accesses,
            flops=t.flops,
            priority=t.priority,
            params=dict(t.params),
            label=t.label,
        )
        clone.task_id = next(counter)
        out.append(clone)
    return out
