"""Stall detection policy for the threaded runtime.

A threaded simulation can deadlock in ways the protocol cannot see from the
inside: a race-guard bug leaves the quiesce predicate permanently false, a
lost ``notify`` strands a task that is already at the TEQ front, a dead
worker leaks a claimed task that never completes.  Before this layer the
symptom was a silent hang of :meth:`ThreadedRuntime.run` — every TEQ wait
is open-ended and nothing watched real time.

The watchdog thread (see :mod:`repro.core.threaded`) samples the run's
progress counter — bumped on every claim, TEQ insert/pop, ready-queue
release, and completion — against a real-time budget.  When the budget
expires with no progress:

``on_stall="raise"``
    Capture a structured diagnostic (see :data:`STALL_DIAGNOSTIC_SCHEMA`),
    store it under ``RunMetrics.extra["stall"]``, abort every blocked
    thread, and raise :class:`RuntimeStallError` from ``run()``.
``on_stall="recover"``
    First force a TEQ notification (bypassing injected notify drops) and
    wait with doubling backoff, up to ``recover_attempts`` times — this
    heals pure lost-wakeup stalls, whose shared state is consistent and
    merely unobserved.  Episodes that resume count into
    ``RunMetrics.stall_recoveries``; if no attempt restores progress the
    policy degenerates to ``"raise"``.

The diagnostic document is plain JSON-ready data::

    {"schema": "repro.stall_diagnostic/v1",
     "guard": ..., "mode": ..., "program": ..., "elapsed_s": ...,
     "policy": {"timeout_s": ..., "on_stall": ..., ...},
     "recover_attempts_made": ...,
     "counters": {"n_tasks", "done", "in_flight", "n_ready",
                  "idle", "limbo", "shutdown"},
     "teq": [{"task_id": ..., "end_time": ...}, ...]   # front first
     "workers": [{"worker": 0, "state": "waiting_front",
                  "task_id": ..., "kernel": ...}, ...],
     "faults": {...} | None}
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

__all__ = [
    "STALL_DIAGNOSTIC_SCHEMA",
    "STALL_POLICIES",
    "RuntimeStallError",
    "StallPolicy",
]

#: Schema tag stamped into every stall diagnostic document.
STALL_DIAGNOSTIC_SCHEMA = "repro.stall_diagnostic/v1"

#: Recognised ``on_stall`` behaviours.
STALL_POLICIES = ("raise", "recover")


@dataclass(frozen=True)
class StallPolicy:
    """When and how the watchdog intervenes in a stalled threaded run.

    ``timeout_s`` is the real-time budget: a run that makes no progress
    (no claim, TEQ insert/pop, release, or completion) for this long is
    declared stalled.  ``poll_s`` bounds the watchdog's sampling interval
    (it also adapts to the budget).  ``recover_attempts`` and
    ``recover_backoff_s`` shape the forced-notify retry loop of the
    ``"recover"`` policy; the backoff doubles per attempt.
    """

    timeout_s: float = 60.0
    on_stall: str = "raise"
    poll_s: float = 0.25
    recover_attempts: int = 3
    recover_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive")
        if self.on_stall not in STALL_POLICIES:
            raise ValueError(
                f"unknown on_stall policy {self.on_stall!r}; choose from {STALL_POLICIES}"
            )
        if self.poll_s <= 0.0:
            raise ValueError("poll_s must be positive")
        if self.recover_attempts < 1:
            raise ValueError("recover_attempts must be at least 1")
        if self.recover_backoff_s <= 0.0:
            raise ValueError("recover_backoff_s must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def for_deadline(cls, timeout_s: float, *, on_stall: str = "raise") -> "StallPolicy":
        """A policy sized to an external real-time deadline.

        Callers that supervise a run against a caller-supplied budget — the
        ``repro stress`` CLI, a ``repro serve`` request timeout — want the
        watchdog to fire *within* that budget, which means the sampling
        interval must shrink along with it.  This keeps the quarter-budget
        poll rule in one place instead of at every call site.
        """
        return cls(
            timeout_s=timeout_s,
            on_stall=on_stall,
            poll_s=max(0.005, min(0.25, timeout_s / 4.0)),
        )


class RuntimeStallError(RuntimeError):
    """The threaded runtime made no progress within the watchdog budget.

    ``diagnostic`` carries the structured stall document described in the
    module docstring; the same document is stored under
    ``RunMetrics.extra["stall"]`` when the run carries metrics.
    """

    def __init__(self, message: str, diagnostic: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.diagnostic: Dict[str, Any] = diagnostic or {}
