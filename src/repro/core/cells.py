"""Cell partitioning of the machine model for the parallel event engine.

The paper parallelizes simulation by reusing the scheduler's own worker
threads; the partitioned engine goes one step further and parallelizes the
*event engine* in the style of conservative parallel discrete-event
simulation (PARSIR's per-processor PDES design, Simics' ``serialized`` /
``subsystem`` / ``multicore`` threading modes).  The machine model is cut
into **cells** at the natural per-socket boundary of the Magny-Cours
topology: every worker belongs to exactly one cell, each cell owns its own
event queue and clock, and cells advance under conservative synchronization
with null-message-style horizon updates bounded by a **lookahead** derived
from the minimum time in which one cell can affect another.

Three engine modes hang off this module's :data:`ENGINE_MODES` switch:

``serialized``
    The classic single-queue event loop — byte-identical to the golden
    trace digests, and the default everywhere.
``multicell``
    One thread per cell over per-cell event queues.  Requires an
    exploitable partition (at least two cells); raises otherwise.
``auto``
    ``multicell`` when the machine topology yields an exploitable
    partition, ``serialized`` otherwise (single-socket machines, runs with
    no machine model at all).  The fallback reason is recorded in
    ``RunMetrics.extra``.

Because the superscalar runtimes keep *shared* scheduler state (one ready
queue, one idle-worker pool, one insertion window), any event may touch
state visible to every cell — the safe inter-cell lookahead for state
interaction is therefore zero, and the conservative protocol degenerates
to processing events in global ``(time, sequence)`` order.  That makes
``multicell`` runs deterministic and trace-identical to ``serialized``
runs by construction; the computed lookahead still bounds how far an
*idle* cell's clock may be advanced by horizon updates, and is reported
for diagnostics.  See ``docs/API.md`` ("Partitioned engine") for the full
semantics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.topology import Machine

__all__ = [
    "ENGINE_MODES",
    "CellPlan",
    "backend_duration_floor",
    "compute_lookahead",
    "default_engine_mode",
    "plan_cells",
    "plan_for_run",
    "resolve_engine_mode",
]

#: The three engine modes, in documentation order.
ENGINE_MODES: Tuple[str, ...] = ("serialized", "multicell", "auto")

#: Environment override for the default engine mode (used by the CI matrix
#: to run the whole suite under another mode without touching every call).
_ENV_VAR = "REPRO_ENGINE_MODE"


def default_engine_mode() -> str:
    """``$REPRO_ENGINE_MODE`` if set (validated), else ``"serialized"``."""
    mode = os.environ.get(_ENV_VAR, "serialized")
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"{_ENV_VAR}={mode!r} is not a valid engine mode; "
            f"expected one of {ENGINE_MODES}"
        )
    return mode


@dataclass(frozen=True, slots=True)
class CellPlan:
    """A concrete partition of one run's workers into cells.

    Attributes
    ----------
    n_cells:
        Number of cells (distinct sockets hosting at least one worker).
    cell_of_worker:
        Worker index → cell id, dense 0..n_cells-1 in socket order.
    sockets:
        Cell id → the machine socket that cell models (for reporting).
    """

    n_cells: int
    cell_of_worker: Tuple[int, ...]
    sockets: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("a cell plan needs at least one cell")
        if len(self.sockets) != self.n_cells:
            raise ValueError("sockets must name exactly one socket per cell")
        if not self.cell_of_worker:
            raise ValueError("a cell plan needs at least one worker")
        if any(not 0 <= c < self.n_cells for c in self.cell_of_worker):
            raise ValueError("cell_of_worker references an unknown cell")

    @property
    def n_workers(self) -> int:
        return len(self.cell_of_worker)

    @property
    def exploitable(self) -> bool:
        """Can the multicell engine do anything a single queue cannot?"""
        return self.n_cells >= 2

    def workers_in(self, cell: int) -> Tuple[int, ...]:
        return tuple(w for w, c in enumerate(self.cell_of_worker) if c == cell)

    def to_dict(self) -> dict:
        return {
            "n_cells": self.n_cells,
            "cell_of_worker": list(self.cell_of_worker),
            "sockets": list(self.sockets),
        }


def plan_cells(machine: "Machine", n_workers: int) -> CellPlan:
    """Partition ``n_workers`` workers along ``machine``'s socket boundaries.

    Workers occupy cores ``0..n_workers-1`` in order (the same placement the
    machine backend models), so the partition is simply each worker's socket,
    re-numbered densely.  Raises when the machine cannot seat the workers —
    callers running in ``auto`` mode catch this and fall back to serialized.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    if n_workers > machine.n_cores:
        raise ValueError(
            f"machine {machine.name!r} has {machine.n_cores} cores but the "
            f"run wants {n_workers} workers — no per-socket partition exists"
        )
    sockets_in_use: list = []
    cell_ids = []
    for worker in range(n_workers):
        socket = machine.socket_of(worker)
        if socket not in sockets_in_use:
            sockets_in_use.append(socket)
        cell_ids.append(sockets_in_use.index(socket))
    return CellPlan(
        n_cells=len(sockets_in_use),
        cell_of_worker=tuple(cell_ids),
        sockets=tuple(sockets_in_use),
    )


def backend_duration_floor(backend: object) -> float:
    """A conservative lower bound on any duration ``backend`` can produce.

    Backends may advertise one via a ``duration_floor()`` method; without it
    the floor is 0.0 (lognormal/gamma models have support down to zero, and
    zero is always safe for a conservative protocol).
    """
    floor_fn = getattr(backend, "duration_floor", None)
    if floor_fn is None:
        return 0.0
    floor = float(floor_fn())
    if floor < 0.0:
        raise ValueError(f"backend advertised a negative duration floor {floor!r}")
    return floor


def compute_lookahead(
    insert_cost: float, dispatch_overhead: float, duration_floor: float
) -> float:
    """Minimum virtual time in which one cell can affect another.

    A cross-cell effect is, at the soonest, either the master inserting a
    new task (``insert_cost`` ahead of its clock) or a task dispatched to
    another cell's worker completing there (``dispatch_overhead`` plus the
    smallest kernel duration the backend can draw).  The smaller of the two
    bounds the null-message horizon.
    """
    return min(insert_cost, dispatch_overhead + duration_floor)


def plan_for_run(
    engine_mode: str, machine: Optional["Machine"], n_workers: int
) -> Optional[CellPlan]:
    """The :class:`CellPlan` a run should hand the engine, or ``None``.

    ``serialized`` never partitions; ``auto`` tolerates any obstacle (no
    machine model, oversubscribed machine) and returns ``None`` so the
    engine falls back; ``multicell`` propagates the failure because the
    caller demanded a partition.
    """
    if engine_mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {engine_mode!r}; expected one of {ENGINE_MODES}")
    if engine_mode == "serialized" or machine is None:
        return None
    try:
        return plan_cells(machine, n_workers)
    except ValueError:
        if engine_mode == "multicell":
            raise
        return None


def resolve_engine_mode(
    mode: str, plan: Optional[CellPlan]
) -> Tuple[str, Optional[CellPlan], Optional[str]]:
    """Resolve a requested mode against an (optional) cell plan.

    Returns ``(effective_mode, plan_or_None, fallback_reason_or_None)``.
    ``multicell`` with no exploitable partition raises; ``auto`` falls back
    to ``serialized`` and says why.
    """
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}")
    if mode == "serialized":
        return "serialized", None, None
    if plan is None:
        reason = "no machine topology to partition"
    elif not plan.exploitable:
        reason = f"partition has a single cell ({plan.n_workers} workers on one socket)"
    else:
        return "multicell", plan, None
    if mode == "multicell":
        raise ValueError(f"engine_mode='multicell' needs an exploitable partition: {reason}")
    return "serialized", None, reason
