"""Structure-of-arrays program layout and the calendar event queue.

The object engine (:mod:`repro.schedulers.engine`) spends most of a run
churning per-task Python objects: ``TaskNode`` attribute access, per-insert
hazard analysis through :class:`~repro.schedulers.taskdep.HazardTracker`,
and a binary-heap event set.  This module provides the flat data layer the
array-native engine (:mod:`repro.schedulers.array_engine`) runs on — the
ScaleSimulator approach of keeping simulation state in contiguous arrays so
the event loop touches integers and floats, never objects:

* :class:`SoAProgram` — one-shot conversion of a
  :class:`~repro.core.task.Program` into numpy arrays: per-task kernel ids,
  priorities, widths, static dependency counts, and the successor graph in
  CSR form.  The hazard pass (RaW/WaW/WaR over data addresses) runs once up
  front instead of once per inserted task.
* :class:`CalendarQueue` — a bucketed event set (R. Brown, CACM 1988)
  keyed on ``(time, insertion sequence)``, replacing the binary heap.  Ties
  in time pop in FIFO push order, exactly like the object engine's
  ``(t, seq)`` heap entries, so event order — and therefore every trace —
  is preserved bit-for-bit.

Backend selection plumbing also lives here: :data:`ENGINE_BACKENDS` and
:func:`default_engine_backend` mirror :data:`~repro.core.cells.ENGINE_MODES`
and :func:`~repro.core.cells.default_engine_mode`, with the
``REPRO_ENGINE_BACKEND`` environment variable providing the process-wide
default the CI array lane uses to run the whole suite on the array core.
"""

from __future__ import annotations

import os
from bisect import insort
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .task import Program, TaskSpec

__all__ = [
    "ENGINE_BACKENDS",
    "default_engine_backend",
    "CalendarQueue",
    "SoAProgram",
    "NOT_INSERTED",
    "WAITING",
    "READY",
    "RUNNING",
    "DONE",
]

#: The two event-engine cores, in documentation order.  ``object`` is the
#: classic per-task-object engine; ``array`` is the SoA core in
#: :mod:`repro.schedulers.array_engine`.
ENGINE_BACKENDS: Tuple[str, ...] = ("object", "array")

#: Environment override for the default engine backend (used by the CI
#: matrix to run the whole suite on the array core without touching every
#: call site).
_ENV_VAR = "REPRO_ENGINE_BACKEND"


def default_engine_backend() -> str:
    """``$REPRO_ENGINE_BACKEND`` if set (validated), else ``"object"``."""
    backend = os.environ.get(_ENV_VAR, "object")
    if backend not in ENGINE_BACKENDS:
        raise ValueError(
            f"{_ENV_VAR}={backend!r} is not a valid engine backend; "
            f"expected one of {ENGINE_BACKENDS}"
        )
    return backend


# Integer task states for the SoA engine.  Values are ordered like the
# object engine's TaskState lifecycle; NOT_INSERTED must stay 0 so a fresh
# zeroed state array means "nothing inserted yet".
NOT_INSERTED = 0
WAITING = 1
READY = 2
RUNNING = 3
DONE = 4


class CalendarQueue:
    """Bucketed future-event set ordered by ``(time, push sequence)``.

    Events hash into ``n_buckets`` buckets of ``bucket_width`` simulated
    seconds each (``bucket index = floor(t / width) mod n_buckets``); each
    bucket keeps its events sorted, so a pop scans at most one lap of the
    calendar starting at the bucket of the last popped time and falls back
    to a direct minimum search when the calendar is sparse.  The bucket
    count adapts to the population: the queue starts as a single bucket —
    one sorted list, the cheapest structure for the small event sets the
    engine produces (at most one pending insertion plus one completion per
    worker) — and spreads into a true multi-bucket calendar once more than
    ``grow_threshold`` events are pending, re-deriving the width from the
    occupied time span at every resize so pops stay O(1) amortised.

    Ties in time pop in FIFO push order via a monotonically increasing
    per-queue sequence number — the same discipline as the object engine's
    ``(t, seq)`` heap entries, which is what makes the array engine's event
    order (and traces) bit-identical.  Payloads are opaque integers.
    """

    __slots__ = (
        "_buckets",
        "_n_buckets",
        "_width",
        "_min_width",
        "_grow",
        "_size",
        "_seq",
        "_last_t",
    )

    def __init__(
        self,
        *,
        n_buckets: int = 1,
        bucket_width: float = 1e-5,
        min_bucket_width: float = 1e-12,
        grow_threshold: int = 64,
    ) -> None:
        if n_buckets < 1:
            raise ValueError("n_buckets must be at least 1")
        if bucket_width <= 0.0 or min_bucket_width <= 0.0:
            raise ValueError("bucket widths must be positive")
        if grow_threshold < 2:
            raise ValueError("grow_threshold must be at least 2")
        self._n_buckets = n_buckets
        self._width = max(bucket_width, min_bucket_width)
        self._min_width = min_bucket_width
        self._grow = grow_threshold
        self._buckets: List[List[Tuple[float, int, int]]] = [
            [] for _ in range(n_buckets)
        ]
        self._size = 0
        self._seq = 0
        self._last_t = 0.0

    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        return self._size

    @property
    def n_buckets(self) -> int:
        return self._n_buckets

    @property
    def bucket_width(self) -> float:
        return self._width

    def push(self, t: float, payload: int) -> None:
        """Insert an event; equal times pop in push order."""
        if t != t or t == float("inf") or t == float("-inf"):
            raise ValueError(f"event time must be finite, got {t!r}")
        entry = (t, self._seq, payload)
        self._seq += 1
        n = self._n_buckets
        if n == 1:
            insort(self._buckets[0], entry)
        else:
            insort(self._buckets[int(t / self._width) % n], entry)
        size = self._size + 1
        self._size = size
        # The pop scan starts at _last_t's bucket and relies on it lower-
        # bounding every pending event; a push into the past rewinds it.
        if t < self._last_t:
            self._last_t = t
        if size > self._grow and size > 2 * n:
            self._resize(max(2 * n, size))

    def pop(self) -> Tuple[float, int]:
        """Remove and return ``(t, payload)`` of the earliest event."""
        size = self._size
        if size == 0:
            raise IndexError("pop from an empty CalendarQueue")
        self._size = size - 1
        if self._n_buckets == 1:
            t, _seq, payload = self._buckets[0].pop(0)
            self._last_t = t
            return t, payload
        width = self._width
        n = self._n_buckets
        buckets = self._buckets
        start_day = int(self._last_t / width)
        best: Optional[Tuple[float, int, int]] = None
        best_bucket = -1
        for lap in range(n):
            day = start_day + lap
            bucket = buckets[day % n]
            if not bucket:
                continue
            head = bucket[0]
            # An event whose absolute day matches this bucket's position in
            # the current lap is guaranteed minimal: every earlier bucket on
            # this lap was empty and later days only hold later times.
            if int(head[0] / width) == day:
                best, best_bucket = head, day % n
                break
            if best is None or head < best:
                best, best_bucket = head, day % n
        if best is None:
            # No head fell inside the current lap's windows: direct minimum
            # search across bucket heads.
            for i, bucket in enumerate(buckets):
                if bucket and (best is None or bucket[0] < best):
                    best, best_bucket = bucket[0], i
        assert best is not None  # _size > 0 guarantees a head exists
        buckets[best_bucket].pop(0)
        self._last_t = best[0]
        if self._size < self._n_buckets // 2:
            self._resize(max(1, self._n_buckets // 2))
        return best[0], best[2]

    def front(self) -> Tuple[float, int]:
        """``(t, payload)`` of the earliest event without removing it."""
        if self._size == 0:
            raise IndexError("front of an empty CalendarQueue")
        best: Optional[Tuple[float, int, int]] = None
        for bucket in self._buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        assert best is not None
        return best[0], best[2]

    def snapshot(self) -> List[Tuple[float, int]]:
        """All pending events as ``(t, payload)`` in pop order."""
        merged = sorted(e for bucket in self._buckets for e in bucket)
        return [(t, payload) for t, _seq, payload in merged]

    def _resize(self, n_buckets: int) -> None:
        events = [e for bucket in self._buckets for e in bucket]
        if events:
            lo = min(e[0] for e in events)
            hi = max(e[0] for e in events)
            # Aim for ~1 event per bucket across the occupied span; clamp so
            # degenerate spans (all-equal times) never divide to zero.
            self._width = max((hi - lo) / max(1, len(events)), self._min_width)
        self._n_buckets = n_buckets
        buckets: List[List[Tuple[float, int, int]]] = [[] for _ in range(n_buckets)]
        width = self._width
        for entry in events:
            insort(buckets[int(entry[0] / width) % n_buckets], entry)
        self._buckets = buckets


class SoAProgram:
    """A :class:`~repro.core.task.Program` flattened into numpy arrays.

    The conversion runs the full hazard analysis (the same RaW/WaW/WaR
    rules as :class:`~repro.schedulers.taskdep.HazardTracker`, keyed on
    ``DataRef.addr``) once, ahead of simulation, producing:

    ``kernel_ids`` / ``kernel_names``
        Per-task kernel as an index into the unique-name table (first
        appearance order), so the hot loop compares ints, not strings.
    ``priorities`` / ``widths`` / ``labels``
        Scheduling inputs lifted out of ``TaskSpec``.
    ``n_preds``
        Static in-degree of each task — the total number of distinct
        predecessor tasks its accesses hazard against.
    ``succ_indptr`` / ``succ_indices``
        The successor graph in CSR form; ``succ_indices[indptr[i]:
        indptr[i+1]]`` lists task ``i``'s successors in ascending task id —
        the same order the object engine discovers them, because tasks are
        inserted (and therefore appended to predecessor lists) in id order.
    ``preds_tuples``
        Sorted predecessor tuples per task, built only when
        ``keep_preds=True`` (the array engine needs them to replay the
        ``task_deps`` probe hook byte-for-byte).
    """

    __slots__ = (
        "n_tasks",
        "specs",
        "kernel_names",
        "kernel_ids",
        "priorities",
        "widths",
        "labels",
        "n_preds",
        "succ_indptr",
        "succ_indices",
        "preds_tuples",
        "max_width",
    )

    def __init__(self, program: "Program", *, keep_preds: bool = False) -> None:
        specs: List["TaskSpec"] = list(program)
        n = len(specs)
        self.n_tasks = n
        self.specs = specs

        kernel_index: Dict[str, int] = {}
        kernel_ids = np.empty(n, dtype=np.int32)
        priorities = np.empty(n, dtype=np.int64)
        widths = np.empty(n, dtype=np.int32)
        labels: List[str] = []

        # Hazard state per data address, mirroring HazardTracker._RefState:
        # the last writer (or -1) and the readers since that write.
        last_writer: Dict[int, int] = {}
        readers: Dict[int, Set[int]] = {}
        n_preds = np.zeros(n, dtype=np.int64)
        succs: List[List[int]] = [[] for _ in range(n)]
        preds_tuples: Optional[List[Tuple[int, ...]]] = [() for _ in range(n)] if keep_preds else None

        for tid, spec in enumerate(specs):
            kid = kernel_index.setdefault(spec.kernel, len(kernel_index))
            kernel_ids[tid] = kid
            priorities[tid] = spec.priority
            widths[tid] = spec.width
            labels.append(spec.label)

            preds: Set[int] = set()
            accesses = spec.accesses
            # Pass 1: collect hazards against the pre-task state.
            for acc in accesses:
                reads, writes = acc.mode.rw_flags
                addr = acc.ref.addr
                lw = last_writer.get(addr, -1)
                if reads and lw >= 0 and lw != tid:
                    preds.add(lw)
                if writes:
                    if lw >= 0 and lw != tid:
                        preds.add(lw)
                    for r in readers.get(addr, ()):
                        if r != tid:
                            preds.add(r)
            # Pass 2: advance the state with this task's own accesses.
            for acc in accesses:
                reads, writes = acc.mode.rw_flags
                addr = acc.ref.addr
                if writes:
                    last_writer[addr] = tid
                    rd = readers.get(addr)
                    if rd is not None:
                        rd.clear()
                elif reads:
                    readers.setdefault(addr, set()).add(tid)
            n_preds[tid] = len(preds)
            for p in preds:
                succs[p].append(tid)
            if preds_tuples is not None:
                preds_tuples[tid] = tuple(sorted(preds))

        indptr = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum([len(s) for s in succs], out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        for tid, s in enumerate(succs):
            indices[indptr[tid] : indptr[tid + 1]] = s

        self.kernel_names: List[str] = list(kernel_index)
        self.kernel_ids = kernel_ids
        self.priorities = priorities
        self.widths = widths
        self.labels = labels
        self.n_preds = n_preds
        self.succ_indptr = indptr
        self.succ_indices = indices
        self.preds_tuples = preds_tuples
        self.max_width = int(widths.max()) if n else 1

    def initial_ready_mask(self) -> np.ndarray:
        """Boolean mask of tasks with no static predecessors."""
        return self.n_preds == 0

    @classmethod
    def for_program(cls, program: "Program", *, keep_preds: bool = False) -> "SoAProgram":
        """Cached conversion of ``program``, rebuilt only when it grows.

        The flat arrays are immutable once built and programs are
        append-only (``task_id`` is assigned serially at :meth:`Program.add`
        time), so a previous conversion is reused whenever the task count
        still matches — which hoists the hazard pass out of repeated runs of
        the same program (benchmark repeats, parameter sweeps).  A
        ``keep_preds=True`` build is a superset and satisfies later
        ``keep_preds=False`` requests.
        """
        cached = getattr(program, "_soa_cache", None)
        if (
            cached is not None
            and cached.n_tasks == len(program)
            and (not keep_preds or cached.preds_tuples is not None)
        ):
            return cached
        soa = cls(program, keep_preds=keep_preds)
        try:
            program._soa_cache = soa
        except AttributeError:  # pragma: no cover - slotted Program stand-ins
            pass
        return soa
