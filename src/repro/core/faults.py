"""Deterministic fault injection for the threaded runtime.

The §V-E race guards and the stall watchdog are only trustworthy if they can
be exercised on demand: a race window that opens once in a thousand runs is
untestable, and a watchdog that has never seen a deadlock is decoration.
A :class:`FaultPlan` describes, as plain frozen data, the faults one
threaded run should suffer:

``dispatch_delay`` / ``delay_kernels``
    Real-time sleep between a worker claiming a task and the task body
    starting.  Widens the §V-E race window (the Fig. 5 experiment injects
    this around task C's dispatch).
``wait_delay`` / ``wait_delay_kernels``
    Real-time sleep between a simulated task registering in the Task
    Execution Queue (§V-D step 3) and it starting to wait for the front
    (step 4).  Holds the front slot occupied so later tasks demonstrably
    queue up behind it — the window in which a lost wake-up strands them.
``drop_notify_rate``
    Probability that one TEQ wake-up (``notify_all`` after an insert, a
    pop, or an external guard-state change) is silently swallowed.  A rate
    of ``1.0`` loses every notification: waiters strand deterministically
    and only the watchdog's forced notify can free them.
``kill_worker`` / ``kill_after_claims``
    Worker ``kill_worker`` dies (its thread exits) the moment it claims its
    ``kill_after_claims``-th task.  The claimed task is leaked: it never
    registers in the TEQ and never completes, so the run stalls — the
    "worker death" failure PDES engines must self-diagnose.

Plans are immutable and seeded; the mutable per-run companion
:class:`FaultState` owns the RNG and the counters, so one plan can be
replayed across runs and guards with identical fault sequences.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["FaultPlan", "FaultState"]


@dataclass(frozen=True)
class FaultPlan:
    """Immutable description of the faults to inject into one threaded run."""

    dispatch_delay: float = 0.0
    delay_kernels: Optional[Tuple[str, ...]] = None
    wait_delay: float = 0.0
    wait_delay_kernels: Optional[Tuple[str, ...]] = None
    drop_notify_rate: float = 0.0
    kill_worker: Optional[int] = None
    kill_after_claims: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dispatch_delay < 0.0 or self.wait_delay < 0.0:
            raise ValueError("fault delays must be non-negative")
        if not 0.0 <= self.drop_notify_rate <= 1.0:
            raise ValueError("drop_notify_rate must be within [0, 1]")
        if self.kill_worker is not None and self.kill_worker < 0:
            raise ValueError("kill_worker must be a worker index")
        if self.kill_after_claims < 1:
            raise ValueError("kill_after_claims must be at least 1")
        for name in ("delay_kernels", "wait_delay_kernels"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(value))

    def active(self) -> bool:
        """Does this plan inject anything at all?"""
        return (
            self.dispatch_delay > 0.0
            or self.wait_delay > 0.0
            or self.drop_notify_rate > 0.0
            or self.kill_worker is not None
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (stall diagnostics embed the active plan)."""
        return asdict(self)


class FaultState:
    """Mutable per-run companion of a :class:`FaultPlan`: RNG and counters."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._lock = threading.Lock()
        self._claims: Dict[int, int] = {}
        self.notify_drops = 0

    def dispatch_delay(self, kernel: str) -> float:
        """Seconds to stall between claim and body start for ``kernel``."""
        p = self.plan
        if p.dispatch_delay <= 0.0:
            return 0.0
        if p.delay_kernels is not None and kernel not in p.delay_kernels:
            return 0.0
        return p.dispatch_delay

    def wait_delay(self, kernel: str) -> float:
        """Seconds to stall between TEQ insert and the front wait."""
        p = self.plan
        if p.wait_delay <= 0.0:
            return 0.0
        if p.wait_delay_kernels is not None and kernel not in p.wait_delay_kernels:
            return 0.0
        return p.wait_delay

    def drop_notify(self) -> bool:
        """Should the next TEQ notification be swallowed?"""
        p = self.plan
        if p.drop_notify_rate <= 0.0:
            return False
        with self._lock:
            if p.drop_notify_rate >= 1.0 or self._rng.random() < p.drop_notify_rate:
                self.notify_drops += 1
                return True
        return False

    def should_die(self, worker: int) -> bool:
        """Record one claim by ``worker``; ``True`` when it must now die."""
        p = self.plan
        if p.kill_worker is None or worker != p.kill_worker:
            return False
        with self._lock:
            n = self._claims.get(worker, 0) + 1
            self._claims[worker] = n
        return n == p.kill_after_claims
