"""SimulationBackend: the paper's simulator as a duration source.

This is the event-driven realisation of the paper's method: the scheduler
runs *for real* — it performs its hazard analysis, applies its policies and
pays its overheads — but each task's body is replaced by a draw from the
fitted per-kernel timing model ("an approximate execution time such as the
distribution-based estimator", §V-D).  The discrete-event engine processes
completions in virtual-time order, so the ordering guarantee that the
threaded implementation obtains from the Task Execution Queue holds by
construction here; the mechanical TEQ protocol lives in
:mod:`repro.core.threaded`.

Optionally the backend adds the warm-up penalty to each worker's first task,
mirroring the real machine's MKL initialisation so that simulated traces
reproduce the long leading kernels visible in the paper's Fig. 6.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import numpy as np

from ..kernels.timing import KernelModelSet
from ..schedulers.base import TaskNode

__all__ = ["SimulationBackend", "HeterogeneousSimulationBackend"]


class SimulationBackend:
    """Duration source drawing from fitted kernel timing models."""

    def __init__(
        self,
        models: KernelModelSet,
        *,
        warmup_penalty: float = 0.0,
        batched: bool = True,
    ) -> None:
        if warmup_penalty < 0:
            raise ValueError("warmup_penalty must be non-negative")
        self.models = models
        self.warmup_penalty = warmup_penalty
        self.batched = batched
        self._rng: Optional[np.random.Generator] = None
        self._sampler = None
        self._warmed: Set[int] = set()

    def reset(self, rng: np.random.Generator, n_workers: int) -> None:
        self._rng = rng
        # Sampler choice never changes the draw sequence (the batched one is
        # bit-identical to per-call sampling); ``batched=False`` exists so
        # tests can pin the reference path and compare traces.
        self._sampler = self.models.make_sampler(rng, batched=self.batched)
        self._warmed = set()

    def duration(self, node: TaskNode, worker: int, now: float, active_workers: int) -> float:
        sampler = self._sampler
        if sampler is None:
            raise RuntimeError("SimulationBackend.duration called before reset()")
        d = sampler.draw(node.kernel)
        if self.warmup_penalty > 0.0 and worker not in self._warmed:
            self._warmed.add(worker)
            d += self.warmup_penalty
        return d


class HeterogeneousSimulationBackend:
    """Simulation backend for heterogeneous machines (paper §VII extension).

    Kernel timing models are fitted *per worker kind*: on a CPU+GPU machine
    a DGEMM drawn for a GPU worker comes from the GPU-calibrated
    distribution.  ``worker_kinds`` maps worker index to its kind label;
    ``models`` maps each kind to its :class:`KernelModelSet` (see
    :func:`repro.machine.calibration.collect_samples_by_kind`).
    """

    def __init__(
        self,
        models: Dict[str, KernelModelSet],
        worker_kinds: Sequence[str],
    ) -> None:
        missing = set(worker_kinds) - set(models)
        if missing:
            raise ValueError(f"no models for worker kinds: {sorted(missing)}")
        self.models = dict(models)
        self.worker_kinds = tuple(worker_kinds)
        self._rng: Optional[np.random.Generator] = None

    def reset(self, rng: np.random.Generator, n_workers: int) -> None:
        if n_workers != len(self.worker_kinds):
            raise ValueError(
                f"scheduler has {n_workers} workers, worker_kinds describes "
                f"{len(self.worker_kinds)}"
            )
        self._rng = rng

    def duration(self, node: TaskNode, worker: int, now: float, active_workers: int) -> float:
        if self._rng is None:
            raise RuntimeError(
                "HeterogeneousSimulationBackend.duration called before reset()"
            )
        kind = self.worker_kinds[worker]
        return self.models[kind].duration(node.kernel, self._rng)
