"""Simulator core: task model, clock, TEQ, backends, and the high-level API."""

from .cells import ENGINE_MODES, CellPlan, default_engine_mode, plan_cells, plan_for_run
from .clock import SimClock
from .soa import ENGINE_BACKENDS, CalendarQueue, SoAProgram, default_engine_backend
from .faults import FaultPlan, FaultState
from .metrics import METRICS_SCHEMA, RunMetrics
from .simbackend import HeterogeneousSimulationBackend, SimulationBackend
from .simulator import ValidationResult, run_real, simulate, validate
from .task import READ, RW, WRITE, Access, AccessMode, DataRef, DataRegistry, Program, TaskSpec
from .teq import TaskExecutionQueue
from .watchdog import (
    STALL_DIAGNOSTIC_SCHEMA,
    STALL_POLICIES,
    RuntimeStallError,
    StallPolicy,
)

__all__ = [
    "ENGINE_MODES",
    "ENGINE_BACKENDS",
    "CalendarQueue",
    "SoAProgram",
    "default_engine_backend",
    "CellPlan",
    "default_engine_mode",
    "plan_cells",
    "plan_for_run",
    "SimClock",
    "FaultPlan",
    "FaultState",
    "METRICS_SCHEMA",
    "RunMetrics",
    "STALL_DIAGNOSTIC_SCHEMA",
    "STALL_POLICIES",
    "RuntimeStallError",
    "StallPolicy",
    "HeterogeneousSimulationBackend",
    "SimulationBackend",
    "ValidationResult",
    "run_real",
    "simulate",
    "validate",
    "READ",
    "RW",
    "WRITE",
    "Access",
    "AccessMode",
    "DataRef",
    "DataRegistry",
    "Program",
    "TaskSpec",
    "TaskExecutionQueue",
]
