"""Simulator core: task model, clock, TEQ, backends, and the high-level API."""

from .clock import SimClock
from .metrics import METRICS_SCHEMA, RunMetrics
from .simbackend import HeterogeneousSimulationBackend, SimulationBackend
from .simulator import ValidationResult, run_real, simulate, validate
from .task import READ, RW, WRITE, Access, AccessMode, DataRef, DataRegistry, Program, TaskSpec
from .teq import TaskExecutionQueue

__all__ = [
    "SimClock",
    "METRICS_SCHEMA",
    "RunMetrics",
    "HeterogeneousSimulationBackend",
    "SimulationBackend",
    "ValidationResult",
    "run_real",
    "simulate",
    "validate",
    "READ",
    "RW",
    "WRITE",
    "Access",
    "AccessMode",
    "DataRef",
    "DataRegistry",
    "Program",
    "TaskSpec",
    "TaskExecutionQueue",
]
