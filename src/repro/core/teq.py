"""The Task Execution Queue (paper §V-C, "the key element of the simulation
environment").

A priority queue ordered by *simulated completion time*.  Simulated tasks
enter the queue when they compute their completion time and may only return
control to the scheduler when they reach the front — guaranteeing that the
scheduler observes task completions in simulated-time order even though the
worker threads hosting those tasks run in arbitrary real-time order.

The queue is thread-safe and supports the operations the protocol needs:
``insert``, ``wait_until_front`` / ``pop_front``, and the atomic
:meth:`wait_pop_front` the threaded runtime uses (waiting and popping as
separate steps leaves a window in which a newly inserted task can steal the
front and turn the pop into a crash).  A condition variable wakes blocked
tasks whenever the front changes.

Robustness hooks: ``notify_fault`` lets a fault plan swallow wake-ups (to
rehearse lost-notify deadlocks), ``escape`` predicates let the stall
watchdog abort open-ended waits, and :meth:`snapshot` feeds the stall
diagnostic.  A :class:`~repro.obs.probe.Probe` can additionally observe
every insert/pop with the queue depth, under the queue's own lock so the
recorded depths are exact.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable, List, Optional, Tuple

from ..obs.probe import active_probe
from .metrics import RunMetrics

__all__ = ["TaskExecutionQueue"]


class TaskExecutionQueue:
    """Thread-safe priority queue keyed by simulated completion time.

    ``metrics``, when given, accumulates TEQ traffic (inserts, pops, peak
    depth, dropped notifications) under the queue's own lock.
    ``notify_fault`` is the fault-injection hook: a callable consulted on
    every notification; returning ``True`` swallows that wake-up.
    ``probe`` (see :mod:`repro.obs.probe`) observes inserts and pops with
    the exact post-operation depth; ``now_fn``, when given, timestamps
    insert events with the current virtual time (otherwise the task's
    completion time is used — pops always carry the popped end time, since
    the runtime advances the clock to it just before popping).
    """

    def __init__(
        self,
        metrics: Optional[RunMetrics] = None,
        *,
        notify_fault: Optional[Callable[[], bool]] = None,
        probe=None,
        now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self._heap: List[Tuple[float, int, int]] = []  # (end_time, seq, task_id)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._seq = itertools.count()
        self.metrics = metrics
        self.notify_fault = notify_fault
        self._probe = active_probe(probe)
        self._now = now_fn

    def _notify_locked(self, *, force: bool = False) -> None:
        """Wake waiters; the fault hook may swallow non-forced wake-ups."""
        if not force and self.notify_fault is not None and self.notify_fault():
            if self.metrics is not None:
                self.metrics.teq_notify_drops += 1
            return
        self._cond.notify_all()

    def insert(self, task_id: int, end_time: float) -> None:
        """Add a task with its simulated completion time."""
        with self._cond:
            seq = next(self._seq)
            heapq.heappush(self._heap, (end_time, seq, task_id))
            if self.metrics is not None:
                self.metrics.teq_inserts += 1
                if len(self._heap) > self.metrics.peak_teq_depth:
                    self.metrics.peak_teq_depth = len(self._heap)
            if self._probe is not None:
                t = self._now() if self._now is not None else end_time
                self._probe.teq_insert(t, task_id, len(self._heap))
            # Waiters only test their at-front status, so an insert that does
            # not displace the front cannot satisfy any of them; skipping the
            # broadcast avoids a thundering herd on every registration.
            # External guard-state changes get their own notify() calls.
            if self._heap[0][1] == seq:
                self._notify_locked()

    def front(self) -> Optional[int]:
        """Task id currently at the front (soonest completion), or ``None``."""
        with self._lock:
            return self._heap[0][2] if self._heap else None

    def front_end_time(self) -> Optional[float]:
        with self._lock:
            return self._heap[0][0] if self._heap else None

    def pop_front(self, task_id: int) -> float:
        """Remove ``task_id`` from the front; returns its completion time.

        Raises ``RuntimeError`` if ``task_id`` is not at the front — the
        protocol requires tasks to wait their turn.
        """
        with self._cond:
            if not self._heap or self._heap[0][2] != task_id:
                raise RuntimeError(
                    f"task {task_id} attempted to pop while not at the front"
                )
            return self._pop_locked()

    def _pop_locked(self) -> float:
        end, _, tid = heapq.heappop(self._heap)
        if self.metrics is not None:
            self.metrics.teq_pops += 1
        if self._probe is not None:
            self._probe.teq_pop(end, tid, len(self._heap))
        self._notify_locked()
        return end

    def wait_until_front(
        self,
        task_id: int,
        *,
        timeout: Optional[float] = None,
        predicate=None,
        escape: Optional[Callable[[], bool]] = None,
    ) -> bool:
        """Block until ``task_id`` is at the front (and ``predicate()`` holds).

        ``predicate`` is the race-condition guard hook: when supplied, the
        task additionally waits until it returns ``True`` (e.g. QUARK's
        bookkeeping-complete query).  ``escape`` is the watchdog's abort
        hatch: when it returns ``True`` the wait ends regardless of the
        front (callers must re-check it).  Returns ``False`` on timeout.
        """
        with self._cond:
            return self._cond.wait_for(
                self._ready_check(task_id, predicate, escape), timeout=timeout
            )

    def wait_pop_front(
        self,
        task_id: int,
        *,
        timeout: Optional[float] = None,
        predicate=None,
        escape: Optional[Callable[[], bool]] = None,
        before_pop: Optional[Callable[[], None]] = None,
    ) -> Optional[float]:
        """Atomically wait until ``task_id`` may return, then pop it.

        The front check and the pop happen under one lock hold, closing the
        race in which another task with an earlier completion time is
        inserted between the wake-up and the pop.  ``before_pop`` runs under
        the queue lock just before the pop (the runtime advances the shared
        clock there, preserving the §V-D ordering "advance, then pop").
        Returns the completion time, or ``None`` on timeout or escape.
        """
        with self._cond:
            ok = self._ready_check(task_id, predicate, escape)
            if not self._cond.wait_for(ok, timeout=timeout):
                return None
            if escape is not None and escape():
                return None
            if before_pop is not None:
                before_pop()
            return self._pop_locked()

    def _ready_check(self, task_id, predicate, escape) -> Callable[[], bool]:
        def ok() -> bool:
            if escape is not None and escape():
                return True
            at_front = bool(self._heap) and self._heap[0][2] == task_id
            return at_front and (predicate() if predicate is not None else True)

        return ok

    def notify(self, *, force: bool = False) -> None:
        """Wake waiters to re-evaluate (used when external guard state changes).

        ``force=True`` bypasses the fault hook — the stall watchdog's
        recovery notify must not itself be droppable.
        """
        with self._cond:
            self._notify_locked(force=force)

    def snapshot(self) -> List[Tuple[int, float]]:
        """``(task_id, end_time)`` pairs in completion order (front first)."""
        with self._lock:
            entries = list(self._heap)
        # Sort outside the lock: the snapshot feeds diagnostics, and an
        # O(n log n) hold would stall every worker at the insert/pop path.
        return [(tid, end) for end, _, tid in sorted(entries)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
