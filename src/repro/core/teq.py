"""The Task Execution Queue (paper §V-C, "the key element of the simulation
environment").

A priority queue ordered by *simulated completion time*.  Simulated tasks
enter the queue when they compute their completion time and may only return
control to the scheduler when they reach the front — guaranteeing that the
scheduler observes task completions in simulated-time order even though the
worker threads hosting those tasks run in arbitrary real-time order.

The queue is thread-safe and supports the two operations the protocol needs:
``insert`` and ``wait_until_front`` / ``pop_front``.  A condition variable
wakes blocked tasks whenever the front changes.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import List, Optional, Tuple

from .metrics import RunMetrics

__all__ = ["TaskExecutionQueue"]


class TaskExecutionQueue:
    """Thread-safe priority queue keyed by simulated completion time.

    ``metrics``, when given, accumulates TEQ traffic (inserts, pops, peak
    depth) under the queue's own lock.
    """

    def __init__(self, metrics: Optional[RunMetrics] = None) -> None:
        self._heap: List[Tuple[float, int, int]] = []  # (end_time, seq, task_id)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._seq = itertools.count()
        self.metrics = metrics

    def insert(self, task_id: int, end_time: float) -> None:
        """Add a task with its simulated completion time."""
        with self._cond:
            heapq.heappush(self._heap, (end_time, next(self._seq), task_id))
            if self.metrics is not None:
                self.metrics.teq_inserts += 1
                if len(self._heap) > self.metrics.peak_teq_depth:
                    self.metrics.peak_teq_depth = len(self._heap)
            self._cond.notify_all()

    def front(self) -> Optional[int]:
        """Task id currently at the front (soonest completion), or ``None``."""
        with self._lock:
            return self._heap[0][2] if self._heap else None

    def front_end_time(self) -> Optional[float]:
        with self._lock:
            return self._heap[0][0] if self._heap else None

    def pop_front(self, task_id: int) -> float:
        """Remove ``task_id`` from the front; returns its completion time.

        Raises ``RuntimeError`` if ``task_id`` is not at the front — the
        protocol requires tasks to wait their turn.
        """
        with self._cond:
            if not self._heap or self._heap[0][2] != task_id:
                raise RuntimeError(
                    f"task {task_id} attempted to pop while not at the front"
                )
            end, _, _ = heapq.heappop(self._heap)
            if self.metrics is not None:
                self.metrics.teq_pops += 1
            self._cond.notify_all()
            return end

    def wait_until_front(
        self,
        task_id: int,
        *,
        timeout: Optional[float] = None,
        predicate=None,
    ) -> bool:
        """Block until ``task_id`` is at the front (and ``predicate()`` holds).

        ``predicate`` is the race-condition guard hook: when supplied, the
        task additionally waits until it returns ``True`` (e.g. QUARK's
        bookkeeping-complete query).  Returns ``False`` on timeout.
        """
        with self._cond:
            def ok() -> bool:
                at_front = bool(self._heap) and self._heap[0][2] == task_id
                return at_front and (predicate() if predicate is not None else True)

            return self._cond.wait_for(ok, timeout=timeout)

    def notify(self) -> None:
        """Wake waiters to re-evaluate (used when external guard state changes)."""
        with self._cond:
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
