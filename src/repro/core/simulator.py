"""High-level simulation API: real runs, simulated runs, validation.

This is the user-facing surface of the reproduction:

* :func:`run_real` — execute a program on a scheduler with durations from
  the machine model (the ground truth of our experiments);
* :func:`simulate` — execute the *same* scheduler with task bodies replaced
  by timing-model draws (the paper's simulator);
* :func:`validate` — do both and compare, returning the trace-comparison
  report plus achieved GFLOP/s on each side — the quantity plotted in the
  paper's Figs. 8-10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..kernels.timing import KernelModelSet
from ..machine.backend import MachineBackend
from ..machine.topology import Machine, get_machine
from ..schedulers.base import SchedulerBase
from ..trace.compare import TraceComparison, compare_traces
from ..trace.events import Trace
from .cells import plan_for_run
from .metrics import RunMetrics
from .simbackend import SimulationBackend
from .task import Program

__all__ = ["run_real", "simulate", "ValidationResult", "validate"]


def run_real(
    program: Program,
    scheduler: SchedulerBase,
    machine: Union[Machine, str, MachineBackend],
    *,
    seed: int = 0,
    metrics: Optional[RunMetrics] = None,
    probe=None,
    engine_mode: str = "serialized",
    engine_backend: Optional[str] = None,
) -> Trace:
    """A ground-truth run: scheduler + machine-model durations.

    ``metrics`` and ``probe`` are the observability hooks: run counters and
    the scheduler-internal event stream (:mod:`repro.obs`).  Neither changes
    the trace, and neither does ``engine_mode`` — the partitioned engine
    (:mod:`repro.core.cells`) cuts the machine along its socket boundaries
    but processes events in the same global order, and neither does
    ``engine_backend`` — ``"array"`` runs the identical simulation on the
    SoA core (``None`` defers to ``$REPRO_ENGINE_BACKEND``).
    """
    backend = machine if isinstance(machine, MachineBackend) else MachineBackend(machine)
    cells = plan_for_run(engine_mode, backend.machine, scheduler.n_workers)
    return scheduler.run(
        program, backend, seed=seed, trace_meta={"mode": "real"},
        metrics=metrics, probe=probe, engine_mode=engine_mode, cells=cells,
        engine_backend=engine_backend,
    )


def simulate(
    program: Program,
    scheduler: SchedulerBase,
    models: KernelModelSet,
    *,
    seed: int = 0,
    warmup_penalty: float = 0.0,
    metrics: Optional[RunMetrics] = None,
    probe=None,
    engine_mode: str = "serialized",
    machine: Optional[Union[Machine, str]] = None,
    engine_backend: Optional[str] = None,
) -> Trace:
    """A simulated run: scheduler + timing-model durations (paper §V).

    ``warmup_penalty`` optionally reproduces the per-worker first-kernel
    initialisation cost in the simulated trace (the paper notes its absence
    as one of the two visible differences between Figs. 6 and 7).
    ``metrics`` / ``probe`` observe the run without perturbing it.
    ``machine`` supplies the topology the partitioned engine cuts into
    cells when ``engine_mode`` is not ``serialized``; without one, ``auto``
    falls back to the serialized loop (a simulated run does not otherwise
    need a machine model).  ``engine_backend`` selects the engine
    implementation (``"object"``/``"array"``; ``None`` defers to
    ``$REPRO_ENGINE_BACKEND``).  Every mode and backend produces the same
    trace.
    """
    backend = SimulationBackend(models, warmup_penalty=warmup_penalty)
    topo = get_machine(machine) if isinstance(machine, str) else machine
    cells = plan_for_run(engine_mode, topo, scheduler.n_workers)
    return scheduler.run(
        program, backend, seed=seed, trace_meta={"mode": "simulated"},
        metrics=metrics, probe=probe, engine_mode=engine_mode, cells=cells,
        engine_backend=engine_backend,
    )


@dataclass
class ValidationResult:
    """Outcome of one real-vs-simulated validation experiment."""

    real: Trace
    simulated: Trace
    comparison: TraceComparison
    gflops_real: float
    gflops_sim: float

    @property
    def error_percent(self) -> float:
        """Unsigned relative makespan (equivalently GFLOP/s) error, percent."""
        return self.comparison.abs_error_percent

    def report(self) -> str:
        return (
            f"performance: real={self.gflops_real:.2f} GFLOP/s "
            f"sim={self.gflops_sim:.2f} GFLOP/s "
            f"error={self.error_percent:.2f}%\n" + self.comparison.report()
        )


def validate(
    program: Program,
    scheduler: SchedulerBase,
    machine: Union[Machine, str, MachineBackend],
    models: KernelModelSet,
    *,
    seed_real: int = 1,
    seed_sim: int = 2,
    warmup_penalty: float = 0.0,
    metrics_real: Optional[RunMetrics] = None,
    metrics_sim: Optional[RunMetrics] = None,
) -> ValidationResult:
    """Run real and simulated executions of ``program`` and compare them.

    Distinct seeds are deliberate: the paper's runs and simulations are
    *different stochastic realisations* whose agreement is the claim under
    test, so validating with shared randomness would be self-deception.
    ``metrics_real`` / ``metrics_sim``, when given, collect each side's run
    counters.
    """
    real = run_real(program, scheduler, machine, seed=seed_real, metrics=metrics_real)
    sim = simulate(
        program, scheduler, models, seed=seed_sim, warmup_penalty=warmup_penalty,
        metrics=metrics_sim,
    )
    comparison = compare_traces(real, sim)
    flops = program.total_flops
    return ValidationResult(
        real=real,
        simulated=sim,
        comparison=comparison,
        gflops_real=real.gflops(flops),
        gflops_sim=sim.gflops(flops),
    )
