"""The simulation clock (paper §V, first crucial element).

"The simulation clock ... keeps track of the simulation time.  The clock is
stored as a double precision floating point number which is of sufficient
resolution for the tasks we deal with that operate at the micro-second
resolution."

The clock is monotone: it can only advance.  The threaded runtime shares one
clock between worker threads behind a lock; the event-driven engine keeps
its own notion of time and does not need this class.
"""

from __future__ import annotations

import threading

__all__ = ["SimClock"]


class SimClock:
    """Monotone virtual-time clock shared by simulated kernels."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to ``t`` (no-op if ``t`` is in the past).

        Returns the clock value after the call.  Simulated kernels advance
        the clock to their own completion time just before returning
        (paper §V-D).
        """
        with self._lock:
            if t > self._now:
                self._now = t
            return self._now

    def reset(self, start: float = 0.0) -> None:
        with self._lock:
            self._now = float(start)
