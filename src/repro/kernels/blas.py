"""NumPy implementations of the BLAS/LAPACK tile kernels.

These are the *numeric* bodies of the tasks that the tile Cholesky and LU
algorithms schedule (paper Algorithm 1).  They operate in place on square
``nb x nb`` NumPy tiles, matching the calling conventions the algorithm
generators assume:

* ``potrf(Akk)``          - unblocked Cholesky of the diagonal tile (DPOTF2)
* ``trsm_rlt(Lkk, Aik)``  - right solve ``Aik <- Aik * Lkk^{-T}`` (DTRSM)
* ``syrk(Aii, Aik)``      - symmetric update ``Aii <- Aii - Aik Aik^T`` (DSYRK)
* ``gemm_nt(Aij, Aik, Ajk)`` - ``Aij <- Aij - Aik Ajk^T`` (DGEMM)
* ``getrf_nopiv(Akk)``    - unpivoted LU of the diagonal tile
* ``trsm_lln_unit(Lkk, Akj)`` / ``trsm_run(Ukk, Aik)`` - LU panel solves
* ``gemm_nn(Aij, Aik, Akj)`` - ``Aij <- Aij - Aik Akj``

All kernels mutate their output tile in place and return it, so the threaded
``execute`` runtime can dispatch them uniformly.  Each validates shapes; the
cost of those checks is negligible next to the BLAS call.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

__all__ = [
    "potrf",
    "trsm_rlt",
    "syrk",
    "gemm_nt",
    "gemm_nn",
    "getrf_nopiv",
    "trsm_lln_unit",
    "trsm_run",
]


def _check_square(*tiles: np.ndarray) -> int:
    n = tiles[0].shape[0]
    for t in tiles:
        if t.ndim != 2 or t.shape != (n, n):
            raise ValueError(f"expected square tiles of order {n}, got shape {t.shape}")
    return n


def potrf(akk: np.ndarray) -> np.ndarray:
    """Unblocked Cholesky of the diagonal tile: ``akk <- L`` (lower).

    The strictly upper triangle is zeroed, matching LAPACK's convention of
    referencing only the lower triangle for symmetric input.
    """
    _check_square(akk)
    lower = np.linalg.cholesky(np.tril(akk) + np.tril(akk, -1).T)
    akk[...] = lower
    return akk


def trsm_rlt(lkk: np.ndarray, aik: np.ndarray) -> np.ndarray:
    """Triangular solve ``aik <- aik * lkk^{-T}`` (right, lower, transposed).

    This is the DTRSM of Algorithm 1 line 6: solve ``Akk X^T = Aik^T``.
    """
    _check_square(lkk, aik)
    aik[...] = sla.solve_triangular(lkk, aik.T, lower=True, trans="N").T
    return aik


def syrk(aii: np.ndarray, aik: np.ndarray) -> np.ndarray:
    """Symmetric rank-``nb`` update ``aii <- aii - aik aik^T`` (DSYRK)."""
    _check_square(aii, aik)
    aii -= aik @ aik.T
    return aii


def gemm_nt(aij: np.ndarray, aik: np.ndarray, ajk: np.ndarray) -> np.ndarray:
    """``aij <- aij - aik ajk^T`` — Cholesky trailing update (DGEMM)."""
    _check_square(aij, aik, ajk)
    aij -= aik @ ajk.T
    return aij


def gemm_nn(aij: np.ndarray, aik: np.ndarray, akj: np.ndarray) -> np.ndarray:
    """``aij <- aij - aik akj`` — LU trailing update (DGEMM)."""
    _check_square(aij, aik, akj)
    aij -= aik @ akj
    return aij


def getrf_nopiv(akk: np.ndarray) -> np.ndarray:
    """Unpivoted LU of the diagonal tile: ``akk <- L\\U`` packed in place.

    ``L`` is unit lower triangular (unit diagonal not stored), ``U`` upper.
    Raises ``ZeroDivisionError`` on an exactly-zero pivot; callers are
    expected to supply diagonally dominant tiles (the standard restriction of
    the no-pivoting tile LU).
    """
    n = _check_square(akk)
    for k in range(n):
        pivot = akk[k, k]
        if pivot == 0.0:
            raise ZeroDivisionError(f"zero pivot at position {k} in unpivoted LU")
        akk[k + 1 :, k] /= pivot
        akk[k + 1 :, k + 1 :] -= np.outer(akk[k + 1 :, k], akk[k, k + 1 :])
    return akk


def trsm_lln_unit(lkk_packed: np.ndarray, akj: np.ndarray) -> np.ndarray:
    """``akj <- L^{-1} akj`` with unit-diagonal ``L`` packed in ``lkk_packed``."""
    _check_square(lkk_packed, akj)
    akj[...] = sla.solve_triangular(
        lkk_packed, akj, lower=True, unit_diagonal=True, trans="N"
    )
    return akj


def trsm_run(ukk_packed: np.ndarray, aik: np.ndarray) -> np.ndarray:
    """``aik <- aik U^{-1}`` with ``U`` the upper triangle of ``ukk_packed``."""
    _check_square(ukk_packed, aik)
    aik[...] = sla.solve_triangular(ukk_packed, aik.T, lower=False, trans="T").T
    return aik
