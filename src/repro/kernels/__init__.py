"""Kernel substrate: numeric tile kernels, flop counts, and timing models."""

from .distributions import (
    ConstantModel,
    DurationModel,
    EmpiricalModel,
    GammaModel,
    LognormalModel,
    MODEL_FAMILIES,
    NormalModel,
    UniformModel,
    best_fit,
    fit_all_families,
    fit_family,
)
from .flops import KERNEL_FLOPS, cholesky_flops, kernel_flops, lu_flops, qr_flops
from .loadmodel import LoadAwareModel, LoadAwareModelSet, LoadAwareSimulationBackend
from .timing import KernelModelSet, trim_warmup_outliers

__all__ = [
    "ConstantModel",
    "DurationModel",
    "EmpiricalModel",
    "GammaModel",
    "LognormalModel",
    "MODEL_FAMILIES",
    "NormalModel",
    "UniformModel",
    "best_fit",
    "fit_all_families",
    "fit_family",
    "KERNEL_FLOPS",
    "cholesky_flops",
    "kernel_flops",
    "lu_flops",
    "qr_flops",
    "KernelModelSet",
    "trim_warmup_outliers",
    "LoadAwareModel",
    "LoadAwareModelSet",
    "LoadAwareSimulationBackend",
]
