"""Probability models of kernel execution time (paper Section V-B).

The paper models each kernel class's execution time with a simple parametric
distribution — normal, gamma, or log-normal — fitted to empirical samples
gathered from a real run, and notes that "the log-normal distribution has
slightly outperformed the others in some cases".  This module provides those
three families plus the degenerate (constant), uniform, and empirical
(resampling) models used by the ablation experiments, with a uniform
interface:

``fit(samples)``   class method returning a fitted model,
``sample(rng)``    draw one simulated duration,
``mean``/``std``   moments,
``pdf(x)``         density for plotting Figs. 3-4,
``loglik``/``aic`` goodness-of-fit, and
``ks_statistic``   Kolmogorov-Smirnov distance to the sample.

All times are in seconds.  Durations are clamped to a small positive floor on
sampling so that a fitted normal with a long left tail can never produce a
non-positive task duration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, Sequence, Type

import numpy as np
from scipy import stats

__all__ = [
    "DurationModel",
    "ConstantModel",
    "UniformModel",
    "NormalModel",
    "GammaModel",
    "LognormalModel",
    "EmpiricalModel",
    "MODEL_FAMILIES",
    "fit_family",
    "fit_all_families",
    "best_fit",
]

#: No simulated duration may be shorter than this (1 nanosecond).
_DURATION_FLOOR = 1e-9


def _as_samples(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(arr)):
        raise ValueError("samples must be finite")
    if np.any(arr <= 0):
        raise ValueError("execution-time samples must be positive")
    return arr


class DurationModel:
    """Base class for kernel execution-time models."""

    family: ClassVar[str] = "base"
    #: number of fitted parameters, for AIC
    n_params: ClassVar[int] = 0
    #: what :meth:`sample` consumes from the generator per draw:
    #: ``"normal"`` — exactly one standard-normal variate (the model can be
    #: driven from a pre-drawn batch via :meth:`from_standard_normal`);
    #: ``"none"`` — nothing (deterministic); ``"other"`` — anything else
    #: (uniforms, gammas, integers), which rules out batched driving.
    rng_use: ClassVar[str] = "other"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "DurationModel":
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def from_standard_normal(self, z: float) -> float:
        """Map one standard-normal variate to a duration.

        Only meaningful for models with ``rng_use == "normal"``; must be
        bit-identical to :meth:`sample` consuming the same variate — the
        batched fast path in :class:`~repro.kernels.timing.KernelModelSet`
        relies on that equivalence (guarded by a property test).
        """
        raise NotImplementedError(f"{self.family} model is not normal-driven")

    def pdf(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def std(self) -> float:
        raise NotImplementedError

    # -- goodness of fit -------------------------------------------------
    def loglik(self, samples: Sequence[float]) -> float:
        arr = _as_samples(samples)
        dens = np.maximum(self.pdf(arr), 1e-300)
        return float(np.sum(np.log(dens)))

    def aic(self, samples: Sequence[float]) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_params - 2.0 * self.loglik(samples)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def ks_statistic(self, samples: Sequence[float]) -> float:
        """Kolmogorov-Smirnov distance between the model and the sample."""
        arr = np.sort(_as_samples(samples))
        n = arr.size
        model_cdf = self.cdf(arr)
        upper = np.arange(1, n + 1) / n
        lower = np.arange(0, n) / n
        return float(max(np.max(np.abs(model_cdf - upper)), np.max(np.abs(model_cdf - lower))))

    def _clamp(self, value: float) -> float:
        return max(float(value), _DURATION_FLOOR)


@dataclass
class ConstantModel(DurationModel):
    """Degenerate model: every instance takes the sample mean.

    This is the model the paper argues is *insufficient* — it removes the
    randomness that is "essential for the accuracy" of the trace.
    """

    value: float
    family: ClassVar[str] = "constant"
    n_params: ClassVar[int] = 1
    rng_use: ClassVar[str] = "none"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "ConstantModel":
        return cls(value=float(np.mean(_as_samples(samples))))

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(self.value)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        # Dirac density has no finite representation; return a tight Gaussian
        # so that log-likelihood comparisons remain meaningful.
        sigma = max(self.value * 1e-6, 1e-12)
        return stats.norm.pdf(np.asarray(x, dtype=float), loc=self.value, scale=sigma)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) >= self.value).astype(float)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def std(self) -> float:
        return 0.0


@dataclass
class UniformModel(DurationModel):
    """Uniform on ``[lo, hi]`` — the other strawman named in Section V-B."""

    lo: float
    hi: float
    family: ClassVar[str] = "uniform"
    n_params: ClassVar[int] = 2

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "UniformModel":
        arr = _as_samples(samples)
        lo, hi = float(np.min(arr)), float(np.max(arr))
        if hi <= lo:
            hi = lo * (1.0 + 1e-9) + 1e-12
        return cls(lo=lo, hi=hi)

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(rng.uniform(self.lo, self.hi))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.uniform.pdf(np.asarray(x, dtype=float), loc=self.lo, scale=self.hi - self.lo)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.uniform.cdf(np.asarray(x, dtype=float), loc=self.lo, scale=self.hi - self.lo)

    @property
    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def std(self) -> float:
        return (self.hi - self.lo) / math.sqrt(12.0)


@dataclass
class NormalModel(DurationModel):
    """Gaussian execution time (the most common DLA kernel model, §V-B2)."""

    mu: float
    sigma: float
    family: ClassVar[str] = "normal"
    n_params: ClassVar[int] = 2
    rng_use: ClassVar[str] = "normal"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "NormalModel":
        arr = _as_samples(samples)
        sigma = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
        sigma = max(sigma, float(np.mean(arr)) * 1e-9 + 1e-15)
        return cls(mu=float(np.mean(arr)), sigma=sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(rng.normal(self.mu, self.sigma))

    def from_standard_normal(self, z: float) -> float:
        # NumPy's normal(loc, scale) computes loc + scale * gauss with the
        # same double operations, so this is bit-identical to sample().
        return self._clamp(self.mu + self.sigma * z)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.norm.pdf(np.asarray(x, dtype=float), loc=self.mu, scale=self.sigma)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.norm.cdf(np.asarray(x, dtype=float), loc=self.mu, scale=self.sigma)

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def std(self) -> float:
        return self.sigma


@dataclass
class GammaModel(DurationModel):
    """Gamma-distributed execution time (shape ``k``, scale ``theta``)."""

    shape: float
    scale: float
    family: ClassVar[str] = "gamma"
    n_params: ClassVar[int] = 2

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "GammaModel":
        arr = _as_samples(samples)
        m = float(np.mean(arr))
        s = float(np.std(arr))
        # Degenerate / numerically-identical samples break scipy's MLE (its
        # internal log-moment goes NaN), so fall back to a near-
        # deterministic gamma around the mean.
        if arr.size < 2 or s <= m * 1e-9:
            return cls(shape=1e6, scale=m / 1e6)
        try:
            shape, _loc, scale = stats.gamma.fit(arr, floc=0.0)
        except (ValueError, RuntimeError):
            # MLE failed to converge: method-of-moments fallback.
            shape = (m / s) ** 2
            scale = s**2 / m
        return cls(shape=float(shape), scale=float(scale))

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(rng.gamma(self.shape, self.scale))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.gamma.pdf(np.asarray(x, dtype=float), a=self.shape, scale=self.scale)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.gamma.cdf(np.asarray(x, dtype=float), a=self.shape, scale=self.scale)

    @property
    def mean(self) -> float:
        return self.shape * self.scale

    @property
    def std(self) -> float:
        return math.sqrt(self.shape) * self.scale


@dataclass
class LognormalModel(DurationModel):
    """Log-normal execution time — the paper's slight favourite (§V-B2)."""

    mu_log: float
    sigma_log: float
    family: ClassVar[str] = "lognormal"
    n_params: ClassVar[int] = 2
    rng_use: ClassVar[str] = "normal"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "LognormalModel":
        arr = _as_samples(samples)
        logs = np.log(arr)
        sigma = float(np.std(logs, ddof=1)) if arr.size > 1 else 0.0
        sigma = max(sigma, 1e-12)
        return cls(mu_log=float(np.mean(logs)), sigma_log=sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(rng.lognormal(self.mu_log, self.sigma_log))

    def from_standard_normal(self, z: float) -> float:
        # NumPy's lognormal is exp(normal(mean, sigma)); libm's exp on the
        # identical double argument makes this bit-identical to sample().
        return self._clamp(math.exp(self.mu_log + self.sigma_log * z))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.lognorm.pdf(
            np.asarray(x, dtype=float), s=self.sigma_log, scale=math.exp(self.mu_log)
        )

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.lognorm.cdf(
            np.asarray(x, dtype=float), s=self.sigma_log, scale=math.exp(self.mu_log)
        )

    @property
    def mean(self) -> float:
        return math.exp(self.mu_log + 0.5 * self.sigma_log**2)

    @property
    def std(self) -> float:
        var = (math.exp(self.sigma_log**2) - 1.0) * math.exp(2 * self.mu_log + self.sigma_log**2)
        return math.sqrt(var)


@dataclass
class EmpiricalModel(DurationModel):
    """Resample the observed durations directly (bootstrap model)."""

    samples_: np.ndarray
    family: ClassVar[str] = "empirical"
    n_params: ClassVar[int] = 0

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "EmpiricalModel":
        return cls(samples_=_as_samples(samples).copy())

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(float(rng.choice(self.samples_)))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        # Gaussian KDE density, for plotting alongside the parametric fits.
        if self.samples_.size < 2 or float(np.std(self.samples_)) == 0.0:
            return ConstantModel(float(np.mean(self.samples_))).pdf(x)
        kde = stats.gaussian_kde(self.samples_)
        return kde(np.asarray(x, dtype=float))

    def cdf(self, x: np.ndarray) -> np.ndarray:
        xs = np.sort(self.samples_)
        return np.searchsorted(xs, np.asarray(x, dtype=float), side="right") / xs.size

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples_))

    @property
    def std(self) -> float:
        return float(np.std(self.samples_, ddof=1)) if self.samples_.size > 1 else 0.0


#: Registry of model families by name, in the order the paper discusses them.
MODEL_FAMILIES: Dict[str, Type[DurationModel]] = {
    "constant": ConstantModel,
    "uniform": UniformModel,
    "normal": NormalModel,
    "gamma": GammaModel,
    "lognormal": LognormalModel,
    "empirical": EmpiricalModel,
}


def fit_family(family: str, samples: Sequence[float]) -> DurationModel:
    """Fit one named family to ``samples``."""
    try:
        cls = MODEL_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown model family {family!r}; choose from {sorted(MODEL_FAMILIES)}"
        ) from None
    return cls.fit(samples)


def fit_all_families(
    samples: Sequence[float],
    families: Sequence[str] = ("normal", "gamma", "lognormal"),
) -> Dict[str, DurationModel]:
    """Fit every requested family — the paper's Fig. 3/4 overlay set."""
    return {f: fit_family(f, samples) for f in families}


def best_fit(
    samples: Sequence[float],
    families: Sequence[str] = ("normal", "gamma", "lognormal"),
    criterion: str = "aic",
) -> DurationModel:
    """Fit ``families`` and return the winner under ``criterion``.

    ``criterion`` is ``"aic"`` (default) or ``"ks"``.  With fewer than two
    samples the comparison is meaningless, so the first family wins.
    """
    fits = fit_all_families(samples, families)
    arr = _as_samples(samples)
    if arr.size < 2:
        return fits[families[0]]
    if criterion == "aic":
        def score(m: DurationModel) -> float:
            return m.aic(arr)
    elif criterion == "ks":
        def score(m: DurationModel) -> float:
            return m.ks_statistic(arr)
    else:
        raise ValueError(f"unknown criterion {criterion!r}")
    return min(fits.values(), key=score)
