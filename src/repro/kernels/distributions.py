"""Probability models of kernel execution time (paper Section V-B).

The paper models each kernel class's execution time with a simple parametric
distribution — normal, gamma, or log-normal — fitted to empirical samples
gathered from a real run, and notes that "the log-normal distribution has
slightly outperformed the others in some cases".  This module provides those
three families plus the degenerate (constant), uniform, and empirical
(resampling) models used by the ablation experiments, with a uniform
interface:

``fit(samples)``   class method returning a fitted model,
``sample(rng)``    draw one simulated duration,
``mean``/``std``   moments,
``pdf(x)``         density for plotting Figs. 3-4,
``loglik``/``aic`` goodness-of-fit, and
``ks_statistic``   Kolmogorov-Smirnov distance to the sample.

All times are in seconds.  Durations are clamped to a small positive floor on
sampling so that a fitted normal with a long left tail can never produce a
non-positive task duration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, Mapping, Sequence, Tuple, Type

import numpy as np
from scipy import special, stats

__all__ = [
    "DurationModel",
    "ConstantModel",
    "UniformModel",
    "NormalModel",
    "GammaModel",
    "LognormalModel",
    "LognormalMixtureModel",
    "KDEModel",
    "EmpiricalModel",
    "MODEL_FAMILIES",
    "fit_family",
    "fit_all_families",
    "best_fit",
    "model_to_params",
    "model_from_params",
]

#: No simulated duration may be shorter than this (1 nanosecond).
_DURATION_FLOOR = 1e-9


def _as_samples(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(arr)):
        raise ValueError("samples must be finite")
    if np.any(arr <= 0):
        raise ValueError("execution-time samples must be positive")
    return arr


class DurationModel:
    """Base class for kernel execution-time models."""

    family: ClassVar[str] = "base"
    #: number of fitted parameters, for AIC
    n_params: ClassVar[int] = 0
    #: what :meth:`sample` consumes from the generator per draw:
    #: ``"normal"`` — exactly one standard-normal variate (the model can be
    #: driven from a pre-drawn batch via :meth:`from_standard_normal`);
    #: ``"none"`` — nothing (deterministic); ``"other"`` — anything else
    #: (uniforms, gammas, integers), which rules out batched driving.
    rng_use: ClassVar[str] = "other"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "DurationModel":
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def from_standard_normal(self, z: float) -> float:
        """Map one standard-normal variate to a duration.

        Only meaningful for models with ``rng_use == "normal"``; must be
        bit-identical to :meth:`sample` consuming the same variate — the
        batched fast path in :class:`~repro.kernels.timing.KernelModelSet`
        relies on that equivalence (guarded by a property test).
        """
        raise NotImplementedError(f"{self.family} model is not normal-driven")

    def pdf(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def std(self) -> float:
        raise NotImplementedError

    # -- goodness of fit -------------------------------------------------
    def loglik(self, samples: Sequence[float]) -> float:
        arr = _as_samples(samples)
        dens = np.maximum(self.pdf(arr), 1e-300)
        return float(np.sum(np.log(dens)))

    def aic(self, samples: Sequence[float]) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_params - 2.0 * self.loglik(samples)

    def bic(self, samples: Sequence[float]) -> float:
        """Bayesian information criterion (lower is better)."""
        arr = _as_samples(samples)
        return self.n_params * math.log(arr.size) - 2.0 * self.loglik(arr)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def cdf_left(self, x: np.ndarray) -> np.ndarray:
        """Left limit ``F(x-)`` of the model CDF.

        Equals :meth:`cdf` for continuous families (the default); models
        whose CDF has jumps (constant, empirical) override it so that
        :meth:`ks_statistic` treats the jump correctly.
        """
        return self.cdf(x)

    def ks_statistic(self, samples: Sequence[float]) -> float:
        """Kolmogorov-Smirnov distance between the model and the sample.

        Uses the one-sample statistic written with the CDF's left limit,
        ``D = max(max_i(i/n - F(x_i)), max_i(F(x_i-) - (i-1)/n), 0)``, which
        coincides with the usual formula for continuous ``F`` but is also
        correct for discontinuous models — a point mass fitted on constant
        samples scores ``D = 0`` rather than a spurious ``1``.
        """
        arr = np.sort(_as_samples(samples))
        n = arr.size
        upper = np.arange(1, n + 1) / n
        lower = np.arange(0, n) / n
        right = self.cdf(arr)
        left = self.cdf_left(arr)
        return float(max(np.max(upper - right), np.max(left - lower), 0.0))

    def _clamp(self, value: float) -> float:
        return max(float(value), _DURATION_FLOOR)


@dataclass
class ConstantModel(DurationModel):
    """Degenerate model: every instance takes the sample mean.

    This is the model the paper argues is *insufficient* — it removes the
    randomness that is "essential for the accuracy" of the trace.
    """

    value: float
    family: ClassVar[str] = "constant"
    n_params: ClassVar[int] = 1
    rng_use: ClassVar[str] = "none"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "ConstantModel":
        return cls(value=float(np.mean(_as_samples(samples))))

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(self.value)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        # Dirac density has no finite representation; return a tight Gaussian
        # so that log-likelihood comparisons remain meaningful.
        sigma = max(self.value * 1e-6, 1e-12)
        return stats.norm.pdf(np.asarray(x, dtype=float), loc=self.value, scale=sigma)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) >= self.value).astype(float)

    def cdf_left(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) > self.value).astype(float)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def std(self) -> float:
        return 0.0


@dataclass
class UniformModel(DurationModel):
    """Uniform on ``[lo, hi]`` — the other strawman named in Section V-B."""

    lo: float
    hi: float
    family: ClassVar[str] = "uniform"
    n_params: ClassVar[int] = 2

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "UniformModel":
        arr = _as_samples(samples)
        lo, hi = float(np.min(arr)), float(np.max(arr))
        if hi <= lo:
            hi = lo * (1.0 + 1e-9) + 1e-12
        return cls(lo=lo, hi=hi)

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(rng.uniform(self.lo, self.hi))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.uniform.pdf(np.asarray(x, dtype=float), loc=self.lo, scale=self.hi - self.lo)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.uniform.cdf(np.asarray(x, dtype=float), loc=self.lo, scale=self.hi - self.lo)

    @property
    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def std(self) -> float:
        return (self.hi - self.lo) / math.sqrt(12.0)


@dataclass
class NormalModel(DurationModel):
    """Gaussian execution time (the most common DLA kernel model, §V-B2)."""

    mu: float
    sigma: float
    family: ClassVar[str] = "normal"
    n_params: ClassVar[int] = 2
    rng_use: ClassVar[str] = "normal"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "NormalModel":
        arr = _as_samples(samples)
        sigma = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
        sigma = max(sigma, float(np.mean(arr)) * 1e-9 + 1e-15)
        return cls(mu=float(np.mean(arr)), sigma=sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(rng.normal(self.mu, self.sigma))

    def from_standard_normal(self, z: float) -> float:
        # NumPy's normal(loc, scale) computes loc + scale * gauss with the
        # same double operations, so this is bit-identical to sample().
        return self._clamp(self.mu + self.sigma * z)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.norm.pdf(np.asarray(x, dtype=float), loc=self.mu, scale=self.sigma)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.norm.cdf(np.asarray(x, dtype=float), loc=self.mu, scale=self.sigma)

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def std(self) -> float:
        return self.sigma


@dataclass
class GammaModel(DurationModel):
    """Gamma-distributed execution time (shape ``k``, scale ``theta``)."""

    shape: float
    scale: float
    family: ClassVar[str] = "gamma"
    n_params: ClassVar[int] = 2

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "GammaModel":
        arr = _as_samples(samples)
        m = float(np.mean(arr))
        s = float(np.std(arr))
        # Degenerate / numerically-identical samples break scipy's MLE (its
        # internal log-moment goes NaN), so fall back to a near-
        # deterministic gamma around the mean.
        if arr.size < 2 or s <= m * 1e-9:
            return cls(shape=1e6, scale=m / 1e6)
        try:
            shape, _loc, scale = stats.gamma.fit(arr, floc=0.0)
        except (ValueError, RuntimeError):
            # MLE failed to converge: method-of-moments fallback.
            shape = (m / s) ** 2
            scale = s**2 / m
        return cls(shape=float(shape), scale=float(scale))

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(rng.gamma(self.shape, self.scale))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.gamma.pdf(np.asarray(x, dtype=float), a=self.shape, scale=self.scale)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.gamma.cdf(np.asarray(x, dtype=float), a=self.shape, scale=self.scale)

    @property
    def mean(self) -> float:
        return self.shape * self.scale

    @property
    def std(self) -> float:
        return math.sqrt(self.shape) * self.scale


@dataclass
class LognormalModel(DurationModel):
    """Log-normal execution time — the paper's slight favourite (§V-B2)."""

    mu_log: float
    sigma_log: float
    family: ClassVar[str] = "lognormal"
    n_params: ClassVar[int] = 2
    rng_use: ClassVar[str] = "normal"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "LognormalModel":
        arr = _as_samples(samples)
        logs = np.log(arr)
        sigma = float(np.std(logs, ddof=1)) if arr.size > 1 else 0.0
        sigma = max(sigma, 1e-12)
        return cls(mu_log=float(np.mean(logs)), sigma_log=sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(rng.lognormal(self.mu_log, self.sigma_log))

    def from_standard_normal(self, z: float) -> float:
        # NumPy's lognormal is exp(normal(mean, sigma)); libm's exp on the
        # identical double argument makes this bit-identical to sample().
        return self._clamp(math.exp(self.mu_log + self.sigma_log * z))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.lognorm.pdf(
            np.asarray(x, dtype=float), s=self.sigma_log, scale=math.exp(self.mu_log)
        )

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.lognorm.cdf(
            np.asarray(x, dtype=float), s=self.sigma_log, scale=math.exp(self.mu_log)
        )

    @property
    def mean(self) -> float:
        return math.exp(self.mu_log + 0.5 * self.sigma_log**2)

    @property
    def std(self) -> float:
        var = (math.exp(self.sigma_log**2) - 1.0) * math.exp(2 * self.mu_log + self.sigma_log**2)
        return math.sqrt(var)


@dataclass
class EmpiricalModel(DurationModel):
    """Resample the observed durations directly (bootstrap model)."""

    samples_: np.ndarray
    family: ClassVar[str] = "empirical"
    n_params: ClassVar[int] = 0

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "EmpiricalModel":
        return cls(samples_=_as_samples(samples).copy())

    def sample(self, rng: np.random.Generator) -> float:
        return self._clamp(float(rng.choice(self.samples_)))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        # Gaussian KDE density, for plotting alongside the parametric fits.
        if self.samples_.size < 2 or float(np.std(self.samples_)) == 0.0:
            return ConstantModel(float(np.mean(self.samples_))).pdf(x)
        kde = stats.gaussian_kde(self.samples_)
        return kde(np.asarray(x, dtype=float))

    def cdf(self, x: np.ndarray) -> np.ndarray:
        xs = np.sort(self.samples_)
        return np.searchsorted(xs, np.asarray(x, dtype=float), side="right") / xs.size

    def cdf_left(self, x: np.ndarray) -> np.ndarray:
        xs = np.sort(self.samples_)
        return np.searchsorted(xs, np.asarray(x, dtype=float), side="left") / xs.size

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples_))

    @property
    def std(self) -> float:
        return float(np.std(self.samples_, ddof=1)) if self.samples_.size > 1 else 0.0


def _norm_cdf_scalar(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _bisect_quantile(cdf_scalar, q: float, lo: float, hi: float) -> float:
    """Deterministic bisection for the q-quantile of a continuous CDF.

    ``lo``/``hi`` must bracket the quantile.  Pure double-precision
    arithmetic with a fixed iteration schedule, so the result is a
    reproducible function of its inputs — no RNG, no platform-dependent
    solver state.  Monotone in ``q`` up to the convergence tolerance.
    """
    if hi <= lo:
        return lo
    for _ in range(128):
        mid = 0.5 * (lo + hi)
        if cdf_scalar(mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-15 * max(abs(hi), 1.0):
            break
    return 0.5 * (lo + hi)


@dataclass
class LognormalMixtureModel(DurationModel):
    """K-component log-normal mixture fitted by EM (borg-style runtime model).

    The EM runs on the log-durations (a Gaussian mixture in log space) with a
    deterministic quantile-split initialisation — no RNG anywhere in the fit,
    so refitting the same samples always yields the same parameters.
    Components are stored sorted by ``mu_log`` for a canonical ordering.

    Sampling is inverse-CDF: one uniform variate per draw mapped through
    :meth:`ppf` (deterministic bisection), so the draw sequence is a pure
    function of the generator state and monotone in the uniform input.
    ``rng_use`` stays ``"other"`` — the batched-normal fast path cannot drive
    this model, which routes mixture model sets through
    :class:`~repro.kernels.timing.DirectSampler` on both engines and keeps
    object/array byte-identity by construction.
    """

    weights: Tuple[float, ...]
    mus_log: Tuple[float, ...]
    sigmas_log: Tuple[float, ...]
    family: ClassVar[str] = "lognormal_mixture"
    rng_use: ClassVar[str] = "other"

    @property
    def n_params(self) -> int:  # type: ignore[override]
        # K weights (K-1 free) + K means + K sigmas.
        return 3 * len(self.weights) - 1

    @classmethod
    def fit(
        cls,
        samples: Sequence[float],
        *,
        k: int = 2,
        max_iter: int = 200,
        tol: float = 1e-10,
    ) -> "LognormalMixtureModel":
        arr = _as_samples(samples)
        logs = np.log(arr)
        if k < 1:
            raise ValueError("k must be at least 1")
        spread = float(np.std(logs))
        if arr.size < 2 * k or spread < 1e-12:
            # Too few / degenerate samples for a K-way split: single component.
            single = LognormalModel.fit(arr)
            return cls(
                weights=(1.0,), mus_log=(single.mu_log,), sigmas_log=(single.sigma_log,)
            )
        # Deterministic init: split the sorted log-samples into k quantile
        # chunks; each chunk seeds one component.
        order = np.sort(logs)
        chunks = np.array_split(order, k)
        sigma_floor = max(spread * 1e-4, 1e-9)
        mus = np.array([float(np.mean(c)) for c in chunks])
        sigmas = np.array([max(float(np.std(c)), sigma_floor) for c in chunks])
        weights = np.full(k, 1.0 / k)
        prev_ll = -np.inf
        for _ in range(max_iter):
            # E-step: responsibilities from log-densities (stable via logsumexp).
            z = (logs[:, None] - mus[None, :]) / sigmas[None, :]
            log_dens = (
                np.log(weights)[None, :]
                - np.log(sigmas)[None, :]
                - 0.5 * math.log(2.0 * math.pi)
                - 0.5 * z * z
            )
            norm = np.max(log_dens, axis=1, keepdims=True)
            probs = np.exp(log_dens - norm)
            total = np.sum(probs, axis=1, keepdims=True)
            resp = probs / total
            ll = float(np.sum(np.log(total)) + np.sum(norm))
            # M-step.
            counts = np.sum(resp, axis=0)
            if np.any(counts < 1e-9):
                break  # a component died; keep the previous parameters
            weights = counts / logs.size
            mus = resp.T @ logs / counts
            var = resp.T @ (logs**2) / counts - mus**2
            sigmas = np.maximum(np.sqrt(np.maximum(var, 0.0)), sigma_floor)
            if abs(ll - prev_ll) <= tol * max(abs(ll), 1.0):
                break
            prev_ll = ll
        idx = np.argsort(mus, kind="stable")
        return cls(
            weights=tuple(float(w) for w in weights[idx]),
            mus_log=tuple(float(m) for m in mus[idx]),
            sigmas_log=tuple(float(s) for s in sigmas[idx]),
        )

    def _cdf_scalar(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        lx = math.log(x)
        return sum(
            w * _norm_cdf_scalar((lx - m) / s)
            for w, m, s in zip(self.weights, self.mus_log, self.sigmas_log)
        )

    def ppf(self, q: float) -> float:
        """Deterministic inverse CDF (quantile function)."""
        q = min(max(float(q), 1e-12), 1.0 - 1e-12)
        z = float(stats.norm.ppf(q))
        # The mixture quantile lies between the smallest and largest
        # per-component quantiles, giving an exact bracket for bisection.
        comp = [
            math.exp(m + s * z) for m, s in zip(self.mus_log, self.sigmas_log)
        ]
        return _bisect_quantile(self._cdf_scalar, q, min(comp), max(comp))

    def from_uniform(self, u: float) -> float:
        """Map one uniform variate to a duration (monotone in ``u``)."""
        return self._clamp(self.ppf(u))

    def sample(self, rng: np.random.Generator) -> float:
        # Exactly one uniform per draw: inverse-CDF keeps the generator
        # consumption identical across engines and repeat runs.
        return self.from_uniform(rng.random())

    def pdf(self, x: np.ndarray) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        out = np.zeros_like(xs)
        for w, m, s in zip(self.weights, self.mus_log, self.sigmas_log):
            out += w * stats.lognorm.pdf(xs, s=s, scale=math.exp(m))
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        out = np.zeros_like(xs)
        for w, m, s in zip(self.weights, self.mus_log, self.sigmas_log):
            out += w * stats.lognorm.cdf(xs, s=s, scale=math.exp(m))
        return out

    @property
    def mean(self) -> float:
        return sum(
            w * math.exp(m + 0.5 * s * s)
            for w, m, s in zip(self.weights, self.mus_log, self.sigmas_log)
        )

    @property
    def std(self) -> float:
        second = sum(
            w * math.exp(2.0 * m + 2.0 * s * s)
            for w, m, s in zip(self.weights, self.mus_log, self.sigmas_log)
        )
        return math.sqrt(max(second - self.mean**2, 0.0))


@dataclass
class KDEModel(DurationModel):
    """Gaussian kernel-density estimate as a first-class samplable model.

    Promotes the KDE that :class:`EmpiricalModel` only used for plotting into
    a model with a proper CDF and a deterministic inverse-CDF sampler.  The
    bandwidth follows Scott's rule (what ``scipy.stats.gaussian_kde``
    defaults to in one dimension) but is computed directly, which also fixes
    the latent crash ``gaussian_kde`` has on singleton or constant sample
    arrays (``LinAlgError``/``ValueError``): those degenerate inputs get
    ``bandwidth == 0`` and the model degrades to a point mass at the mean.
    """

    samples_: np.ndarray
    bandwidth: float
    family: ClassVar[str] = "kde"
    n_params: ClassVar[int] = 0
    rng_use: ClassVar[str] = "other"

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "KDEModel":
        arr = np.sort(_as_samples(samples))
        if arr.size < 2:
            return cls(samples_=arr.copy(), bandwidth=0.0)
        spread = float(np.std(arr, ddof=1))
        # np.std of a constant array returns ~1e-19 instead of exactly 0.0
        # (floating-point cancellation), so the zero test must be relative.
        if spread <= abs(float(np.mean(arr))) * 1e-12:
            return cls(samples_=arr.copy(), bandwidth=0.0)
        # Scott's rule in 1-D: h = sigma * n^(-1/5).
        return cls(samples_=arr.copy(), bandwidth=spread * arr.size ** (-1.0 / 5.0))

    @property
    def degenerate(self) -> bool:
        return self.bandwidth == 0.0

    def _cdf_scalar(self, x: float) -> float:
        if self.degenerate:
            return 1.0 if x >= float(self.samples_[0]) else 0.0
        z = (x - self.samples_) / self.bandwidth
        return float(np.mean(special.ndtr(z)))

    def ppf(self, q: float) -> float:
        """Deterministic inverse CDF (quantile function)."""
        if self.degenerate:
            return float(np.mean(self.samples_))
        q = min(max(float(q), 1e-12), 1.0 - 1e-12)
        z = float(stats.norm.ppf(q))
        # Equal-bandwidth mixture: the quantile is bracketed by shifting the
        # extreme data points by the same z.
        lo = float(self.samples_[0]) + self.bandwidth * z
        hi = float(self.samples_[-1]) + self.bandwidth * z
        return _bisect_quantile(self._cdf_scalar, q, lo, hi)

    def from_uniform(self, u: float) -> float:
        """Map one uniform variate to a duration (monotone in ``u``)."""
        return self._clamp(self.ppf(u))

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_uniform(rng.random())

    def pdf(self, x: np.ndarray) -> np.ndarray:
        if self.degenerate:
            return ConstantModel(float(np.mean(self.samples_))).pdf(x)
        xs = np.asarray(x, dtype=float)
        z = (np.atleast_1d(xs)[:, None] - self.samples_[None, :]) / self.bandwidth
        dens = np.mean(
            np.exp(-0.5 * z * z) / (self.bandwidth * math.sqrt(2.0 * math.pi)), axis=1
        )
        return dens.reshape(np.shape(xs)) if np.ndim(xs) else float(dens[0])

    def cdf(self, x: np.ndarray) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        if self.degenerate:
            return (xs >= float(self.samples_[0])).astype(float)
        z = (np.atleast_1d(xs)[:, None] - self.samples_[None, :]) / self.bandwidth
        vals = np.mean(stats.norm.cdf(z), axis=1)
        return vals.reshape(np.shape(xs)) if np.ndim(xs) else float(vals[0])

    def cdf_left(self, x: np.ndarray) -> np.ndarray:
        if self.degenerate:
            return (np.asarray(x, dtype=float) > float(self.samples_[0])).astype(float)
        return self.cdf(x)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples_))

    @property
    def std(self) -> float:
        # Mixture-of-normals variance: sample variance plus bandwidth^2.
        return math.sqrt(float(np.var(self.samples_)) + self.bandwidth**2)


#: Registry of model families by name, in the order the paper discusses them.
MODEL_FAMILIES: Dict[str, Type[DurationModel]] = {
    "constant": ConstantModel,
    "uniform": UniformModel,
    "normal": NormalModel,
    "gamma": GammaModel,
    "lognormal": LognormalModel,
    "lognormal_mixture": LognormalMixtureModel,
    "kde": KDEModel,
    "empirical": EmpiricalModel,
}


def fit_family(family: str, samples: Sequence[float]) -> DurationModel:
    """Fit one named family to ``samples``."""
    try:
        cls = MODEL_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown model family {family!r}; choose from {sorted(MODEL_FAMILIES)}"
        ) from None
    return cls.fit(samples)


def fit_all_families(
    samples: Sequence[float],
    families: Sequence[str] = ("normal", "gamma", "lognormal"),
) -> Dict[str, DurationModel]:
    """Fit every requested family — the paper's Fig. 3/4 overlay set."""
    return {f: fit_family(f, samples) for f in families}


def best_fit(
    samples: Sequence[float],
    families: Sequence[str] = ("normal", "gamma", "lognormal"),
    criterion: str = "aic",
) -> DurationModel:
    """Fit ``families`` and return the winner under ``criterion``.

    ``criterion`` is ``"aic"`` (default) or ``"ks"``.  With fewer than two
    samples the comparison is meaningless, so the first family wins.
    """
    fits = fit_all_families(samples, families)
    arr = _as_samples(samples)
    if arr.size < 2:
        return fits[families[0]]
    if criterion == "aic":
        def score(m: DurationModel) -> float:
            return m.aic(arr)
    elif criterion == "ks":
        def score(m: DurationModel) -> float:
            return m.ks_statistic(arr)
    else:
        raise ValueError(f"unknown criterion {criterion!r}")
    return min(fits.values(), key=score)


# -- parameter (de)serialization for calibration documents ------------------
def model_to_params(model: DurationModel) -> Dict[str, object]:
    """JSON-serializable parameters of a fitted model.

    Round-trips through :func:`model_from_params`:
    ``model_from_params(m.family, model_to_params(m))`` reconstructs a model
    that samples bit-identically to ``m``.
    """
    if isinstance(model, ConstantModel):
        return {"value": model.value}
    if isinstance(model, UniformModel):
        return {"lo": model.lo, "hi": model.hi}
    if isinstance(model, NormalModel):
        return {"mu": model.mu, "sigma": model.sigma}
    if isinstance(model, GammaModel):
        return {"shape": model.shape, "scale": model.scale}
    if isinstance(model, LognormalMixtureModel):
        return {
            "weights": list(model.weights),
            "mus_log": list(model.mus_log),
            "sigmas_log": list(model.sigmas_log),
        }
    if isinstance(model, LognormalModel):
        return {"mu_log": model.mu_log, "sigma_log": model.sigma_log}
    if isinstance(model, KDEModel):
        return {"samples": model.samples_.tolist(), "bandwidth": model.bandwidth}
    if isinstance(model, EmpiricalModel):
        return {"samples": model.samples_.tolist()}
    raise TypeError(f"cannot serialize model family {model.family!r}")


def model_from_params(family: str, params: Mapping[str, object]) -> DurationModel:
    """Reconstruct a model from :func:`model_to_params` output."""
    p = dict(params)
    try:
        if family == "constant":
            return ConstantModel(value=float(p["value"]))
        if family == "uniform":
            return UniformModel(lo=float(p["lo"]), hi=float(p["hi"]))
        if family == "normal":
            return NormalModel(mu=float(p["mu"]), sigma=float(p["sigma"]))
        if family == "gamma":
            return GammaModel(shape=float(p["shape"]), scale=float(p["scale"]))
        if family == "lognormal":
            return LognormalModel(mu_log=float(p["mu_log"]), sigma_log=float(p["sigma_log"]))
        if family == "lognormal_mixture":
            return LognormalMixtureModel(
                weights=tuple(float(w) for w in p["weights"]),
                mus_log=tuple(float(m) for m in p["mus_log"]),
                sigmas_log=tuple(float(s) for s in p["sigmas_log"]),
            )
        if family == "kde":
            return KDEModel(
                samples_=np.asarray(p["samples"], dtype=float),
                bandwidth=float(p["bandwidth"]),
            )
        if family == "empirical":
            return EmpiricalModel(samples_=np.asarray(p["samples"], dtype=float))
    except KeyError as exc:
        raise ValueError(f"missing parameter {exc} for family {family!r}") from None
    raise KeyError(
        f"unknown model family {family!r}; choose from {sorted(MODEL_FAMILIES)}"
    )
