"""NumPy implementations of the tile QR kernels (paper Algorithm 2).

The tile QR factorization relies on four structured kernels.  With ``V``
holding unit-scaled Householder reflectors and ``T`` the compact-WY triangular
factor (``Q = I - V T V^T``), the kernels are:

* ``geqrt(A, T)``  - QR of one ``b x b`` tile.  ``A`` is overwritten with
  ``R`` in its upper triangle and the reflector vectors ``V`` (unit diagonal
  implied) strictly below the diagonal; ``T`` receives the WY factor.
* ``ormqr(Vkk, Tkk, C)`` - apply ``Q^T`` from a ``geqrt`` to tile ``C``.
* ``tsqrt(R, A2, T)`` - QR of a triangle-on-top-of-square stack
  ``[R; A2]`` (``2b x b``).  The reflectors have the structured form
  ``v_j = [e_j; v2_j]``: the top block of ``V`` is the identity, so only the
  dense bottom block ``V2`` is stored (in ``A2``).
* ``tsmqr(A1, A2, V2, T)`` - apply ``Q^T`` from a ``tsqrt`` to the stacked
  pair ``[A1; A2]``.  This is the DTSMQR kernel — the computational
  workhorse of tile QR that the paper's Fig. 3 profiles.

The Householder generation follows LAPACK ``dlarfg``; the ``T`` recurrence is
``dlarft`` (forward, columnwise).  All kernels mutate their outputs in place.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["householder", "geqrt", "ormqr", "tsqrt", "tsmqr", "build_q"]


def householder(x: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """LAPACK ``dlarfg``: reflector annihilating ``x[1:]``.

    Returns ``(v, tau, beta)`` with ``v[0] == 1`` such that
    ``(I - tau v v^T) x = beta e_1``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("householder expects a non-empty vector")
    alpha = float(x[0])
    xnorm = float(np.linalg.norm(x[1:])) if x.size > 1 else 0.0
    v = x.copy()
    v[0] = 1.0
    if xnorm == 0.0:
        return v, 0.0, alpha
    beta = -math.copysign(math.hypot(alpha, xnorm), alpha)
    tau = (beta - alpha) / beta
    v[1:] = x[1:] / (alpha - beta)
    return v, tau, beta


def geqrt(a: np.ndarray, t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """QR of a square tile with compact-WY ``T`` (DGEQRT, ``ib == nb``)."""
    n = a.shape[0]
    if a.shape != (n, n) or t.shape != (n, n):
        raise ValueError("geqrt expects square a and t of equal order")
    t[...] = 0.0
    for j in range(n):
        v, tau, beta = householder(a[j:, j])
        # Apply (I - tau v v^T) to the trailing columns.
        if tau != 0.0 and j + 1 < n:
            w = v @ a[j:, j + 1 :]
            a[j:, j + 1 :] -= tau * np.outer(v, w)
        a[j, j] = beta
        a[j + 1 :, j] = v[1:]
        # T recurrence (dlarft): T[:j, j] = -tau * T[:j, :j] @ V[:, :j]^T v_j.
        if j > 0:
            # Full v_j including implicit unit diagonal.
            vj = np.zeros(n)
            vj[j] = 1.0
            vj[j + 1 :] = a[j + 1 :, j]
            vtv = np.zeros(j)
            for i in range(j):
                vi = np.zeros(n)
                vi[i] = 1.0
                vi[i + 1 :] = a[i + 1 :, i]
                vtv[i] = vi @ vj
            t[:j, j] = -tau * (t[:j, :j] @ vtv)
        t[j, j] = tau
    return a, t


def _unit_lower(v_packed: np.ndarray) -> np.ndarray:
    """Extract the unit-lower-triangular ``V`` from a ``geqrt`` output tile."""
    v = np.tril(v_packed, -1)
    np.fill_diagonal(v, 1.0)
    return v


def ormqr(v_packed: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Apply ``Q^T`` of a ``geqrt`` factorization to tile ``c`` (DORMQR).

    ``Q^T = I - V T^T V^T``, hence ``c <- c - V T^T (V^T c)``.
    """
    n = c.shape[0]
    if v_packed.shape != (n, n) or t.shape != (n, n):
        raise ValueError("ormqr expects conforming square tiles")
    v = _unit_lower(v_packed)
    w = t.T @ (v.T @ c)
    c -= v @ w
    return c


def tsqrt(r: np.ndarray, a2: np.ndarray, t: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """QR of the stack ``[r; a2]`` (DTSQRT).

    ``r`` (upper triangular) is updated to the new ``R``; ``a2`` is
    overwritten with the dense reflector block ``V2``; ``t`` receives the
    compact-WY factor.  Only the upper triangle of ``r`` is referenced.
    """
    n = r.shape[0]
    if r.shape != (n, n) or a2.shape != (n, n) or t.shape != (n, n):
        raise ValueError("tsqrt expects three square tiles of equal order")
    t[...] = 0.0
    for j in range(n):
        # Column j of the stack below the triangle: [r[j, j]; a2[:, j]].
        x = np.empty(n + 1)
        x[0] = r[j, j]
        x[1:] = a2[:, j]
        v, tau, beta = householder(x)
        r[j, j] = beta
        v2 = v[1:]
        a2[:, j] = v2
        # Update trailing columns jj > j of the stack.
        if tau != 0.0 and j + 1 < n:
            w = r[j, j + 1 :] + v2 @ a2[:, j + 1 :]
            r[j, j + 1 :] -= tau * w
            a2[:, j + 1 :] -= tau * np.outer(v2, w)
        # T recurrence: top blocks of the v's are orthogonal unit vectors, so
        # v_i^T v_j reduces to v2_i^T v2_j for i != j.
        if j > 0:
            vtv = a2[:, :j].T @ v2
            t[:j, j] = -tau * (t[:j, :j] @ vtv)
        t[j, j] = tau
    return r, a2, t


def tsmqr(a1: np.ndarray, a2: np.ndarray, v2: np.ndarray, t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Apply ``Q^T`` of a ``tsqrt`` to the stacked pair ``[a1; a2]`` (DTSMQR).

    With ``V = [I; V2]``: ``[a1; a2] <- [a1; a2] - [I; V2] T^T (a1 + V2^T a2)``.
    """
    n = a1.shape[0]
    for tile in (a2, v2, t):
        if tile.shape != (n, n):
            raise ValueError("tsmqr expects four square tiles of equal order")
    w = t.T @ (a1 + v2.T @ a2)
    a1 -= w
    a2 -= v2 @ w
    return a1, a2


def build_q(v_packed: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Materialise the orthogonal ``Q = I - V T V^T`` of one ``geqrt`` tile.

    Only used by tests and examples; the factorization itself never forms
    ``Q`` explicitly.
    """
    n = v_packed.shape[0]
    v = _unit_lower(v_packed)
    return np.eye(n) - v @ t @ v.T
