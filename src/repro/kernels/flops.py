"""Floating-point operation counts for tile kernels and whole factorizations.

The per-kernel counts follow the standard LAPACK working notes conventions
used by PLASMA.  ``b`` denotes the tile size (``nb`` in the paper) and ``ib``
the inner blocking of the QR kernels; the QR counts below use the
``ib == b`` compact-WY convention, which is what our NumPy kernels implement.

Whole-factorization counts use the classic formulas (``n^3/3`` for Cholesky,
``4/3 n^3`` for QR, ``2/3 n^3`` for LU) so that reported GFLOP/s values are
comparable with the paper's plots, which normalise by the *algorithmic* flop
count rather than the slightly larger tile-algorithm count.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = [
    "kernel_flops",
    "cholesky_flops",
    "qr_flops",
    "lu_flops",
    "KERNEL_FLOPS",
]


def _potrf(b: int) -> float:
    # (1/3)b^3 + (1/2)b^2 + (1/6)b
    return b**3 / 3.0 + b**2 / 2.0 + b / 6.0


def _trsm(b: int) -> float:
    return float(b**3)


def _syrk(b: int) -> float:
    return float(b**2 * (b + 1))


def _gemm(b: int) -> float:
    return float(2 * b**3)


def _geqrt(b: int) -> float:
    # Panel factorization of a b x b tile plus T-factor construction.
    return (4.0 / 3.0) * b**3 + b**3  # ~ (7/3) b^3 with T build


def _ormqr(b: int) -> float:
    # Apply a b x b block reflector to one b x b tile: C <- Q^T C.
    return float(3 * b**3)


def _tsqrt(b: int) -> float:
    # QR of a triangle stacked on a square tile (2b x b, structured).
    return float(2 * b**3) + (2.0 / 3.0) * b**3


def _tsmqr(b: int) -> float:
    # Apply TSQRT reflectors to a pair of tiles; the dominant QR kernel.
    return float(4 * b**3)


def _getrf_nopiv(b: int) -> float:
    return (2.0 / 3.0) * b**3


#: Map of kernel name to a ``tile_size -> flops`` function.  Names match the
#: kernel names emitted by the algorithm generators.
KERNEL_FLOPS: Dict[str, Callable[[int], float]] = {
    "DPOTRF": _potrf,
    "DTRSM": _trsm,
    "DSYRK": _syrk,
    "DGEMM": _gemm,
    "DGEQRT": _geqrt,
    "DORMQR": _ormqr,
    "DTSQRT": _tsqrt,
    "DTSMQR": _tsmqr,
    "DGETRF_NOPIV": _getrf_nopiv,
}


def kernel_flops(kernel: str, tile_size: int) -> float:
    """Flop count of one instance of ``kernel`` on ``tile_size`` tiles.

    Raises ``KeyError`` for unknown kernels so that a mis-spelled kernel name
    fails loudly rather than silently contributing zero flops.
    """
    if tile_size <= 0:
        raise ValueError("tile_size must be positive")
    return KERNEL_FLOPS[kernel](tile_size)


def cholesky_flops(n: int) -> float:
    """Algorithmic flop count of an ``n x n`` Cholesky factorization."""
    return n**3 / 3.0 + n**2 / 2.0 + n / 6.0


def qr_flops(n: int, m: int | None = None) -> float:
    """Algorithmic flop count of an ``m x n`` Householder QR (default square)."""
    m = n if m is None else m
    if m < n:
        raise ValueError("qr_flops expects m >= n")
    return 2.0 * m * n**2 - (2.0 / 3.0) * n**3


def lu_flops(n: int) -> float:
    """Algorithmic flop count of an ``n x n`` LU factorization."""
    return (2.0 / 3.0) * n**3 - n**2 / 2.0 + 5.0 * n / 6.0
