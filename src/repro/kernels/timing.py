"""Per-kernel timing models assembled from empirical samples.

A :class:`KernelModelSet` maps each kernel class name (``"DGEMM"``,
``"DTSMQR"``, ...) to a fitted :class:`~repro.kernels.distributions.DurationModel`.
It is the object the simulator consults to obtain the "approximate execution
time such as the distribution-based estimator" of paper Section V-D.

Construction follows the paper's calibration methodology (Section V-B1):

* samples come from an *actual execution of the algorithm* under the target
  scheduler (see :mod:`repro.machine.calibration`), not from isolated
  cold/warm-cache micro-benchmarks;
* the first kernel executed by each thread carries an MKL-style
  initialisation penalty, an "extreme outlier [that] can drastically affect
  the model fitting" — :func:`trim_warmup_outliers` removes such points before
  fitting (mirroring the paper's extra warm-up call).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from .distributions import (
    _DURATION_FLOOR,
    ConstantModel,
    DurationModel,
    LognormalModel,
    NormalModel,
    best_fit,
    fit_family,
)

__all__ = [
    "trim_warmup_outliers",
    "KernelModelSet",
    "DirectSampler",
    "BatchedNormalSampler",
    "SWEEP_CONST",
    "SWEEP_NORMAL",
    "SWEEP_LOGNORMAL",
]

# Sweep-transform kinds for whole-run vectorized sampling (see
# KernelModelSet.sweep_transforms).
SWEEP_CONST = 0
SWEEP_NORMAL = 1
SWEEP_LOGNORMAL = 2


class DirectSampler:
    """Per-call duration draws — the reference sampling path.

    One Python→NumPy round trip per draw.  Kept both as the fallback for
    model sets the batched path cannot drive and as the oracle the batched
    path is property-tested against.
    """

    __slots__ = ("_models", "_rng")

    batched = False

    def __init__(self, models: Dict[str, DurationModel], rng: np.random.Generator) -> None:
        self._models = models
        self._rng = rng

    def draw(self, kernel: str) -> float:
        try:
            model = self._models[kernel]
        except KeyError:
            raise KeyError(
                f"no timing model for kernel {kernel!r}; "
                f"calibrated kernels: {sorted(self._models)}"
            ) from None
        return model.sample(self._rng)


class BatchedNormalSampler:
    """Batched duration draws for normal-driven model sets.

    Kernel-duration sampling is the innermost per-task cost of a simulated
    run, and the per-call path pays a Python→NumPy dispatch for every task.
    When *every* model in the set consumes either exactly one standard
    normal per draw (``rng_use == "normal"``: normal, lognormal) or nothing
    (``rng_use == "none"``: constant), the whole run's randomness reduces to
    one standard-normal stream — so variates are pulled from the generator
    in vectorised blocks and each draw is a dict lookup plus a scalar
    transform.

    Bit-identical to :class:`DirectSampler` by construction: NumPy fills
    ``standard_normal(size=n)`` with the same ziggurat sequence as ``n``
    scalar calls, and each model's ``from_standard_normal`` applies the
    same double-precision operations as its ``sample``.  The equivalence is
    enforced by a property test (`tests/test_bench_and_sampling.py`).
    """

    __slots__ = ("_models", "_rng", "_block", "_buf", "_pos")

    batched = True

    def __init__(
        self,
        models: Dict[str, DurationModel],
        rng: np.random.Generator,
        *,
        block: int = 512,
    ) -> None:
        if block < 1:
            raise ValueError("block must be at least 1")
        self._models = models
        self._rng = rng
        self._block = block
        # tolist() converts each float64 to the bit-identical Python float;
        # the per-draw transform then runs on native floats, which is
        # measurably faster than operating on NumPy scalars.
        self._buf = rng.standard_normal(block).tolist()
        self._pos = 0

    def draw(self, kernel: str) -> float:
        try:
            model = self._models[kernel]
        except KeyError:
            raise KeyError(
                f"no timing model for kernel {kernel!r}; "
                f"calibrated kernels: {sorted(self._models)}"
            ) from None
        if model.rng_use == "none":
            return model.sample(self._rng)
        pos = self._pos
        if pos == self._block:
            self._buf = self._rng.standard_normal(self._block).tolist()
            pos = 0
        self._pos = pos + 1
        return model.from_standard_normal(self._buf[pos])


def trim_warmup_outliers(
    samples: Sequence[float],
    *,
    factor: float = 3.0,
    max_fraction: float = 0.25,
) -> np.ndarray:
    """Drop warm-up outliers: samples more than ``factor`` x the median.

    The MKL-style first-call penalty produces a handful of points several
    times larger than the steady-state time.  Points above
    ``factor * median(samples)`` are removed, but never more than
    ``max_fraction`` of the sample (a distribution that is *genuinely* heavy
    tailed should not be silently decimated).
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if factor <= 1.0:
        raise ValueError("factor must exceed 1.0")
    med = float(np.median(arr))
    keep = arr <= factor * med
    dropped = int(arr.size - keep.sum())
    if dropped > max_fraction * arr.size:
        # Too many "outliers" — the tail is real; keep everything.
        return arr.copy()
    return arr[keep]


@dataclass
class KernelModelSet:
    """Fitted duration models for every kernel class in an algorithm.

    Attributes
    ----------
    models:
        Kernel name to fitted model.
    family:
        The family used when fitting (``"best"`` if chosen per kernel by AIC).
    sample_counts:
        Number of calibration samples behind each model, for reporting.
    """

    models: Dict[str, DurationModel] = field(default_factory=dict)
    family: str = "unspecified"
    sample_counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_samples(
        cls,
        samples: Mapping[str, Sequence[float]],
        *,
        family: str = "lognormal",
        trim_warmup: bool = True,
        trim_factor: float = 3.0,
    ) -> "KernelModelSet":
        """Fit one model per kernel from calibration samples.

        ``family`` is any name in
        :data:`repro.kernels.distributions.MODEL_FAMILIES`, or ``"best"`` to
        select per kernel among normal/gamma/lognormal by AIC (the comparison
        the paper performs in Figs. 3-4).
        """
        models: Dict[str, DurationModel] = {}
        counts: Dict[str, int] = {}
        for kernel, raw in samples.items():
            arr = np.asarray(raw, dtype=float)
            if arr.size == 0:
                raise ValueError(f"no samples for kernel {kernel!r}")
            if trim_warmup and arr.size >= 4:
                arr = trim_warmup_outliers(arr, factor=trim_factor)
            if family == "best":
                models[kernel] = best_fit(arr)
            else:
                models[kernel] = fit_family(family, arr)
            counts[kernel] = int(arr.size)
        return cls(models=models, family=family, sample_counts=counts)

    def duration(self, kernel: str, rng: np.random.Generator) -> float:
        """Draw one simulated duration for ``kernel``."""
        try:
            model = self.models[kernel]
        except KeyError:
            raise KeyError(
                f"no timing model for kernel {kernel!r}; "
                f"calibrated kernels: {sorted(self.models)}"
            ) from None
        return model.sample(rng)

    @property
    def batchable(self) -> bool:
        """Can a :class:`BatchedNormalSampler` drive every model in the set?

        True when each model draws exactly one standard normal per sample
        (``rng_use == "normal"``) or none (``"none"``).  A single
        ``"other"`` model (uniform, gamma, empirical) would interleave its
        own generator consumption with the pre-pulled normal batch and
        break draw-sequence equivalence, so such sets fall back wholesale.
        """
        return all(m.rng_use in ("normal", "none") for m in self.models.values())

    def sweep_transforms(self):
        """Closed-form per-kernel transforms for whole-run vectorized sampling.

        :class:`BatchedNormalSampler` amortises generator dispatch into
        512-draw blocks but still pays one Python call per draw.  The array
        engine goes further: it pre-draws the *entire run's* standard-normal
        stream in one ``standard_normal(n)`` call and applies a scalar
        transform per dispatch.  This method supplies those transforms —
        ``{kernel: (kind, a, b)}`` where ``kind`` is :data:`SWEEP_CONST`
        (duration ``a``, consumes no variate), :data:`SWEEP_NORMAL`
        (``max(a + b*z, floor)``) or :data:`SWEEP_LOGNORMAL`
        (``max(exp(a + b*z), floor)``), each consuming exactly one variate —
        matching ``from_standard_normal`` / ``ConstantModel.sample``
        bit-for-bit, floor included.

        Returns ``None`` unless every model is exactly a
        :class:`~repro.kernels.distributions.ConstantModel`,
        :class:`~repro.kernels.distributions.NormalModel` or
        :class:`~repro.kernels.distributions.LognormalModel` (subclasses may
        override the arithmetic, so they disqualify the fast path and fall
        back to per-call sampling).
        """
        out = {}
        for kernel, model in self.models.items():
            if type(model) is ConstantModel:
                out[kernel] = (SWEEP_CONST, max(float(model.value), _DURATION_FLOOR), 0.0)
            elif type(model) is NormalModel:
                out[kernel] = (SWEEP_NORMAL, float(model.mu), float(model.sigma))
            elif type(model) is LognormalModel:
                out[kernel] = (SWEEP_LOGNORMAL, float(model.mu_log), float(model.sigma_log))
            else:
                return None
        return out

    def make_sampler(self, rng: np.random.Generator, *, batched: bool = True):
        """A draw-per-kernel sampler bound to ``rng``.

        Returns a :class:`BatchedNormalSampler` when the set is
        :attr:`batchable` (and ``batched`` is not suppressed), otherwise a
        :class:`DirectSampler`.  Both produce identical draw sequences for
        the same generator state; the batched one is several times faster.
        """
        if batched and self.batchable:
            return BatchedNormalSampler(self.models, rng)
        return DirectSampler(self.models, rng)

    def mean_duration(self, kernel: str) -> float:
        return self.models[kernel].mean

    def kernels(self) -> Iterable[str]:
        return self.models.keys()

    def __contains__(self, kernel: str) -> bool:
        return kernel in self.models

    def __len__(self) -> int:
        return len(self.models)

    def summary(self) -> str:
        """One line per kernel: family, mean, std, sample count."""
        rows = []
        for kernel in sorted(self.models):
            m = self.models[kernel]
            n = self.sample_counts.get(kernel, 0)
            rows.append(
                f"{kernel:<14s} {m.family:<10s} mean={m.mean * 1e6:10.2f}us "
                f"std={m.std * 1e6:9.2f}us  n={n}"
            )
        return "\n".join(rows)

    def scaled(self, factor: float) -> "KernelModelSet":
        """Return a copy whose mean durations are scaled by ``factor``.

        Used by what-if studies (e.g. "how would the schedule change on a
        machine 2x faster?") without refitting.
        """
        from .distributions import LognormalModel, NormalModel

        if factor <= 0:
            raise ValueError("factor must be positive")
        out: Dict[str, DurationModel] = {}
        for kernel, model in self.models.items():
            if isinstance(model, NormalModel):
                out[kernel] = NormalModel(mu=model.mu * factor, sigma=model.sigma * factor)
            elif isinstance(model, LognormalModel):
                out[kernel] = LognormalModel(
                    mu_log=model.mu_log + float(np.log(factor)),
                    sigma_log=model.sigma_log,
                )
            else:
                # Generic fallback: refit a normal to scaled moments.
                out[kernel] = NormalModel(
                    mu=model.mean * factor, sigma=max(model.std * factor, 1e-15)
                )
        return KernelModelSet(models=out, family=self.family, sample_counts=dict(self.sample_counts))
