"""Load-aware kernel timing models — the paper's §VII "improved kernel model".

The baseline simulator models each kernel class with one distribution fitted
over the whole calibration run.  But kernel times depend on machine load:
bandwidth contention slows memory-bound kernels when more cores are active,
so a model calibrated at saturation over-predicts durations in the ramp-up
and tail phases of a run — exactly where the paper observes its largest
errors ("the data points that show the greatest error all occur for
relatively small problem sizes").

:class:`LoadAwareModel` fits ``duration ~ (a + b * load) * eps`` with
``eps`` log-normal, from the ``(duration, load)`` pairs harvested by
:func:`repro.trace.load.loaded_kernel_samples`.  The engine already passes
the instantaneous active-worker count to the backend, so
:class:`LoadAwareSimulationBackend` can evaluate the conditional model at
simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..schedulers.base import TaskNode

__all__ = ["LoadAwareModel", "LoadAwareModelSet", "LoadAwareSimulationBackend"]

_DURATION_FLOOR = 1e-9


@dataclass
class LoadAwareModel:
    """``duration = (intercept + slope * load) * lognormal(0, sigma)``."""

    intercept: float
    slope: float
    sigma_log: float

    @classmethod
    def fit(cls, pairs: Sequence[Tuple[float, float]]) -> "LoadAwareModel":
        """Least-squares fit of the load line plus residual spread.

        With fewer than three points, or no load variation, falls back to a
        constant-mean model (slope 0).
        """
        arr = np.asarray(pairs, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] == 0:
            raise ValueError("pairs must be a non-empty sequence of (duration, load)")
        durations, loads = arr[:, 0], arr[:, 1]
        if np.any(durations <= 0):
            raise ValueError("durations must be positive")
        if arr.shape[0] < 3 or float(np.std(loads)) < 1e-9:
            mean = float(np.mean(durations))
            resid = durations / mean
            sigma = float(np.std(np.log(resid), ddof=1)) if arr.shape[0] > 1 else 0.0
            return cls(intercept=mean, slope=0.0, sigma_log=max(sigma, 1e-12))
        slope, intercept = np.polyfit(loads, durations, 1)
        predicted = np.maximum(intercept + slope * loads, _DURATION_FLOOR)
        sigma = float(np.std(np.log(durations / predicted), ddof=1))
        return cls(
            intercept=float(intercept),
            slope=float(slope),
            sigma_log=max(sigma, 1e-12),
        )

    def mean_at(self, load: float) -> float:
        """Expected duration at ``load`` active workers."""
        return max(self.intercept + self.slope * load, _DURATION_FLOOR)

    def sample(self, rng: np.random.Generator, load: float) -> float:
        base = self.mean_at(load)
        return max(base * float(rng.lognormal(0.0, self.sigma_log)), _DURATION_FLOOR)


@dataclass
class LoadAwareModelSet:
    """One :class:`LoadAwareModel` per kernel class."""

    models: Dict[str, LoadAwareModel] = field(default_factory=dict)

    @classmethod
    def from_samples(
        cls, samples: Mapping[str, Sequence[Tuple[float, float]]]
    ) -> "LoadAwareModelSet":
        return cls(models={k: LoadAwareModel.fit(v) for k, v in samples.items()})

    @classmethod
    def from_trace(cls, trace, *, drop_first_per_worker: bool = True) -> "LoadAwareModelSet":
        """Fit directly from a calibration trace."""
        from ..trace.load import loaded_kernel_samples

        return cls.from_samples(
            loaded_kernel_samples(trace, drop_first_per_worker=drop_first_per_worker)
        )

    def duration(self, kernel: str, load: float, rng: np.random.Generator) -> float:
        try:
            model = self.models[kernel]
        except KeyError:
            raise KeyError(
                f"no load-aware model for kernel {kernel!r}; "
                f"calibrated kernels: {sorted(self.models)}"
            ) from None
        return model.sample(rng, load)

    def __contains__(self, kernel: str) -> bool:
        return kernel in self.models

    def summary(self) -> str:
        rows = []
        for kernel in sorted(self.models):
            m = self.models[kernel]
            rows.append(
                f"{kernel:<14s} intercept={m.intercept * 1e6:9.2f}us "
                f"slope={m.slope * 1e6:8.3f}us/core sigma={m.sigma_log:.4f}"
            )
        return "\n".join(rows)


class LoadAwareSimulationBackend:
    """Simulation backend evaluating the conditional kernel model.

    The engine reports the number of active workers (including the task
    being placed) at every dispatch; the model turns that into a
    load-conditioned duration draw.
    """

    def __init__(self, models: LoadAwareModelSet, *, warmup_penalty: float = 0.0) -> None:
        if warmup_penalty < 0:
            raise ValueError("warmup_penalty must be non-negative")
        self.models = models
        self.warmup_penalty = warmup_penalty
        self._rng: Optional[np.random.Generator] = None
        self._warmed: set = set()

    def reset(self, rng: np.random.Generator, n_workers: int) -> None:
        self._rng = rng
        self._warmed = set()

    def duration(self, node: TaskNode, worker: int, now: float, active_workers: int) -> float:
        if self._rng is None:
            raise RuntimeError("LoadAwareSimulationBackend.duration called before reset()")
        d = self.models.duration(node.kernel, float(active_workers), self._rng)
        if self.warmup_penalty > 0.0 and worker not in self._warmed:
            self._warmed.add(worker)
            d += self.warmup_penalty
        return d
