"""CLAIM-ACC: aggregate accuracy over all three schedulers (paper §VI-B).

"The worst case error for any simulation with any simulator is
approximately 16%, but the vast majority of test cases show less than 5%
error."  The bench aggregates the Figs. 8-10 sweeps and checks both halves
of the claim (with modest slack for the synthetic machine substitute).
"""

from repro.experiments import accuracy_summary, performance_figure, write_artifact


def test_claim_accuracy_all_schedulers(benchmark, sweep_nts):
    def run_all():
        return {
            name: performance_figure(name, nts=sweep_nts)
            for name in ("ompss", "starpu", "quark")
        }

    figures = benchmark.pedantic(run_all, rounds=1, iterations=1)
    summary = accuracy_summary(figures)

    # Paper: worst ~16 %.  Small problems dominate the error tail here
    # exactly as in the paper ("the data points that show the greatest error
    # all occur for relatively small problem sizes").
    assert summary["max_error_percent"] < 20.0
    # Paper: "vast majority" below 5 %.
    assert summary["fraction_below_5pct"] > 0.5
    assert summary["median_error_percent"] < 5.0

    # The error tail comes from the smallest problems, as in the paper.
    small_errors, large_errors = [], []
    for per_sched in figures.values():
        for pts in per_sched.values():
            mid = pts[len(pts) // 2].nt
            for p in pts:
                (small_errors if p.nt < mid else large_errors).append(p.error_percent)
    assert max(large_errors) <= max(small_errors)

    write_artifact("claim_accuracy.txt", f"{summary}\n", "claims")
    print("\n", summary)
