"""FIG4: DGEMM kernel-time density with fitted curves (paper Fig. 4).

Paper: "the simple distributions do not fit quite as well as the DTSMQR
kernels, but they seem to model the kernel execution times better than a
constant or uniform distribution."  The bench checks exactly that ordering:
every parametric family beats the uniform fit in KS distance.
"""

from repro.experiments import distribution_figure, write_artifact
from repro.kernels.distributions import fit_family


def test_fig4_dgemm_distribution(benchmark):
    fig = benchmark.pedantic(
        distribution_figure, args=("fig4",), rounds=1, iterations=1
    )

    assert fig.kernel == "DGEMM"
    assert fig.samples.size > 200

    ks = {f.family: f.ks for f in fig.fits.values()}
    assert all(v < 0.15 for v in ks.values()), ks

    # Better than a uniform model (the paper's explicit comparison).
    uniform_ks = fit_family("uniform", fig.samples).ks_statistic(fig.samples)
    assert all(v < uniform_ks for v in ks.values())

    table = fig.table()
    write_artifact("fig04_fits.txt", table + "\n", "fig04")
    write_artifact("fig04_density.txt", fig.density_table() + "\n", "fig04")
    print("\n" + table + f"\nuniform KS (for contrast): {uniform_ks:.3f}")
