"""FIG10: QUARK performance — QR + Cholesky, real vs simulated vs % error
(paper Fig. 10).  Same shape checks as FIG8, under the QUARK-like runtime.
"""

from repro.experiments import figure_table, performance_figure, write_artifact
from repro.experiments.performance import accuracy_summary
from test_fig08_ompss_performance import _check_figure_shape


def test_fig10_quark_performance(benchmark, sweep_nts):
    data = benchmark.pedantic(
        performance_figure,
        args=("quark",),
        kwargs={"nts": sweep_nts},
        rounds=1,
        iterations=1,
    )
    _check_figure_shape(data)
    table = figure_table("quark", data)
    summary = accuracy_summary({"quark": data})
    write_artifact("fig10_quark.txt", table + f"\n{summary}\n", "fig08_10")
    print("\n" + table)
    print(summary)
