"""ABL-WARMUP: calibration warm-up outlier handling (paper §V-B1).

"The first kernel on each thread will take significantly longer to execute
... These extreme outliers can drastically affect the model fitting."  The
bench calibrates from a deliberately small run (so the 48 per-thread
warm-up penalties are a large sample fraction) with and without the paper's
mitigation and compares prediction error.
"""

from repro.experiments import ablation_warmup, write_artifact


def test_ablation_warmup_outliers(benchmark):
    errors, table = benchmark.pedantic(ablation_warmup, rounds=1, iterations=1)

    # Handling the outliers must not be worse, and ignoring them should
    # visibly inflate prediction error on this small calibration run.
    assert errors["handled"] <= errors["ignored"]
    assert errors["ignored"] > 1.5 * errors["handled"] or errors["ignored"] > 5.0

    write_artifact("ablation_warmup.txt", table + "\n", "ablations")
    print("\n" + table)
