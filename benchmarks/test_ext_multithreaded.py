"""EXT-MT: multi-threaded tasks (paper §VII future work, implemented).

"The current simulations only support the single threaded tasks and are
thus missing the nested parallelism feature that is available through
multi-threaded tasks in QUARK."  This bench exercises that feature on tile
QR, where the DGEQRT/DTSQRT panel kernels sit on the critical path: gang-
scheduling them across 1/2/4/8 cores raises performance monotonically at
strong-scaling sizes, and the simulator tracks both the magnitude and the
ranking of the effect.
"""

from repro.algorithms import qr_program
from repro.core.simulator import validate
from repro.experiments import format_table, write_artifact
from repro.machine import calibrate, get_machine
from repro.schedulers import QuarkScheduler

WIDTHS = (1, 2, 4, 8)


def test_ext_multithreaded_panels(benchmark):
    machine = get_machine("magny_cours_48")
    nt, nb = 10, 200  # strong-scaling region: panels dominate

    def run_all():
        rows = {}
        for width in WIDTHS:
            models, _ = calibrate(
                qr_program(nt, nb, panel_width=width),
                QuarkScheduler(48),
                machine,
                seed=0,
            )
            rows[width] = validate(
                qr_program(nt, nb, panel_width=width),
                QuarkScheduler(48),
                machine,
                models,
                seed_real=1,
                seed_sim=2,
                warmup_penalty=machine.warmup_penalty,
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    real = {w: r.gflops_real for w, r in rows.items()}
    sim = {w: r.gflops_sim for w, r in rows.items()}

    # Widening the panels pays off substantially and monotonically.
    assert real[8] > 1.3 * real[1]
    assert real[1] < real[2] < real[4] < real[8]
    # The simulator reproduces the ranking — the autotuning property.
    assert sorted(sim, key=sim.get) == sorted(real, key=real.get)
    for w, r in rows.items():
        assert r.error_percent < 16.0, (w, r.error_percent)

    table = format_table(
        ("panel width", "real GF/s", "sim GF/s", "err %"),
        [(w, rows[w].gflops_real, rows[w].gflops_sim, rows[w].error_percent) for w in WIDTHS],
        title=f"EXT-MT: multi-threaded DGEQRT/DTSQRT panels (QR nt={nt}, tile={nb})",
    )
    write_artifact("ext_multithreaded.txt", table + "\n", "extensions")
    print("\n" + table)
