"""FIG5: the Task Execution Queue scheduling race condition (paper Fig. 5).

Two cores, tasks A (10), B (12), C (1) with C dependent on A.  Correct
simulation: C starts at t=10, makespan 12.  The bench runs the scenario on
the threaded runtime under each guard strategy with an injected dispatch
delay opening the race window, and checks:

* QUARK-style quiesce guard        -> correct trace;
* sleep guard with adequate pause  -> correct trace (paper's portable fix);
* sleep guard with inadequate pause-> C lands after B (the Fig. 5 error);
* no guard                         -> inflated makespan.
"""

from repro.experiments import race_experiment, write_artifact
from repro.experiments.race import CORRECT_C_START, CORRECT_MAKESPAN, run_scenario


def test_fig5_race_condition(benchmark):
    outcomes, table = benchmark.pedantic(
        race_experiment, kwargs={"repeats": 3}, rounds=1, iterations=1
    )

    by_config = {}
    for o in outcomes:
        by_config.setdefault((o.guard, o.sleep_time), []).append(o)

    for o in by_config[("quiesce", 200e-6)]:
        assert o.correct, o
    for o in by_config[("sleep", 10e-3)]:
        assert o.correct, o
    for o in by_config[("sleep", 100e-6)]:
        assert o.c_start >= CORRECT_MAKESPAN - 1e-9  # C displaced behind B
        assert o.makespan > CORRECT_MAKESPAN
    for o in by_config[("none", 0.0)]:
        assert o.makespan > CORRECT_MAKESPAN

    write_artifact("fig05_race.txt", table + "\n", "fig05")
    print("\n" + table)


def test_fig5_guarded_scenario_benchmark(benchmark):
    """Wall-clock of one guarded scenario run (the overhead of the guard)."""
    out = benchmark(lambda: run_scenario("quiesce"))
    assert out.c_start == CORRECT_C_START
