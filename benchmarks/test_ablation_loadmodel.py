"""ABL-LOADMODEL: the §VII "improved kernel model", quantified.

The paper: "It may be possible to improve the accuracy of the simulations
by improving that kernel model" — and its largest errors sit at small
problem sizes, where the machine is *less loaded* than during calibration.
The load-aware model (duration conditioned on active-core count) attacks
exactly that: this bench compares the flat lognormal model against the
load-aware one across problem sizes and checks the error reduction where it
matters.
"""

import numpy as np

from repro.algorithms import qr_program
from repro.core.simulator import run_real, simulate
from repro.experiments import format_table, write_artifact
from repro.kernels.loadmodel import LoadAwareModelSet, LoadAwareSimulationBackend
from repro.kernels.timing import KernelModelSet
from repro.machine import calibration_run, collect_samples, get_machine
from repro.schedulers import QuarkScheduler
from repro.trace.compare import makespan_error

NTS = (6, 8, 10, 14, 22)


def test_ablation_load_aware_model(benchmark):
    machine = get_machine("magny_cours_48")

    def run_all():
        cal = calibration_run(qr_program(16, 180), QuarkScheduler(48), machine, seed=0)
        flat = KernelModelSet.from_samples(collect_samples(cal), family="lognormal")
        aware = LoadAwareModelSet.from_trace(cal)
        rows = []
        for nt in NTS:
            real = run_real(qr_program(nt, 180), QuarkScheduler(48), machine, seed=1)
            sim_flat = simulate(
                qr_program(nt, 180), QuarkScheduler(48), flat, seed=2,
                warmup_penalty=machine.warmup_penalty,
            )
            sim_aware = QuarkScheduler(48).run(
                qr_program(nt, 180),
                LoadAwareSimulationBackend(
                    aware, warmup_penalty=machine.warmup_penalty
                ),
                seed=2,
            )
            rows.append(
                (
                    nt * 180,
                    abs(makespan_error(real, sim_flat)) * 100,
                    abs(makespan_error(real, sim_aware)) * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    flat_small = np.mean([e for n, e, _ in rows if n <= 1800])
    aware_small = np.mean([a for n, _, a in rows if n <= 1800])
    # The load-aware model at least halves the small-problem error.
    assert aware_small < 0.6 * flat_small
    # And never makes the large problems materially worse.
    flat_all = np.mean([e for _, e, _ in rows])
    aware_all = np.mean([a for _, _, a in rows])
    assert aware_all < flat_all

    table = format_table(
        ("n", "flat model err %", "load-aware err %"),
        rows,
        title="ABL-LOADMODEL: flat vs load-conditioned kernel models (QR, QUARK)",
    )
    write_artifact("ablation_loadmodel.txt", table + "\n", "ablations")
    print("\n" + table)
