"""FIG1: the dependence DAG of a 4x4-tile QR factorization (paper Fig. 1).

Paper: 30 vertices (4 GEQRT, 6 UNMQR, 6 TSQRT, 14 TSMQR); "some vertices
have multiple edges from a parent node indicating that there is more than
one data dependence".  The bench regenerates the DAG, checks those counts,
writes the DOT artifact, and times DAG construction.
"""

from repro.experiments import fig1_dag, write_artifact


def test_fig1_qr_dag(benchmark):
    result = benchmark.pedantic(fig1_dag, kwargs={"nt": 4}, rounds=3, iterations=1)

    assert result.stats.n_tasks == 30
    assert result.kernel_counts == {
        "DGEQRT": 4,
        "DORMQR": 6,
        "DTSQRT": 6,
        "DTSMQR": 14,
    }
    assert result.multi_edge_pairs > 0  # the Fig. 1 parallel-edge feature
    assert result.stats.depth >= 10  # long critical chain relative to 30 tasks
    assert result.dot_path is not None and result.dot_path.exists()

    report = result.report()
    write_artifact("fig01_report.txt", report + "\n", "fig01")
    print("\n" + report)
