"""ABL-DIST: kernel-model family vs simulation accuracy (paper §V-B / §VII).

The paper argues that drawing kernel durations from a fitted distribution
— rather than a constant — "adds an element of randomness to the trace,
which is essential for the accuracy", and that normal/gamma/lognormal all
serve.  The bench quantifies each family's makespan error on a QR problem.
"""

from repro.experiments import ablation_distribution, write_artifact


def test_ablation_distribution_family(benchmark):
    outcomes, table = benchmark.pedantic(
        ablation_distribution, rounds=1, iterations=1
    )
    by_family = {o.family: o for o in outcomes}

    # Every recommended parametric family predicts within the paper's
    # envelope on this problem.
    for family in ("normal", "gamma", "lognormal", "empirical"):
        assert by_family[family].error_percent < 10.0, by_family[family]
        assert by_family[family].order_similarity > 0.9

    # The constant model still gets the mean makespan roughly right, but it
    # degrades the *trace*: its completion order correlates less with the
    # real run than the stochastic families' do.
    stochastic_tau = max(
        by_family[f].order_similarity for f in ("normal", "gamma", "lognormal")
    )
    assert by_family["constant"].order_similarity <= stochastic_tau

    write_artifact("ablation_distribution.txt", table + "\n", "ablations")
    print("\n" + table)
