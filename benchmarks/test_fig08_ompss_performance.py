"""FIG8: OmpSs performance — QR + Cholesky, real vs simulated vs % error
(paper Fig. 8).

The bench sweeps matrix sizes at tile 200 on the 48-core machine model
under the OmpSs-like runtime and checks the paper's shape: performance
grows with matrix size, Cholesky outruns QR (its dominant kernel is the
near-peak DGEMM vs the less-tuned DTSMQR), and the simulation tracks the
real curve within the paper's error envelope.
"""

from repro.experiments import figure_table, performance_figure, write_artifact
from repro.experiments.performance import accuracy_summary


def _check_figure_shape(data):
    for algorithm in ("qr", "cholesky"):
        points = data[algorithm]
        real = [p.gflops_real for p in points]
        # Monotone-ish growth toward an asymptote.
        assert real[-1] > real[0] * 2
        # Worst error within the paper's 16 % envelope (plus slack for the
        # synthetic machine).  As in the paper, the error tail belongs to
        # the small problems; the largest size must be accurate.
        errors = [p.error_percent for p in points]
        assert max(errors) < 20.0
        assert errors[-1] < 8.0
    # Cholesky reaches higher GFLOP/s than QR at the largest size.
    assert data["cholesky"][-1].gflops_real > data["qr"][-1].gflops_real


def test_fig8_ompss_performance(benchmark, sweep_nts):
    data = benchmark.pedantic(
        performance_figure,
        args=("ompss",),
        kwargs={"nts": sweep_nts},
        rounds=1,
        iterations=1,
    )
    _check_figure_shape(data)
    table = figure_table("ompss", data)
    summary = accuracy_summary({"ompss": data})
    write_artifact("fig08_ompss.txt", table + f"\n{summary}\n", "fig08_10")
    print("\n" + table)
    print(summary)
