"""FIG9: StarPU performance — QR + Cholesky, real vs simulated vs % error
(paper Fig. 9).  Same shape checks as FIG8, under the StarPU-like runtime.
"""

from repro.experiments import figure_table, performance_figure, write_artifact
from repro.experiments.performance import accuracy_summary
from test_fig08_ompss_performance import _check_figure_shape


def test_fig9_starpu_performance(benchmark, sweep_nts):
    data = benchmark.pedantic(
        performance_figure,
        args=("starpu",),
        kwargs={"nts": sweep_nts},
        rounds=1,
        iterations=1,
    )
    _check_figure_shape(data)
    table = figure_table("starpu", data)
    summary = accuracy_summary({"starpu": data})
    write_artifact("fig09_starpu.txt", table + f"\n{summary}\n", "fig08_10")
    print("\n" + table)
    print(summary)
