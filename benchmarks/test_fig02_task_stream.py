"""FIG2: the serial task stream of a 3x3-tile QR (paper Fig. 2, F0..F13).

The generated stream must match the paper's listing task for task,
including the read/write decorations on every data parameter.
"""

from repro.experiments import FIG2_EXPECTED, fig2_stream, write_artifact


def test_fig2_task_stream(benchmark):
    listing, described = benchmark.pedantic(fig2_stream, rounds=5, iterations=1)

    assert listing == FIG2_EXPECTED
    assert len(listing) == 14
    assert described.startswith("F0 ")

    write_artifact("fig02_stream.txt", described + "\n", "fig02")
    print("\n" + described)
