"""BASE-STATIC: static list scheduling as a prediction baseline (paper §II).

The paper motivates *simulation* over static/analytical approaches: dynamic
runtimes "make scheduling decisions at runtime and respond dynamically", so
a static schedule cannot capture their behaviour.  Measured here in two
parts:

1. **Raw makespan prediction** (reported): with accurate kernel means, a
   HEFT-style static schedule is a respectable estimator of a well-tuned
   run — this is the honest baseline number.
2. **Configuration sensitivity** (asserted): the static schedule is *blind*
   to the runtime — it predicts the identical number for a QUARK with a
   throttled task window as for a well-tuned one, while the real makespans
   differ wildly.  The paper's simulator tracks both, which is precisely
   what makes it usable for the §VI-B autotuning use case.
"""

import numpy as np

from repro.algorithms import qr_program
from repro.core.simulator import run_real, simulate
from repro.dag import list_schedule
from repro.experiments import format_table, write_artifact
from repro.machine import calibrate, get_machine
from repro.schedulers import QuarkScheduler

NTS = (6, 10, 14, 18, 22)
THROTTLED_WINDOW = 8


def test_baseline_static_vs_dynamic_simulation(benchmark):
    machine = get_machine("magny_cours_48")

    def run_all():
        models, _ = calibrate(
            qr_program(16, 180), QuarkScheduler(48), machine, seed=0
        )
        means = {k: models.mean_duration(k) for k in models.kernels()}
        rows = []
        for nt in NTS:
            for window, label in ((None, "default"), (THROTTLED_WINDOW, "throttled")):
                kwargs = {} if window is None else {"window": window}
                real = run_real(
                    qr_program(nt, 180), QuarkScheduler(48, **kwargs), machine, seed=1
                )
                dyn = simulate(
                    qr_program(nt, 180), QuarkScheduler(48, **kwargs), models, seed=2,
                    warmup_penalty=machine.warmup_penalty,
                )
                static = list_schedule(qr_program(nt, 180), 48, means)
                err_dyn = abs(dyn.makespan - real.makespan) / real.makespan * 100
                err_static = abs(static.makespan - real.makespan) / real.makespan * 100
                rows.append((nt * 180, label, err_dyn, err_static))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    default = [(d, s) for _, label, d, s in rows if label == "default"]
    throttled = [(d, s) for _, label, d, s in rows if label == "throttled"]

    # On the throttled configuration the static baseline collapses — it has
    # no notion of the runtime's window — while the dynamic simulator,
    # which runs the actual scheduler, stays accurate.
    assert np.mean([s for _, s in throttled]) > 3 * np.mean([d for d, _ in throttled])
    assert max(d for d, _ in throttled) < 16.0
    assert max(s for _, s in throttled) > 25.0

    # On the default configuration both are serviceable makespan estimators
    # (reported, not ranked — the honest baseline).
    assert max(d for d, _ in default) < 16.0

    table = format_table(
        ("n", "QUARK config", "dynamic sim err %", "static HEFT err %"),
        rows,
        title="BASE-STATIC: prediction error, dynamic simulation vs static "
        f"list schedule (QR, QUARK, 48 cores; throttled = window {THROTTLED_WINDOW})",
    )
    write_artifact("baseline_static.txt", table + "\n", "baselines")
    print("\n" + table)
