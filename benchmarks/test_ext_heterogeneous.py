"""EXT-GPU: heterogeneous (CPU+GPU) scheduling and simulation (paper §VII).

"Both QUARK and StarPU support GPU tasks and the simulations do not support
those in the current implementation.  Both of these extensions are worth
pursuing."  Pursued here: a CPU+GPU machine model, StarPU's dmda policy with
per-architecture history models, per-kind calibration, and a heterogeneous
simulation backend.  Checks:

* the hybrid machine beats the CPU-only one (offload pays off);
* dmda routes the GPU-friendly kernels (DGEMM) to the devices;
* architecture-aware dmda beats the architecture-blind eager policy;
* the heterogeneous simulation predicts the hybrid run's makespan.
"""

from repro.algorithms import cholesky_program
from repro.core.simbackend import HeterogeneousSimulationBackend
from repro.experiments import format_table, write_artifact
from repro.machine import (
    GpuDevice,
    HeterogeneousBackend,
    HeterogeneousMachine,
    MachineBackend,
    calibrate_heterogeneous,
    get_machine,
)
from repro.schedulers import StarPUScheduler
from repro.trace.compare import compare_traces


def test_ext_heterogeneous_scheduling(benchmark):
    hm = HeterogeneousMachine(
        cpu=get_machine("smp_8"),
        gpus=(GpuDevice("gpu0"), GpuDevice("gpu1")),
        n_cpu_workers=6,
    )
    nt, nb = 16, 256
    kinds = hm.worker_kinds

    def dmda():
        return StarPUScheduler(hm.n_workers, policy="dmda", worker_kinds=kinds)

    def run_all():
        hybrid = dmda().run(cholesky_program(nt, nb), HeterogeneousBackend(hm), seed=1)
        cpu_only = StarPUScheduler(6, policy="dmda").run(
            cholesky_program(nt, nb), MachineBackend(hm.cpu), seed=1
        )
        eager = StarPUScheduler(
            hm.n_workers, policy="eager", worker_kinds=kinds
        ).run(cholesky_program(nt, nb), HeterogeneousBackend(hm), seed=1)
        models, _ = calibrate_heterogeneous(
            cholesky_program(12, nb), dmda(), HeterogeneousBackend(hm), kinds, seed=0
        )
        sim = dmda().run(
            cholesky_program(nt, nb),
            HeterogeneousSimulationBackend(models, kinds),
            seed=2,
        )
        return hybrid, cpu_only, eager, sim

    hybrid, cpu_only, eager, sim = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for tr in (hybrid, cpu_only, eager, sim):
        tr.validate()

    # Offload pays: 6 CPUs + 2 GPUs beat 6 CPUs by a lot — under the
    # architecture-aware policy and even under blind FIFO (the pull model
    # keeps the fast workers fed).
    assert hybrid.makespan < 0.6 * cpu_only.makespan
    assert eager.makespan < 0.6 * cpu_only.makespan
    # dmda is competitive with eager (within 15 %) while achieving much
    # stronger kernel-class separation (checked below) — the property that
    # matters once transfer affinity dominates.
    assert hybrid.makespan < 1.15 * eager.makespan
    # dmda sends most DGEMMs to the devices.
    gemm_gpu = sum(1 for e in hybrid.events if e.kernel == "DGEMM" and e.worker >= 6)
    assert gemm_gpu > 0.5 * hybrid.kernel_counts()["DGEMM"]
    # The heterogeneous simulation tracks the hybrid run.
    cmp_ = compare_traces(hybrid, sim)
    assert cmp_.abs_error_percent < 15.0

    flops = cholesky_program(nt, nb).total_flops
    table = format_table(
        ("configuration", "makespan ms", "GF/s"),
        [
            ("cpu-only dmda (6 cores)", cpu_only.makespan * 1e3, cpu_only.gflops(flops)),
            ("hybrid eager (6C+2G)", eager.makespan * 1e3, eager.gflops(flops)),
            ("hybrid dmda (6C+2G)", hybrid.makespan * 1e3, hybrid.gflops(flops)),
            ("hybrid dmda SIMULATED", sim.makespan * 1e3, sim.gflops(flops)),
        ],
        title=f"EXT-GPU: heterogeneous Cholesky (nt={nt}, tile={nb}); "
        f"sim error {cmp_.abs_error_percent:.2f}%",
    )
    write_artifact("ext_heterogeneous.txt", table + "\n", "extensions")
    print("\n" + table)
