"""CLAIM-SPD: accelerated simulation time (paper §III).

"With the use of our simulation approach to reduce the time to generate the
execution traces, a two-fold speedup is not uncommon."  Here both sides run
on the host: the real run is a genuinely parallel NumPy tile Cholesky on
worker threads; the simulation replaces the kernels with the TEQ protocol
and models calibrated from the real trace.  We assert speed-up >= 2x and a
sane makespan prediction.  (Prediction tolerance is generous: wall-clock
kernel times on a time-shared CI host are heavy-tailed.)
"""

from repro.experiments import speedup_experiment, write_artifact


def test_claim_simulation_speedup(benchmark):
    result = benchmark.pedantic(
        speedup_experiment, kwargs={"seed": 0}, rounds=1, iterations=1
    )

    assert result.factorization_error < 1e-10  # the real run really factorized
    assert result.speedup >= 2.0  # the paper's headline claim
    assert result.prediction_error_percent < 35.0

    report = result.report()
    write_artifact("claim_speedup.txt", report + "\n", "claims")
    print("\n" + report)
