"""FIG6/7: real vs simulated QR trace, n=3960, nb=180, 48 cores, QUARK
(paper Figs. 6 and 7).

Paper claims for this pair: execution times "nearly identical" on a shared
time axis; the trace retains the essential features; two visible
differences — the long first kernel per core in the real run (MKL
initialisation) and fewer tasks on core 0 (the insertion master).  The
bench regenerates the pair, writes the stacked SVG artifact, and asserts
each claim quantitatively.
"""

import numpy as np

from repro.experiments import trace_experiment, write_artifact


def test_fig6_fig7_trace_pair(benchmark):
    exp = benchmark.pedantic(trace_experiment, rounds=1, iterations=1)
    result = exp.result
    real, sim = result.real, result.simulated

    # Problem shape: 22x22 tiles of 180 -> 3795 tasks on 48 cores.
    assert real.n_workers == 48
    assert len(real) == len(sim) == 3795

    # "The two traces are presented with identical time scales ... nearly
    # perfect correspondence of the two execution times."
    assert result.error_percent < 5.0

    # Trace features preserved: completion order and activity shape.
    assert result.comparison.order_similarity > 0.9
    assert result.comparison.activity_rmse < 8.0  # of 48 cores

    # Difference 1: the real trace's first kernel per core is longer than
    # other instances of the *same kernel class* (the MKL-style warm-up
    # penalty); we model it in the simulation too, so check the real trace.
    kernel_means = {k: float(np.mean(v)) for k, v in real.kernel_durations().items()}
    excesses = []
    for w in range(real.n_workers):
        first = real.worker_events(w)[0]
        excesses.append(first.duration - kernel_means[first.kernel])
    from repro.machine import get_machine

    warmup = get_machine("magny_cours_48").warmup_penalty
    assert float(np.median(excesses)) > 0.5 * warmup

    # Difference 2: core 0 (the master) runs fewer tasks than average.
    per_worker = real.tasks_per_worker()
    assert per_worker[0] < np.mean(per_worker[1:])

    report = exp.report()
    write_artifact("fig06_07_report.txt", report + "\n", "fig06_07")
    print("\n" + report)
