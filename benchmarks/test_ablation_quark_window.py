"""ABL-WINDOW: QUARK task-window size (paper §IV-A3 / §VI-B).

The window throttles in-flight tasks: too small strangles parallelism.
The simulator must track the real effect across the sweep — the property
that makes it usable for tuning runtime parameters.
"""

from repro.experiments import ablation_quark_window, write_artifact


def test_ablation_quark_window(benchmark):
    data, table = benchmark.pedantic(ablation_quark_window, rounds=1, iterations=1)

    windows = sorted(data)
    real = [data[w]["gflops_real"] for w in windows]
    sim = [data[w]["gflops_sim"] for w in windows]

    # Tiny windows hurt, large windows saturate (real and simulated agree).
    assert real[0] < 0.8 * real[-1]
    assert sim[0] < 0.8 * sim[-1]
    # Broadly monotone recovery with window size.
    assert real[-1] >= real[1]

    for w in windows:
        assert data[w]["error_percent"] < 12.0, (w, data[w])

    write_artifact("ablation_quark_window.txt", table + "\n", "ablations")
    print("\n" + table)
