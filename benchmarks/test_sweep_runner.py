"""SWEEP-RUNNER: parallel fan-out and result caching of the sweep runner.

Demonstrates the two operational claims of the runner subsystem:

* a **cold 8-point sweep with ``jobs=4`` beats the serial wall-clock** on a
  multi-core host (the assertion is skipped on single-core containers,
  where a process pool can only lose; the timing table is printed either
  way so the log records both sides);
* a **repeated sweep is served from the cache** — the warm pass reports at
  least N-1 hits for an N-point grid and finishes orders of magnitude
  faster.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.experiments import format_table, write_artifact
from repro.runner import ProgramSpec, ResultCache, RunSpec, SchedulerSpec, sweep

GRID_SEEDS = range(8)
NT = 22  # per-point work large enough to amortise the pool start-up


def _grid():
    return [
        RunSpec(
            program=ProgramSpec("cholesky", NT, 200),
            scheduler=SchedulerSpec("quark", 48),
            machine="magny_cours_48",
            seed=seed,
            mode="real",
        )
        for seed in GRID_SEEDS
    ]


def test_parallel_sweep_beats_serial(benchmark):
    specs = _grid()
    with tempfile.TemporaryDirectory() as root:
        t0 = time.perf_counter()
        serial = sweep(specs, jobs=1, cache=os.path.join(root, "serial"))
        wall_serial = time.perf_counter() - t0

        parallel = benchmark.pedantic(
            lambda: sweep(specs, jobs=4, cache=os.path.join(root, "parallel")),
            rounds=1, iterations=1,
        )
        wall_parallel = parallel.wall_s

        # Same grid, two cold caches: results must agree byte-for-byte.
        for rs, rp in zip(serial.results, parallel.results):
            assert rs.trace_dump() == rp.trace_dump()

    cores = len(os.sched_getaffinity(0))
    table = format_table(
        ("configuration", "wall s", "points", "cores"),
        [("serial (jobs=1)", wall_serial, len(specs), cores),
         ("parallel (jobs=4)", wall_parallel, len(specs), cores)],
        title=f"SWEEP-RUNNER: cold {len(specs)}-point Cholesky nt={NT} sweep",
    )
    report = table + f"\nspeed-up: {wall_serial / wall_parallel:.2f}x on {cores} core(s)\n"
    write_artifact("sweep_runner.txt", report, "claims")
    print("\n" + report)

    if cores >= 2:
        assert wall_parallel < wall_serial
    else:
        print("single-core host: wall-clock comparison recorded, not asserted")


def test_warm_sweep_served_from_cache():
    specs = _grid()
    with tempfile.TemporaryDirectory() as root:
        cold = sweep(specs, jobs=2, cache=root)
        warm = sweep(specs, jobs=2, cache=root)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(specs)
        # Acceptance: an N-point rerun reports >= N-1 cache hits.
        assert warm.cache_hits >= len(specs) - 1
        assert warm.cache_misses == 0
        assert warm.wall_s < cold.wall_s
        assert len(ResultCache(root)) == len(specs)
        print(f"\ncold: {cold.summary()}\nwarm: {warm.summary()}")
