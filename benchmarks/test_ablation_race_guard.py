"""ABL-GUARD: race-guard strategy vs trace consistency (paper §V-E).

Beyond the Fig. 5 scenario, this ablation runs a real QR workload through
the threaded simulator under each guard and compares against the
event-driven reference: the guarded runs must agree; the unguarded run —
with a dispatch delay injected to open the race window — must inflate the
makespan.
"""

import pytest

from repro.core.simbackend import SimulationBackend
from repro.core.threaded import ThreadedRuntime
from repro.algorithms import qr_program
from repro.experiments import format_table, write_artifact
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.schedulers import QuarkScheduler

_KERNELS = ("DGEQRT", "DORMQR", "DTSQRT", "DTSMQR")


def _models():
    return KernelModelSet(models={k: ConstantModel(1e-3) for k in _KERNELS})


def _reference_makespan():
    sched = QuarkScheduler(
        4, insert_cost=0.0, dispatch_overhead=0.0, completion_cost=0.0
    )
    return sched.run(qr_program(5, 16), SimulationBackend(_models()), seed=0).makespan


def test_ablation_race_guard(benchmark):
    reference = _reference_makespan()

    def run_guard(guard, delay):
        rt = ThreadedRuntime(
            4, mode="simulate", guard=guard, sleep_time=5e-3, dispatch_delay=delay
        )
        return rt.run(qr_program(5, 16), models=_models(), seed=0).makespan

    def run_all():
        return {
            ("quiesce", 0.0): run_guard("quiesce", 0.0),
            ("sleep", 0.0): run_guard("sleep", 0.0),
            ("quiesce", 1e-3): run_guard("quiesce", 1e-3),
            ("none", 1e-3): run_guard("none", 1e-3),
        }

    spans = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Guarded simulations agree with the event-driven reference, with or
    # without the injected dispatch delay.
    assert spans[("quiesce", 0.0)] == pytest.approx(reference, rel=1e-6)
    assert spans[("sleep", 0.0)] == pytest.approx(reference, rel=0.02)
    assert spans[("quiesce", 1e-3)] == pytest.approx(reference, rel=1e-6)

    # Unguarded + open race window: the trace degrades toward serial.
    assert spans[("none", 1e-3)] > reference * 1.2

    rows = [(g, f"{d * 1e3:.1f}", s, s / reference) for (g, d), s in spans.items()]
    table = format_table(
        ("guard", "delay ms", "makespan s", "vs reference"),
        rows,
        title=f"ABL-GUARD (event-driven reference: {reference:.4f}s)",
        float_fmt="{:.4f}",
    )
    write_artifact("ablation_race_guard.txt", table + "\n", "ablations")
    print("\n" + table)
