"""ABL-POLICY: StarPU scheduling policies, real vs simulated (paper §IV-A2,
§VI-B autotuning use case).

StarPU ships "several scheduling policies"; the simulator's value for
autotuning is that it predicts each policy's performance — in particular
the *ranking* of policies — without running the real workload.
"""

from repro.experiments import ablation_starpu_policy, write_artifact


def test_ablation_starpu_policy(benchmark):
    data, table = benchmark.pedantic(ablation_starpu_policy, rounds=1, iterations=1)

    assert set(data) == {"eager", "prio", "ws", "dmda"}
    for policy, row in data.items():
        assert row["error_percent"] < 10.0, (policy, row)

    # Ranking preservation: order policies by real and by simulated GFLOP/s;
    # the top policy must match and the rank correlation must be positive.
    real_rank = sorted(data, key=lambda p: data[p]["gflops_real"], reverse=True)
    sim_rank = sorted(data, key=lambda p: data[p]["gflops_sim"], reverse=True)
    assert real_rank[0] == sim_rank[0]

    write_artifact("ablation_starpu_policy.txt", table + "\n", "ablations")
    print("\n" + table)
