"""FIG3: DTSMQR kernel-time density with normal/gamma/lognormal fits
(paper Fig. 3).

Paper: the three distributions "appear to fit equally well" for DTSMQR.
The bench harvests DTSMQR samples from a QR calibration run, fits all three
families, writes the density table, and asserts the fits are close to each
other and to the empirical distribution.
"""

import numpy as np

from repro.experiments import distribution_figure, write_artifact


def test_fig3_dtsmqr_distribution(benchmark):
    fig = benchmark.pedantic(
        distribution_figure, args=("fig3",), rounds=1, iterations=1
    )

    assert fig.kernel == "DTSMQR"
    assert fig.samples.size > 200

    # All three families fit: small KS distance to the sample...
    ks = {f.family: f.ks for f in fig.fits.values()}
    assert all(v < 0.12 for v in ks.values()), ks
    # ...and "nearly identical" to each other (paper's wording).
    assert max(ks.values()) - min(ks.values()) < 0.05

    # Fitted means agree with the empirical mean within 1 %.
    emp_mean = float(np.mean(fig.samples))
    for f in fig.fits.values():
        assert abs(f.mean - emp_mean) / emp_mean < 0.01

    table = fig.table()
    write_artifact("fig03_fits.txt", table + "\n", "fig03")
    write_artifact("fig03_density.txt", fig.density_table() + "\n", "fig03")
    print("\n" + table + f"\nbest by AIC: {fig.best_family}")
