"""Benchmark-suite configuration.

Every bench regenerates one figure or claim of the paper (see DESIGN.md's
per-experiment index), writes its artifact under ``artifacts/``, prints the
paper-style table, and asserts the *shape* of the paper's result.  Run with

    pytest benchmarks/ --benchmark-only -s

to see the tables.  ``REPRO_SWEEP=full`` switches the Figs. 8-10 sweeps from
the smoke grid to the full grid.
"""

from __future__ import annotations

import os

import pytest


def full_sweep() -> bool:
    return os.environ.get("REPRO_SWEEP", "").lower() == "full"


@pytest.fixture(scope="session")
def sweep_nts():
    from repro.experiments import SMOKE_SWEEP_NTS, SWEEP_NTS

    return SWEEP_NTS if full_sweep() else SMOKE_SWEEP_NTS
