"""ABL-SUCCESSOR: OmpSs immediate-successor locality heuristic (paper §IV-A1).

Nanos++'s successor bypass hands a just-released task to the worker that
released it, improving cache locality.  The bench checks the real effect on
the machine model and that the simulation remains accurate for both
configurations — scheduler-internal heuristics are exactly what the paper's
portable simulator must absorb without modification.
"""

from repro.experiments import write_artifact
from repro.experiments.ablations import ablation_ompss_successor


def test_ablation_ompss_successor(benchmark):
    data, table = benchmark.pedantic(ablation_ompss_successor, rounds=1, iterations=1)

    assert set(data) == {"successor-bypass", "central-queue"}
    for label, row in data.items():
        assert row["error_percent"] < 10.0, (label, row)

    # Locality bypass should not hurt on the cache-sensitive machine model.
    assert (
        data["successor-bypass"]["gflops_real"]
        >= 0.97 * data["central-queue"]["gflops_real"]
    )

    write_artifact("ablation_ompss_successor.txt", table + "\n", "ablations")
    print("\n" + table)
