"""Legacy setup shim: enables editable installs where the `wheel` package
(needed by the PEP 660 path) is unavailable."""
from setuptools import setup

setup()
