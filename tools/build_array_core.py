#!/usr/bin/env python3
"""Build the optional compiled core of the array engine.

Compiles ``src/repro/schedulers/_array_core.c`` into ``lib_array_core.so``
next to its ctypes loader, using whatever plain C compiler is on PATH
(``$CC``, then ``cc``/``gcc``/``clang``).  No Python headers, setuptools or
Cython involved — the library is a freestanding C object loaded via ctypes.

``-ffp-contract=off`` is load-bearing: it forbids fused multiply-add
contraction so the compiled duration transforms round exactly like the
pure-Python expressions, keeping traces byte-identical across the
compiled, pure-Python-array and object engines.

Exit status 0 on success (or with ``--if-possible`` when no compiler
exists, since the engine falls back to pure Python); non-zero on a failed
compile.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys

SRC = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir,
    "src",
    "repro",
    "schedulers",
    "_array_core.c",
)
OUT = os.path.join(os.path.dirname(SRC), "lib_array_core.so")

CFLAGS = ["-O2", "-shared", "-fPIC", "-ffp-contract=off", "-fno-fast-math"]


def find_compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    return None


def main(argv: list[str]) -> int:
    lenient = "--if-possible" in argv
    cc = find_compiler()
    if cc is None:
        print(
            "build_array_core: no C compiler found; "
            "the array engine will use its pure-Python loop",
            file=sys.stderr,
        )
        return 0 if lenient else 1
    src = os.path.normpath(SRC)
    out = os.path.normpath(OUT)
    cmd = [cc, *CFLAGS, "-o", out, src, "-lm"]
    print(" ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print("build_array_core: compilation failed", file=sys.stderr)
        return proc.returncode
    print(f"built {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
